"""The raw-log path: DAGMan writes jobstate.log + kickstart records, the
normalizer converts them to BP events, and the archive built from the
normalized stream matches the archive built from the direct stream."""
import io

import pytest

from repro.loader import load_events
from repro.pegasus import (
    DAGManRun,
    JobstateEntry,
    JobstateLogWriter,
    KickstartRecord,
    KickstartWriter,
    Planner,
    PlannerConfig,
    RawLogRecorder,
    Site,
    SiteCatalog,
    normalize_run,
    parse_jobstate_log,
    parse_kickstart_records,
)
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender
from repro.workloads import diamond, fan


class TestRawFormats:
    def test_jobstate_roundtrip(self):
        entry = JobstateEntry(1331642138.5, "create_dir_0", "SUBMIT",
                              "42.0", "pool", 1)
        back = JobstateEntry.from_line(entry.to_line())
        assert back == entry

    def test_jobstate_malformed(self):
        with pytest.raises(ValueError):
            JobstateEntry.from_line("not a jobstate line")

    def test_jobstate_file_io(self, tmp_path):
        path = tmp_path / "jobstate.log"
        entries = [
            JobstateEntry(1.0, "a", "SUBMIT", "1.0", "s", 1),
            JobstateEntry(2.0, "a", "EXECUTE", "1.0", "s", 1),
        ]
        with JobstateLogWriter(path) as writer:
            for e in entries:
                writer.write(e)
        assert list(parse_jobstate_log(path)) == entries

    def test_jobstate_skips_comments(self):
        text = "# header\n1.0 a SUBMIT 1.0 s - 1\n\n"
        entries = list(parse_jobstate_log(io.StringIO(text)))
        assert len(entries) == 1

    def test_kickstart_roundtrip(self):
        record = KickstartRecord(
            exec_job_id="merge_0",
            job_submit_seq=2,
            inv_seq=3,
            transformation="analyze",
            executable="/bin/analyze",
            start=100.5,
            duration=74.25,
            exitcode=1,
            site="pool",
            hostname="pool-node3",
            argv="--x 1 --y 2",
            task_id="t0005",
            cpu_time=70.0,
        )
        back = KickstartRecord.from_xml(record.to_xml())
        assert back == record

    def test_kickstart_optional_fields(self):
        record = KickstartRecord(
            exec_job_id="j", job_submit_seq=1, inv_seq=1,
            transformation="t", executable="e", start=0.0, duration=1.0,
            exitcode=0, site="s", hostname="h",
        )
        back = KickstartRecord.from_xml(record.to_xml())
        assert back.task_id is None
        assert back.cpu_time is None
        assert back.argv == ""

    def test_kickstart_bad_xml(self):
        with pytest.raises(ValueError):
            KickstartRecord.from_xml("<notinv/>")

    def test_kickstart_file_io(self, tmp_path):
        path = tmp_path / "kickstart.rec"
        record = KickstartRecord(
            exec_job_id="j", job_submit_seq=1, inv_seq=1,
            transformation="t", executable="e", start=0.0, duration=1.0,
            exitcode=0, site="s", hostname="h",
        )
        with KickstartWriter(path) as writer:
            writer.write(record)
            writer.write(record)
        assert list(parse_kickstart_records(path)) == [record, record]


def _run_with_raw(aw, seed=0, failure_rate=0.0, max_retries=3):
    catalog = SiteCatalog(
        [Site("pool", slots=16, mean_queue_delay=1.0,
              failure_rate=failure_rate, hosts_per_site=4)]
    )
    planner = Planner(catalog, PlannerConfig(cluster_size=2,
                                             max_retries=max_retries))
    ew = planner.plan(aw)
    direct_sink = MemoryAppender()
    recorder = RawLogRecorder()
    run = DAGManRun(aw, ew, direct_sink, catalog=catalog, seed=seed,
                    raw_recorder=recorder)
    run.run()
    return run, ew, direct_sink.events, recorder


class TestNormalizer:
    def test_normalized_events_schema_valid(self):
        run, ew, direct, recorder = _run_with_raw(diamond())
        events = normalize_run(
            run.aw, ew, run.xwf_id, recorder.jobstate, recorder.kickstart
        )
        assert EventValidator(STAMPEDE_SCHEMA).validate(events).ok

    def test_archives_equivalent(self):
        """Direct pipeline and raw-log pipeline agree on the archive."""
        run, ew, direct, recorder = _run_with_raw(fan(width=8), seed=4)
        normalized = normalize_run(
            run.aw, ew, run.xwf_id, recorder.jobstate, recorder.kickstart
        )
        qa = StampedeQuery(load_events(direct).archive)
        qb = StampedeQuery(load_events(normalized).archive)
        wa, wb = qa.workflows()[0], qb.workflows()[0]
        assert wa.wf_uuid == wb.wf_uuid
        ca = qa.summary_counts(wa.wf_id)
        cb = qb.summary_counts(wb.wf_id)
        assert ca == cb
        # invocation durations identical record-by-record
        inva = sorted((i.abs_task_id or "", i.remote_duration)
                      for i in qa.invocations(wa.wf_id))
        invb = sorted((i.abs_task_id or "", i.remote_duration)
                      for i in qb.invocations(wb.wf_id))
        assert inva == invb

    def test_failures_and_retries_preserved(self):
        run, ew, direct, recorder = _run_with_raw(
            fan(width=10), seed=11, failure_rate=0.4
        )
        assert run.report.retries > 0
        normalized = normalize_run(
            run.aw, ew, run.xwf_id, recorder.jobstate, recorder.kickstart
        )
        q = StampedeQuery(load_events(normalized).archive)
        wf = q.workflows()[0]
        counts = q.summary_counts(wf.wf_id)
        assert counts.jobs_retries == run.report.retries
        assert counts.jobs_succeeded == run.report.succeeded

    def test_roundtrip_through_files(self, tmp_path):
        """Raw logs persisted to disk, re-parsed, then normalized."""
        run, ew, direct, recorder = _run_with_raw(diamond(), seed=2)
        jpath = tmp_path / "jobstate.log"
        kpath = tmp_path / "kickstart.rec"
        recorder.write(JobstateLogWriter(jpath), KickstartWriter(kpath))
        events = normalize_run(
            run.aw, ew, run.xwf_id,
            parse_jobstate_log(jpath), parse_kickstart_records(kpath),
        )
        q = StampedeQuery(load_events(events).archive)
        wf = q.workflows()[0]
        assert q.summary_counts(wf.wf_id).jobs_succeeded == len(ew)

    def test_unknown_job_strict(self):
        run, ew, direct, recorder = _run_with_raw(diamond())
        bogus = JobstateEntry(1.0, "ghost_job", "SUBMIT", "1.0", "s", 1)
        with pytest.raises(ValueError):
            normalize_run(run.aw, ew, run.xwf_id,
                          [bogus] + recorder.jobstate, recorder.kickstart)

    def test_unknown_job_tolerant(self):
        run, ew, direct, recorder = _run_with_raw(diamond())
        bogus = JobstateEntry(1.0, "ghost_job", "SUBMIT", "1.0", "s", 1)
        events = normalize_run(
            run.aw, ew, run.xwf_id,
            [bogus] + recorder.jobstate, recorder.kickstart, strict=False,
        )
        assert events  # bogus entry silently dropped

    def test_empty_logs(self):
        run, ew, direct, recorder = _run_with_raw(diamond())
        assert normalize_run(run.aw, ew, run.xwf_id, [], []) == []
