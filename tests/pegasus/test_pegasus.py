import pytest

from repro.loader import load_events
from repro.model.entities import JobInstanceRow, JobRow, TaskRow
from repro.pegasus import (
    AbstractTask,
    AbstractWorkflow,
    DAGManRun,
    JobType,
    Planner,
    PlannerConfig,
    Site,
    SiteCatalog,
    run_pegasus_workflow,
)
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender
from repro.workloads import diamond, fan, montage


class TestAbstractWorkflow:
    def test_build_and_query(self):
        aw = diamond()
        assert len(aw) == 4
        assert aw.roots() == ["a"]
        assert aw.leaves() == ["d"]
        assert aw.parents("d") == ["b", "c"]

    def test_cycle_rejected(self):
        aw = AbstractWorkflow("w")
        aw.add_task(AbstractTask("a", "t"))
        aw.add_task(AbstractTask("b", "t"))
        aw.add_dependency("a", "b")
        with pytest.raises(Exception):
            aw.add_dependency("b", "a")

    def test_duplicate_task_rejected(self):
        aw = AbstractWorkflow("w")
        aw.add_task(AbstractTask("a", "t"))
        with pytest.raises(ValueError):
            aw.add_task(AbstractTask("a", "t"))

    def test_critical_path(self):
        aw = diamond(runtime=10.0)
        assert aw.critical_path_seconds() == 30.0


class TestPlanner:
    def test_no_clustering_one_job_per_task(self):
        ew = Planner(config=PlannerConfig(cluster_size=1)).plan(diamond())
        compute = ew.compute_jobs()
        assert len(compute) == 4
        assert all(not j.clustered for j in compute)

    def test_clustering_groups_by_level_and_transformation(self):
        ew = Planner(config=PlannerConfig(cluster_size=8)).plan(fan(width=8))
        compute = ew.compute_jobs()
        # split + join unclustered; 8 work tasks merge into one job
        merged = [j for j in compute if j.clustered]
        assert len(merged) == 1
        assert merged[0].task_count == 8
        assert len(compute) == 3

    def test_cluster_size_respected(self):
        ew = Planner(config=PlannerConfig(cluster_size=3)).plan(fan(width=8))
        merged = sorted(j.task_count for j in ew.compute_jobs() if j.clustered)
        assert merged == [2, 3, 3]

    def test_auxiliary_jobs_added(self):
        ew = Planner().plan(diamond())
        types = {j.job_type for j in ew.jobs()}
        assert JobType.CREATE_DIR in types
        assert JobType.STAGE_IN in types
        assert JobType.STAGE_OUT in types

    def test_auxiliary_jobs_precede_and_follow_compute(self):
        ew = Planner().plan(diamond())
        order = ew.topological_order()
        assert order.index("create_dir_0") < order.index("stage_in_0")
        assert order.index("stage_in_0") < order.index("a")
        assert order.index("d") < order.index("stage_out_0")

    def test_optional_registration_and_cleanup(self):
        config = PlannerConfig(add_registration=True, add_cleanup=True)
        ew = Planner(config=config).plan(diamond())
        ids = {j.exec_job_id for j in ew.jobs()}
        assert "register_0" in ids and "cleanup_0" in ids

    def test_task_to_job_map_covers_all_tasks(self):
        aw = montage(n_images=6)
        ew = Planner(config=PlannerConfig(cluster_size=4)).plan(aw)
        mapping = ew.task_to_job_map()
        assert set(mapping) == {t.task_id for t in aw.tasks()}

    def test_plan_preserves_dependencies(self):
        aw = diamond()
        ew = Planner(config=PlannerConfig(cluster_size=1)).plan(aw)
        order = ew.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")


class TestSites:
    def test_catalog_default(self):
        catalog = SiteCatalog.default()
        assert len(catalog) == 2
        assert catalog.total_slots() > 0

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError):
            SiteCatalog([Site("x"), Site("x")])

    def test_best_free_site(self):
        catalog = SiteCatalog([Site("small", slots=2), Site("big", slots=10)])
        assert catalog.best_free_site().name == "big"
        catalog["big"].busy = 10
        assert catalog.best_free_site().name == "small"
        catalog["small"].busy = 2
        assert catalog.best_free_site() is None

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            Site("x", failure_rate=1.5)


class TestDAGManRun:
    def test_successful_run(self):
        sink = MemoryAppender()
        run = run_pegasus_workflow(diamond(), sink, seed=2)
        assert run.report.ok
        assert run.report.succeeded == len(run.ew)
        assert run.report.wall_time > 0

    def test_events_schema_valid(self):
        sink = MemoryAppender()
        run_pegasus_workflow(montage(n_images=5), sink, seed=3)
        report = EventValidator(STAMPEDE_SCHEMA).validate(sink.events)
        assert report.ok, report.violations[:5]

    def test_deterministic(self):
        s1, s2 = MemoryAppender(), MemoryAppender()
        r1 = run_pegasus_workflow(diamond(), s1, seed=7)
        r2 = run_pegasus_workflow(diamond(), s2, seed=7)
        assert r1.report.wall_time == r2.report.wall_time
        assert [e.to_bp() for e in s1.events] == [e.to_bp() for e in s2.events]

    def test_failures_and_retries(self):
        catalog = SiteCatalog(
            [Site("flaky", slots=4, failure_rate=0.4, mean_queue_delay=0.5)]
        )
        sink = MemoryAppender()
        run = run_pegasus_workflow(
            fan(width=12), sink, catalog=catalog, seed=11
        )
        assert run.report.retries > 0

    def test_permanent_failure_blocks_descendants(self):
        catalog = SiteCatalog(
            [Site("dead", slots=4, failure_rate=0.999, mean_queue_delay=0.1)]
        )
        sink = MemoryAppender()
        run = run_pegasus_workflow(
            diamond(), sink, catalog=catalog,
            planner_config=PlannerConfig(max_retries=1), seed=5,
        )
        assert not run.report.ok
        assert run.report.failed >= 1
        assert run.report.unready >= 1

    def test_clustered_jobs_have_multiple_invocations(self):
        sink = MemoryAppender()
        run = run_pegasus_workflow(
            fan(width=6), sink,
            planner_config=PlannerConfig(cluster_size=6), seed=2,
        )
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        merged_job = next(
            j for j in q.jobs(wf.wf_id) if j.exec_job_id.startswith("merge_")
        )
        assert merged_job.clustered
        insts = q.job_instances_for_job(merged_job.job_id)
        invs = q.invocations_for_instance(insts[0].job_instance_id)
        assert len(invs) == 6
        assert all(i.abs_task_id is not None for i in invs)

    def test_queue_time_visible_in_archive(self):
        catalog = SiteCatalog(
            [Site("busy", slots=1, mean_queue_delay=5.0, hosts_per_site=1)]
        )
        sink = MemoryAppender()
        run_pegasus_workflow(fan(width=4), sink, catalog=catalog, seed=4)
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        details = q.job_details(wf.wf_id)
        assert any(d.queue_time and d.queue_time > 1.0 for d in details)

    def test_retry_instances_in_archive(self):
        catalog = SiteCatalog(
            [Site("flaky", slots=8, failure_rate=0.5, mean_queue_delay=0.2)]
        )
        sink = MemoryAppender()
        run = run_pegasus_workflow(fan(width=10), sink, catalog=catalog, seed=13)
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        counts = q.summary_counts(wf.wf_id)
        assert counts.jobs_retries == run.report.retries
