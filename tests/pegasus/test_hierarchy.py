import pytest

from repro.loader import load_events
from repro.pegasus import (
    PlannerConfig,
    Site,
    SiteCatalog,
    SubDaxJob,
    run_hierarchical_workflow,
    run_with_restarts,
)
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender
from repro.workloads import chain, diamond, fan


def flat_catalog(failure_rate=0.0, seed_slots=16):
    return SiteCatalog(
        [Site("pool", slots=seed_slots, mean_queue_delay=0.5,
              failure_rate=failure_rate, hosts_per_site=4)]
    )


class TestSubDaxJobs:
    def run_parent_with_sub(self, seed=0):
        parent = diamond(runtime=5.0, label="parent")
        sub = SubDaxJob(
            "subdax_analysis",
            chain(3, runtime=5.0, label="child"),
            depends_on=["a"],
            feeds=["d"],
        )
        sink = MemoryAppender()
        run = run_hierarchical_workflow(
            parent, [sub], sink, catalog=flat_catalog(), seed=seed,
            planner_config=PlannerConfig(add_create_dir=False,
                                         add_stage_in=False,
                                         add_stage_out=False),
        )
        return sink, run

    def test_parent_and_child_succeed(self):
        sink, run = self.run_parent_with_sub()
        assert run.report.ok
        child = run.child_runs["subdax_analysis"]
        assert child.report.ok
        assert child.report.succeeded == len(child.ew)

    def test_events_schema_valid(self):
        sink, run = self.run_parent_with_sub()
        assert EventValidator(STAMPEDE_SCHEMA).validate(sink.events).ok

    def test_hierarchy_in_archive(self):
        sink, run = self.run_parent_with_sub()
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        root = q.workflow_by_uuid(run.xwf_id)
        subs = q.sub_workflows(root.wf_id)
        assert len(subs) == 1
        assert subs[0].parent_wf_id == root.wf_id
        counts = q.summary_counts(root.wf_id)
        assert counts.subwf_total == 1
        assert counts.subwf_succeeded == 1
        # parent tasks + child tasks
        assert counts.tasks_total == 4 + 3

    def test_child_respects_parent_dependencies(self):
        """The sub-DAX job runs after 'a' and before 'd'."""
        sink, run = self.run_parent_with_sub()
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        root = q.workflow_by_uuid(run.xwf_id)
        parent_details = {d.exec_job_id: d for d in q.job_details(root.wf_id)}
        child_wf = q.sub_workflows(root.wf_id)[0]
        child_start = q.workflow_states(child_wf.wf_id)[0].timestamp
        # 'd' must not start before the child workflow terminated
        d_states = {
            s.state: s.timestamp
            for s in q.job_states(
                next(
                    i.job_instance_id
                    for i in q.job_instances(root.wf_id)
                    if parent_details and i.job_id == q.job_by_exec_id(
                        root.wf_id, "d"
                    ).job_id
                )
            )
        }
        child_end = q.workflow_states(child_wf.wf_id)[-1].timestamp
        assert d_states["EXECUTE"] >= child_end - 1e-6

    def test_failed_child_fails_parent_job(self):
        parent = diamond(runtime=5.0, label="parent")
        sub = SubDaxJob(
            "subdax_bad",
            fan(width=4, runtime=5.0, label="child"),
            depends_on=["a"],
            feeds=["d"],
        )
        sink = MemoryAppender()
        run = run_hierarchical_workflow(
            parent, [sub], sink,
            catalog=flat_catalog(),  # the parent's site is reliable
            seed=1,
            planner_config=PlannerConfig(add_create_dir=False,
                                         add_stage_in=False,
                                         add_stage_out=False),
            # the child runs on a broken resource pool
            child_catalog=SiteCatalog(
                [Site("dead", slots=8, mean_queue_delay=0.1,
                      failure_rate=0.999, hosts_per_site=2)]
            ),
            child_planner_config=PlannerConfig(add_create_dir=False,
                                               add_stage_in=False,
                                               add_stage_out=False,
                                               max_retries=0),
        )
        assert not run.report.ok
        assert not run.child_runs["subdax_bad"].report.ok
        # 'd' depends on the failed sub-DAX job: never became runnable
        assert run.report.unready >= 1


class TestRestarts:
    def test_clean_run_needs_no_restart(self):
        sink = MemoryAppender()
        runs = run_with_restarts(
            fan(width=6), sink, catalog=flat_catalog(), seed=0
        )
        assert len(runs) == 1
        assert runs[0].report.ok

    def test_restart_recovers_failed_run(self):
        # high transient failure + no retries: first attempt fails some
        # jobs; restarts eventually complete the workflow
        sink = MemoryAppender()
        runs = run_with_restarts(
            fan(width=12),
            sink,
            catalog=flat_catalog(failure_rate=0.35),
            planner_config=PlannerConfig(max_retries=0,
                                         add_create_dir=False,
                                         add_stage_in=False,
                                         add_stage_out=False),
            seed=3,
            max_restarts=10,
        )
        assert len(runs) > 1
        assert runs[-1].report.ok
        # later attempts do not rerun succeeded jobs
        total_executed = sum(
            sum(1 for s in r._states.values() if s.attempts > 0
                and s.attempts > (0 if r is runs[0] else -1))
            for r in runs
        )
        assert runs[-1].report.succeeded == 14  # split+join+12 workers

    def test_restart_counts_in_events(self):
        sink = MemoryAppender()
        runs = run_with_restarts(
            fan(width=12),
            sink,
            catalog=flat_catalog(failure_rate=0.35),
            planner_config=PlannerConfig(max_retries=0,
                                         add_create_dir=False,
                                         add_stage_in=False,
                                         add_stage_out=False),
            seed=3,
            max_restarts=10,
        )
        starts = [e for e in sink.events if e.event == "stampede.xwf.start"]
        counts = [int(e["restart_count"]) for e in starts]
        assert counts == list(range(len(runs)))

    def test_restarted_run_loads_as_one_workflow(self):
        sink = MemoryAppender()
        runs = run_with_restarts(
            fan(width=12),
            sink,
            catalog=flat_catalog(failure_rate=0.35),
            planner_config=PlannerConfig(max_retries=0,
                                         add_create_dir=False,
                                         add_stage_in=False,
                                         add_stage_out=False),
            seed=3,
            max_restarts=10,
        )
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        assert len(q.workflows()) == 1  # one workflow, several runs
        wf = q.workflows()[0]
        assert q.workflow_status(wf.wf_id) == 0  # last run succeeded
        counts = q.summary_counts(wf.wf_id)
        assert counts.jobs_succeeded == 14
        # submit sequences increased across restarts
        seqs = [i.job_submit_seq for i in q.job_instances(wf.wf_id)]
        assert max(seqs) >= 2

    def test_gives_up_after_max_restarts(self):
        sink = MemoryAppender()
        runs = run_with_restarts(
            fan(width=6),
            sink,
            catalog=flat_catalog(failure_rate=0.95),
            planner_config=PlannerConfig(max_retries=0,
                                         add_create_dir=False,
                                         add_stage_in=False,
                                         add_stage_out=False),
            seed=0,
            max_restarts=2,
        )
        assert len(runs) == 3
        assert not runs[-1].report.ok
