import pytest

from repro.pegasus import Planner, PlannerConfig
from repro.pegasus.abstract import AbstractTask, AbstractWorkflow
from repro.pegasus.dax import (
    dag_to_string,
    dax_to_string,
    parse_dax,
    write_dag,
    write_dax,
)
from repro.workloads import diamond, montage


class TestDaxRoundtrip:
    def test_structure_roundtrip(self):
        aw = montage(n_images=5)
        back = parse_dax(dax_to_string(aw))
        assert back.label == aw.label
        assert {t.task_id for t in back.tasks()} == {
            t.task_id for t in aw.tasks()
        }
        assert set(back.edges()) == set(aw.edges())

    def test_task_attributes_roundtrip(self):
        aw = AbstractWorkflow("w")
        aw.add_task(
            AbstractTask(
                "t1",
                transformation="genome::map",
                argv="--lanes 4 --out x.bam",
                runtime_estimate=123.5,
                inputs=["reads.fq"],
                outputs=["x.bam"],
            )
        )
        back = parse_dax(dax_to_string(aw))
        task = back.task("t1")
        assert task.transformation == "genome::map"
        assert task.argv == "--lanes 4 --out x.bam"
        assert task.runtime_estimate == 123.5
        assert task.inputs == ["reads.fq"]
        assert task.outputs == ["x.bam"]

    def test_file_roundtrip(self, tmp_path):
        aw = diamond()
        path = write_dax(aw, tmp_path / "diamond.dax")
        back = parse_dax(path)
        assert set(back.edges()) == set(aw.edges())
        text = (tmp_path / "diamond.dax").read_text()
        assert text.startswith("<?xml")
        assert "<adag" in text

    def test_non_dax_rejected(self):
        with pytest.raises(ValueError):
            parse_dax("<notadag/>")

    def test_parsed_dax_plans_and_matches(self):
        aw = montage(n_images=6)
        back = parse_dax(dax_to_string(aw))
        ew_orig = Planner(config=PlannerConfig(cluster_size=3)).plan(aw)
        ew_back = Planner(config=PlannerConfig(cluster_size=3)).plan(back)
        assert {j.exec_job_id for j in ew_orig.jobs()} == {
            j.exec_job_id for j in ew_back.jobs()
        }


class TestDagFile:
    def test_dag_contents(self, tmp_path):
        ew = Planner().plan(diamond())
        text = dag_to_string(ew)
        assert "JOB a a.sub" in text
        assert "RETRY a 3" in text
        assert "PARENT a CHILD b" in text
        assert "PARENT stage_in_0 CHILD a" in text
        path = write_dag(ew, tmp_path / "run.dag")
        assert (tmp_path / "run.dag").read_text().startswith("#")

    def test_every_job_listed(self):
        ew = Planner(config=PlannerConfig(cluster_size=2)).plan(montage(8))
        text = dag_to_string(ew)
        for job in ew.jobs():
            assert f"JOB {job.exec_job_id} " in text
        assert text.count("PARENT ") == len(ew.edges())
