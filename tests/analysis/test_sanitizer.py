"""Runtime lock-order sanitizer: cycles, conditions, install filtering."""
import json
import threading

import pytest

from repro.analysis.sanitizer import (
    ENV_FLAG,
    LockSanitizer,
    SelfDeadlockError,
    enabled_from_env,
    main,
)


def run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
        assert not t.is_alive()


class TestAbbaPositiveControl:
    """The seeded ABBA deadlock — acceptance criterion for the sanitizer."""

    def seed_abba(self):
        san = LockSanitizer()
        lock_a = san.lock(name="lock-A")
        lock_b = san.lock(name="lock-B")
        gate = threading.Barrier(2, timeout=10)

        def ab():
            gate.wait()
            with lock_a:
                with lock_b:
                    pass

        def ba():
            gate.wait()
            with lock_b:
                with lock_a:
                    pass

        # serialize the two orderings so neither thread actually blocks:
        # the *graph* still records A→B and B→A
        t1 = threading.Thread(target=ab)
        t2 = threading.Thread(target=ba)
        t1.start()
        t2.start()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not t1.is_alive() and not t2.is_alive()
        return san

    def seed_abba_serial(self):
        # fully deterministic variant: one thread A→B, another B→A, run
        # sequentially — no real deadlock is even possible, yet the
        # order-graph cycle is still detected
        san = LockSanitizer()
        lock_a = san.lock(name="lock-A")
        lock_b = san.lock(name="lock-B")

        def ab():
            with lock_a:
                with lock_b:
                    pass

        def ba():
            with lock_b:
                with lock_a:
                    pass

        t1 = threading.Thread(target=ab)
        t1.start()
        t1.join(timeout=10)
        t2 = threading.Thread(target=ba)
        t2.start()
        t2.join(timeout=10)
        return san

    def test_cycle_detected(self):
        san = self.seed_abba_serial()
        cycles = san.cycles
        assert len(cycles) == 1
        assert set(cycles[0]["nodes"]) == {"lock-A", "lock-B"}

    def test_cycle_reports_both_lock_sites_stacks(self):
        san = self.seed_abba_serial()
        [cycle] = san.cycles
        assert len(cycle["edges"]) == 2
        for edge in cycle["edges"]:
            # each edge carries the stack that was *holding* the first
            # lock and the stack *acquiring* the second
            assert edge["holding_stack"], edge
            assert edge["acquiring_stack"], edge
            assert any("test_sanitizer.py" in line for line in edge["acquiring_stack"])
        froms = {e["from"] for e in cycle["edges"]}
        assert froms == {"lock-A", "lock-B"}

    def test_cycle_survives_concurrent_seeding(self):
        san = self.seed_abba()
        assert len(san.cycles) == 1

    def test_cycle_not_duplicated_on_repeat_traversal(self):
        san = self.seed_abba_serial()
        # re-walk one of the orders on a fresh thread: same cycle, reported once
        lock_a = san.lock(name="lock-A")
        lock_b = san.lock(name="lock-B")

        def ab():
            with lock_a:
                with lock_b:
                    pass

        run_threads(ab)
        assert len(san.cycles) == 1


class TestNegativeControl:
    def test_consistent_order_has_no_cycles(self):
        san = LockSanitizer()
        lock_a = san.lock(name="lock-A")
        lock_b = san.lock(name="lock-B")

        def worker():
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        run_threads(worker, worker, worker)
        assert san.cycles == []
        report = san.report()
        assert [e["from"] for e in report["edges"]] == ["lock-A"]
        assert report["lock_classes"]["lock-A"]["acquisitions"] == 150

    def test_three_lock_cycle_detected(self):
        # A→B, B→C, C→A: a cycle no pairwise check would see
        san = LockSanitizer()
        locks = {k: san.lock(name=k) for k in ("A", "B", "C")}

        def pair(first, second):
            def go():
                with locks[first]:
                    with locks[second]:
                        pass
            return go

        for first, second in (("A", "B"), ("B", "C"), ("C", "A")):
            run_threads(pair(first, second))
        [cycle] = san.cycles
        assert set(cycle["nodes"]) == {"A", "B", "C"}
        assert len(cycle["edges"]) == 3


class TestSelfDeadlock:
    def test_reacquire_plain_lock_raises(self):
        san = LockSanitizer()
        lock = san.lock(name="L")
        with lock:
            with pytest.raises(SelfDeadlockError):
                lock.acquire()
        assert len(san.self_deadlocks) == 1
        assert san.self_deadlocks[0]["lock"] == "L"

    def test_rlock_reentry_is_fine(self):
        san = LockSanitizer()
        lock = san.rlock(name="R")
        with lock:
            with lock:
                pass
        assert san.self_deadlocks == []
        assert san.cycles == []

    def test_nonblocking_reacquire_returns_false(self):
        san = LockSanitizer()
        lock = san.lock(name="L")
        with lock:
            assert lock.acquire(blocking=False) is False


class TestConditionIntegration:
    def test_wait_notify_roundtrip_keeps_held_state(self):
        san = LockSanitizer()
        lock = san.lock(name="q-lock")
        cond = san.condition(lock)
        items = []

        def producer():
            with cond:
                items.append(1)
                cond.notify()

        def consumer():
            with cond:
                while not items:
                    assert cond.wait(timeout=5)
                items.pop()

        run_threads(consumer, producer)
        assert items == []
        # wait() released and re-acquired cleanly: nothing held, no cycles
        assert san._held_count(lock) == 0
        assert san.cycles == []

    def test_argless_condition_gets_sanitized_rlock(self):
        san = LockSanitizer()
        cond = san.condition(name="own")
        with cond:
            with cond._lock:  # reentrant — sanitized RLock underneath
                pass
        assert san.report()["lock_classes"]["own"]["kind"] == "RLock"


class TestInstallFiltering:
    def test_repro_prefixed_callers_get_sanitized_locks(self):
        # run the factory call from a frame whose module claims to be
        # part of repro.* — exactly what the caller-attribution sees
        san = LockSanitizer().install()
        try:
            ns = {"__name__": "repro._sanitizer_probe", "threading": threading}
            exec("made = threading.Lock()", ns)
            assert hasattr(ns["made"], "_lclass")
            assert len(san.report()["lock_classes"]) == 1
        finally:
            san.uninstall()

    def test_non_repro_callers_get_raw_locks(self):
        san = LockSanitizer().install()
        try:
            lock = threading.Lock()  # caller module: tests.*, not repro.*
            assert not hasattr(lock, "_lclass")
            assert san.report()["lock_classes"] == {}
        finally:
            san.uninstall()

    def test_uninstall_restores_factories(self):
        before = (threading.Lock, threading.RLock, threading.Condition)
        san = LockSanitizer().install()
        san.uninstall()
        assert (threading.Lock, threading.RLock, threading.Condition) == before

    def test_double_install_rejected(self):
        san = LockSanitizer().install()
        try:
            with pytest.raises(RuntimeError):
                san.install()
        finally:
            san.uninstall()


class TestEnvAndReport:
    def test_enabled_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not enabled_from_env()
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv(ENV_FLAG, value)
            assert enabled_from_env()
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not enabled_from_env()

    def test_write_report_and_check_clean(self, tmp_path, capsys):
        san = LockSanitizer()
        lock = san.lock(name="only")
        with lock:
            pass
        path = tmp_path / "report.json"
        doc = san.write_report(str(path))
        assert json.loads(path.read_text()) == doc
        assert main(["--check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cycles: 0" in out

    def test_check_fails_on_cycles(self, tmp_path, capsys):
        san = TestAbbaPositiveControl().seed_abba_serial()
        path = tmp_path / "report.json"
        san.write_report(str(path))
        assert main(["--check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "CYCLE: " in out
        assert "held while acquiring" in out

    def test_check_unreadable_report(self, tmp_path):
        assert main(["--check", str(tmp_path / "missing.json")]) == 2

    def test_hold_stats_tallied(self):
        san = LockSanitizer()
        lock = san.lock(name="H")
        with lock:
            pass
        stats = san.report()["lock_classes"]["H"]
        assert stats["acquisitions"] == 1
        assert stats["max_hold_s"] >= 0
