"""SDL1xx guard-inference rules: positive (flagged) and negative (clean)."""
import textwrap

from repro.analysis.cli import analyze_source


def findings_for(src, path="src/repro/bus/example.py", rule=None):
    found = analyze_source(textwrap.dedent(src), path)
    if rule is not None:
        found = [f for f in found if f.rule_id == rule]
    return found


# ---------------------------------------------------------------- SDL101 --
class TestUnguardedAccess:
    POSITIVE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._rows = []
            self._count = 0

        def add(self, row):
            with self._lock:
                self._rows.append(row)
                self._count += 1

        def reset(self):
            with self._lock:
                self._rows = []
                self._count = 0

        def racy_total(self):
            return self._count  # no lock
    """

    def test_flags_unguarded_read(self):
        found = findings_for(self.POSITIVE, rule="SDL101")
        assert len(found) == 1
        f = found[0]
        assert f.detail == "_count"
        assert f.scope == "Store.racy_total"
        assert "unguarded read" in f.message

    def test_clean_when_every_access_guarded(self):
        clean = self.POSITIVE.replace(
            "def racy_total(self):\n            return self._count  # no lock",
            "def racy_total(self):\n"
            "            with self._lock:\n"
            "                return self._count",
        )
        assert findings_for(clean, rule="SDL101") == []

    def test_init_accesses_do_not_count_against(self):
        # construction writes are exempt: the instance is not shared yet
        src = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._v = 0
                self._v = self._v + 1

            def bump(self):
                with self._lock:
                    self._v += 1

            def read(self):
                with self._lock:
                    return self._v
        """
        assert findings_for(src, rule="SDL101") == []

    def test_condition_alias_counts_as_the_lock(self):
        # entering a Condition built over self._lock IS entering the lock
        # (the two-condition protocol bus.queues uses)
        src = """
        import threading

        class Q:
            def __init__(self):
                self._lock = threading.Lock()
                self._not_empty = threading.Condition(self._lock)
                self._items = []

            def put(self, x):
                with self._lock:
                    self._items.append(x)

            def get(self):
                with self._not_empty:
                    return self._items.pop(0)

            def steal(self):
                return self._items.pop()  # unguarded
        """
        found = findings_for(src, rule="SDL101")
        assert [f.scope for f in found] == ["Q.steal"]

    def test_helper_called_only_under_lock_is_guarded_context(self):
        # the _require()-style pattern: helper bodies inherit the callers'
        # lock context when every intra-class call site is guarded
        src = """
        import threading

        class DB:
            def __init__(self):
                self._lock = threading.Lock()
                self._tables = {}

            def _require(self, name):
                return self._tables[name]

            def read(self, name):
                with self._lock:
                    return list(self._require(name))

            def write(self, name, row):
                with self._lock:
                    self._require(name).append(row)
        """
        assert findings_for(src, rule="SDL101") == []

    def test_construction_only_helper_is_exempt(self):
        # _setup() is only called from __init__: unguarded accesses fine
        src = """
        import threading

        class Conn:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = {}
                self._setup()

            def _setup(self):
                self._state["ready"] = True

            def get(self, k):
                with self._lock:
                    return self._state[k]

            def set(self, k, v):
                with self._lock:
                    self._state[k] = v
        """
        assert findings_for(src, rule="SDL101") == []

    def test_single_guarded_access_infers_nothing(self):
        # below MIN_GUARDED_ACCESSES the evidence is too thin to call
        src = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._v = 0

            def a(self):
                with self._lock:
                    return self._v

            def b(self):
                return self._v
        """
        assert findings_for(src, rule="SDL101") == []


# ---------------------------------------------------------------- SDL102 --
class TestBlockingUnderLock:
    def test_flags_sleep_under_lock(self):
        src = """
        import threading, time

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def slow(self):
                with self._lock:
                    time.sleep(1.0)
        """
        found = findings_for(src, rule="SDL102")
        assert len(found) == 1
        assert "time.sleep()" in found[0].message

    def test_flags_publish_and_queue_put_under_module_lock(self):
        src = """
        import threading

        _lock = threading.Lock()

        def relay(bus, queue, msg):
            with _lock:
                bus.publish("k", msg)
                queue.put(msg)
        """
        rules = [f.detail for f in findings_for(src, rule="SDL102")]
        assert ".publish()" in rules
        assert any("put" in d for d in rules)

    def test_clean_when_blocking_call_moved_outside(self):
        # the Broker.publish shape: route under the lock, put outside it
        src = """
        import threading

        class B:
            def __init__(self):
                self._lock = threading.Lock()
                self._queues = {}

            def publish_to(self, key, body):
                with self._lock:
                    targets = list(self._queues.values())
                for q in targets:
                    q.put(body)
        """
        assert findings_for(src, rule="SDL102") == []

    def test_condition_wait_is_not_blocking_under_lock(self):
        # wait() releases the lock it waits on — must not be flagged
        src = """
        import threading

        class Q:
            def __init__(self):
                self._lock = threading.Lock()
                self._not_empty = threading.Condition(self._lock)
                self._items = []

            def get(self):
                with self._not_empty:
                    while not self._items:
                        self._not_empty.wait(0.5)
                    return self._items.pop(0)
        """
        assert findings_for(src, rule="SDL102") == []


# ---------------------------------------------------------------- SDL103 --
class TestManualAcquire:
    def test_flags_acquire_without_finally(self):
        src = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._v = 0

            def bad(self):
                self._lock.acquire()
                self._v += 1
                self._lock.release()
        """
        found = findings_for(src, rule="SDL103")
        assert len(found) == 1
        assert found[0].detail == "self._lock"

    def test_clean_with_try_finally(self):
        src = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._v = 0

            def ok(self):
                self._lock.acquire()
                try:
                    self._v += 1
                finally:
                    self._lock.release()
        """
        assert findings_for(src, rule="SDL103") == []

    def test_clean_with_context_manager(self):
        src = """
        import threading

        _mu = threading.Lock()

        def ok():
            with _mu:
                pass
        """
        assert findings_for(src, rule="SDL103") == []

    def test_non_lock_receiver_not_flagged(self):
        # .acquire()/.release() on slot/semaphore-style objects with
        # non-lock names is out of scope
        src = """
        def run(site):
            site.acquire()
            site.release()
        """
        assert findings_for(src, rule="SDL103") == []
