"""stampede-devlint CLI: exit codes, formats, baseline workflow."""
import json
import textwrap

import pytest

from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.cli import analyze_source, iter_python_files, main

BAD = textwrap.dedent("""
    import threading, time

    class C:
        def __init__(self):
            self._lock = threading.Lock()

        def slow(self):
            with self._lock:
                time.sleep(1.0)
""")

CLEAN = textwrap.dedent("""
    import threading

    class C:
        def __init__(self):
            self._lock = threading.Lock()
            self._v = 0

        def bump(self):
            with self._lock:
                self._v += 1
""")


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "pkg"
    sub = pkg / "sub"
    sub.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD)
    (sub / "clean.py").write_text(CLEAN)
    (sub / "skipme.txt").write_text("not python")
    return pkg


class TestWalk:
    def test_iter_python_files(self, tree):
        files = list(iter_python_files(str(tree)))
        assert [f.split("/")[-1] for f in files] == ["bad.py", "clean.py"]

    def test_single_file(self, tree):
        assert list(iter_python_files(str(tree / "bad.py"))) == [str(tree / "bad.py")]


class TestExitCodes:
    def test_findings_exit_1(self, tree, capsys):
        assert main([str(tree)]) == 1
        out = capsys.readouterr().out
        assert "SDL102" in out

    def test_clean_tree_exit_0(self, tree, capsys):
        assert main([str(tree / "sub")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_fail_on_error_ignores_warnings(self, tree):
        # SDL102 is a warning; raising the threshold passes
        assert main([str(tree), "--fail-on", "error"]) == 0

    def test_missing_path_usage_error(self, capsys):
        assert main(["/nonexistent/dir"]) == 2

    def test_no_paths_usage_error(self, capsys):
        assert main([]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SDL101" in out and "SDL203" in out


class TestSelectIgnore:
    def test_ignore_drops_rule(self, tree):
        assert main([str(tree), "--ignore", "SDL102"]) == 0

    def test_select_prefix(self, tree, capsys):
        assert main([str(tree), "--select", "SDL2"]) == 0
        assert main([str(tree), "--select", "SDL1"]) == 1


class TestJsonFormat:
    def test_json_document(self, tree, capsys):
        main([str(tree), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["total"] == 1
        assert doc["findings"][0]["rule"] == "SDL102"
        assert doc["findings"][0]["fingerprint"]


class TestBaselineWorkflow:
    def test_write_then_check_exits_0(self, tree, tmp_path, capsys):
        base = tmp_path / "analysis-baseline.json"
        assert main([str(tree), "--write-baseline", str(base)]) == 0
        doc = json.loads(base.read_text())
        assert doc["tool"] == "stampede-devlint"
        assert len(doc["suppressions"]) == 1
        capsys.readouterr()
        assert main([str(tree), "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined finding(s) suppressed" in out

    def test_new_finding_still_fails(self, tree, tmp_path):
        base = tmp_path / "b.json"
        main([str(tree), "--write-baseline", str(base)])
        (tree / "worse.py").write_text(BAD.replace("class C", "class D"))
        assert main([str(tree), "--baseline", str(base)]) == 1

    def test_stale_entries_reported_not_fatal(self, tree, tmp_path, capsys):
        base = tmp_path / "b.json"
        main([str(tree), "--write-baseline", str(base)])
        (tree / "bad.py").write_text(CLEAN)
        capsys.readouterr()
        assert main([str(tree), "--baseline", str(base)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_corrupt_baseline_usage_error(self, tree, tmp_path):
        base = tmp_path / "b.json"
        base.write_text("{}")
        assert main([str(tree), "--baseline", str(base)]) == 2

    def test_split_findings(self):
        findings = analyze_source(BAD, "src/repro/bus/x.py")
        baseline = Baseline.from_findings(findings)
        new, suppressed, stale = split_findings(findings, baseline)
        assert new == [] and len(suppressed) == 1 and stale == []
        other = analyze_source(BAD, "src/repro/bus/y.py")
        new2, _, stale2 = split_findings(other, baseline)
        assert len(new2) == 1 and len(stale2) == 1

    def test_roundtrip_preserves_justification(self, tmp_path):
        findings = analyze_source(BAD, "src/repro/bus/x.py")
        baseline = Baseline.from_findings(findings)
        baseline.entries[0].justification = "intentional: see docs"
        path = tmp_path / "b.json"
        baseline.save(str(path))
        loaded = Baseline.load(str(path))
        assert loaded.entries[0].justification == "intentional: see docs"
        assert loaded.fingerprints == {
            e.fingerprint: e for e in loaded.entries
        }


class TestRepoIsClean:
    def test_devlint_over_src_repro_with_committed_baseline(self, capsys):
        """The acceptance gate: the shipped tree passes its own linter."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        src = os.path.join(root, "src", "repro")
        base = os.path.join(root, "analysis-baseline.json")
        args = [src]
        if os.path.exists(base):
            args += ["--baseline", base]
        assert main(args) == 0
