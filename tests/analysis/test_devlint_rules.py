"""SDL2xx invariant rules, suppressions, and finding fingerprints."""
import textwrap

from repro.analysis.cli import analyze_source
from repro.analysis.rules import DEV_RULES, Severity, suppressed_lines


def findings_for(src, path="src/repro/loader/example.py", rule=None):
    found = analyze_source(textwrap.dedent(src), path)
    if rule is not None:
        found = [f for f in found if f.rule_id == rule]
    return found


class TestCatalog:
    def test_rule_ids_stable(self):
        assert {"SDL001", "SDL101", "SDL102", "SDL103",
                "SDL201", "SDL202", "SDL203"} <= set(DEV_RULES)

    def test_severities(self):
        assert DEV_RULES["SDL101"].severity is Severity.ERROR
        assert DEV_RULES["SDL103"].severity is Severity.ERROR
        assert DEV_RULES["SDL201"].severity is Severity.WARNING


class TestSyntaxError:
    def test_unparsable_source_is_sdl001(self):
        found = analyze_source("def broken(:\n", "src/repro/x.py")
        assert [f.rule_id for f in found] == ["SDL001"]


# ---------------------------------------------------------------- SDL201 --
class TestHotLoopInc:
    HOT = """
    def consume(counter, events):
        for event in events:
            handle(event)
            counter.inc()
    """

    def test_flags_inc_in_loop_on_hot_path(self):
        found = findings_for(self.HOT, path="src/repro/loader/nl_load.py",
                             rule="SDL201")
        assert len(found) == 1
        assert found[0].scope == "consume"

    def test_not_flagged_outside_hot_modules(self):
        assert findings_for(self.HOT, path="src/repro/core/dashboard.py",
                            rule="SDL201") == []

    def test_inc_outside_loop_is_clean(self):
        src = """
        def flush(counter, batch):
            write(batch)
            counter.inc(len(batch))
        """
        assert findings_for(src, rule="SDL201") == []


# ---------------------------------------------------------------- SDL202 --
class TestWallClockElapsed:
    def test_flags_time_time_interval(self):
        src = """
        import time

        def timed(work):
            start = time.time()
            work()
            return time.time() - start
        """
        found = findings_for(src, rule="SDL202")
        assert len(found) == 1

    def test_monotonic_is_clean(self):
        src = """
        import time

        def timed(work):
            start = time.monotonic()
            work()
            return time.monotonic() - start
        """
        assert findings_for(src, rule="SDL202") == []

    def test_wall_clock_stamp_alone_is_clean(self):
        # a single wall-clock reading (message stamp, checkpoint ts) is
        # legitimate — only *intervals* from two local readings are flagged
        src = """
        import time

        def stamp(headers):
            headers["x-pub-ts"] = time.time()
            return headers
        """
        assert findings_for(src, rule="SDL202") == []

    def test_cross_source_subtraction_is_clean(self):
        # latency vs a publisher stamp from another process must use the
        # shared wall clock; not flagged
        src = """
        import time

        def deliver_latency(pub_ts):
            return time.time() - pub_ts
        """
        assert findings_for(src, rule="SDL202") == []


# ---------------------------------------------------------------- SDL203 --
class TestBareExcept:
    def test_flags_bare_except(self):
        src = """
        def swallow(op):
            try:
                op()
            except:
                pass
        """
        found = findings_for(src, rule="SDL203")
        assert len(found) == 1

    def test_named_except_is_clean(self):
        src = """
        def tolerate(op):
            try:
                op()
            except Exception:
                pass
        """
        assert findings_for(src, rule="SDL203") == []


# ------------------------------------------------------------ suppression --
class TestInlineSuppression:
    def test_ignore_specific_rule(self):
        src = """
        def swallow(op):
            try:
                op()
            except:  # devlint: ignore[SDL203]
                pass
        """
        assert findings_for(src, rule="SDL203") == []

    def test_ignore_all_rules_on_line(self):
        src = """
        def swallow(op):
            try:
                op()
            except:  # devlint: ignore
                pass
        """
        assert findings_for(src) == []

    def test_other_rule_id_does_not_suppress(self):
        src = """
        def swallow(op):
            try:
                op()
            except:  # devlint: ignore[SDL101]
                pass
        """
        assert len(findings_for(src, rule="SDL203")) == 1

    def test_suppressed_lines_parser(self):
        text = "x = 1\ny = 2  # devlint: ignore[SDL101,SDL102]\nz = 3  # devlint: ignore\n"
        marks = suppressed_lines(text)
        assert marks[2] == {"SDL101", "SDL102"}
        assert marks[3] is None
        assert 1 not in marks


# ------------------------------------------------------------- fingerprint --
class TestFingerprints:
    SRC = """
    def swallow(op):
        try:
            op()
        except:
            pass
    """

    def test_stable_across_line_drift(self):
        a = findings_for(self.SRC)[0]
        b = findings_for("# a new leading comment\n\n" + textwrap.dedent(self.SRC))
        assert a.fingerprint() == b[0].fingerprint()
        assert a.line != b[0].line

    def test_differs_across_files(self):
        a = findings_for(self.SRC, path="src/repro/loader/a.py")[0]
        b = findings_for(self.SRC, path="src/repro/loader/b.py")[0]
        assert a.fingerprint() != b.fingerprint()

    def test_to_dict_has_fingerprint(self):
        f = findings_for(self.SRC)[0]
        doc = f.to_dict()
        assert doc["fingerprint"] == f.fingerprint()
        assert doc["rule"] == "SDL203"
