"""Fault injection across the whole stack: a failing unit inside one
TrianaCloud bundle must surface in the bundle's report, the root monitor,
the archive, and the analyzer's hierarchical drill-down."""
import pytest

from repro.core.analyzer import analyze, render_analysis
from repro.core.prediction import failure_score, failure_signals
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.triana.bundles import WorkflowBundle, register_unit_codec
from repro.triana.cloud import CloudJoinUnit, TrianaCloudBroker
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import ConstantUnit, ExecUnit, FailingUnit, ZipperUnit
from repro.util.simclock import SimClock
from repro.util.uuidgen import derive_uuid

# FailingUnit needs a codec so it can travel in a bundle
register_unit_codec(
    "failing",
    FailingUnit,
    lambda u: {"message": u.message},
    lambda name, kw: FailingUnit(name, message=kw["message"]),
)


def make_bundle(name: str, broken: bool) -> WorkflowBundle:
    g = TaskGraph(name)
    src = g.add(ConstantUnit("input", ["w"]))
    for i in range(3):
        if broken and i == 1:
            worker = g.add(FailingUnit(f"exec{i}", message="disk full"))
        else:
            worker = g.add(ExecUnit(f"exec{i}", ["run"], base_seconds=5.0))
        g.connect(src, worker)
    z = g.add(ZipperUnit("zip"))
    for i in range(3):
        g.connect(g[f"exec{i}"], z)
    return WorkflowBundle.from_graph(g)


@pytest.fixture(scope="module")
def faulty_run():
    clock = SimClock()
    sink = MemoryAppender()
    broker = TrianaCloudBroker(clock, sink, n_nodes=2)
    root = TaskGraph("faulty-meta")
    join_unit = CloudJoinUnit("monitor", broker)
    root.add(join_unit)
    scheduler = Scheduler(root, clock=clock, seed=0)
    root_xwf = derive_uuid("faults", "root")
    log = StampedeLog(scheduler, sink, xwf_id=root_xwf)
    broker.attach_parent(log)
    join_unit.bind(scheduler)
    scheduler.start()
    for i in range(4):
        broker.submit(make_bundle(f"bundle-{i}", broken=(i == 2)).to_json(),
                      submitting_job="monitor")
    clock.run()
    scheduler.finalize()
    return sink, scheduler, broker, root_xwf


class TestFaultPropagation:
    def test_broken_bundle_fails(self, faulty_run):
        sink, scheduler, broker, root_xwf = faulty_run
        outcomes = {r.bundle.name: r.report.ok for r in broker.runs}
        assert outcomes == {
            "bundle-0": True,
            "bundle-1": True,
            "bundle-2": False,
            "bundle-3": True,
        }

    def test_root_monitor_fails(self, faulty_run):
        sink, scheduler, broker, root_xwf = faulty_run
        assert not scheduler.report.ok
        assert scheduler.report.errored == 1  # the monitor task

    def test_archive_reflects_hierarchy(self, faulty_run):
        sink, scheduler, broker, root_xwf = faulty_run
        q = StampedeQuery(load_events(sink.events).archive)
        root = q.workflow_by_uuid(root_xwf)
        assert q.workflow_status(root.wf_id) == -1
        counts = q.summary_counts(root.wf_id)
        assert counts.subwf_total == 4
        assert counts.subwf_failed == 1
        assert counts.subwf_succeeded == 3
        assert counts.tasks_failed >= 1

    def test_analyzer_drills_into_failed_bundle(self, faulty_run):
        sink, scheduler, broker, root_xwf = faulty_run
        q = StampedeQuery(load_events(sink.events).archive)
        root = q.workflow_by_uuid(root_xwf)
        analysis = analyze(q, wf_id=root.wf_id)
        assert not analysis.ok
        # default drill-down recurses ONLY into the failed sub-workflow
        assert len(analysis.sub_analyses) == 1
        sub = analysis.sub_analyses[0]
        (failed_job,) = sub.failed_jobs
        assert failed_job.exec_job_id == "exec1"
        assert "disk full" in (failed_job.stderr_text or "")
        text = render_analysis(analysis)
        assert "exec1" in text and "disk full" in text

    def test_failure_score_elevated(self, faulty_run):
        sink, scheduler, broker, root_xwf = faulty_run
        q = StampedeQuery(load_events(sink.events).archive)
        root = q.workflow_by_uuid(root_xwf)
        signals = failure_signals(q, root.wf_id)
        assert signals.failure_fraction > 0
        assert failure_score(signals) > failure_score(
            failure_signals(q, q.sub_workflows(root.wf_id)[0].wf_id)
        )

    def test_deadlocked_zipper_incomplete(self, faulty_run):
        """In the broken bundle, the zipper never got exec1's output."""
        sink, scheduler, broker, root_xwf = faulty_run
        q = StampedeQuery(load_events(sink.events).archive)
        root = q.workflow_by_uuid(root_xwf)
        broken = next(
            w for w in q.sub_workflows(root.wf_id)
            if q.workflow_status(w.wf_id) == -1
        )
        counts = q.summary_counts(broken.wf_id, include_descendants=False)
        assert counts.jobs_incomplete >= 1  # the starving zipper
