"""Distributed ingest acceptance: N loaders, one stream, zero drift.

The paper's multi-consumer story (Sec. 3: several loaders share the
monitoring bus) upgraded to a hard guarantee: loader *processes*
consuming one event stream through a consumer group must archive,
between them, row for row what a single sequential loader would —
under a clean run AND under bus chaos.  "Row for row" is checked on
the canonical (surrogate-free) dump from :mod:`repro.archive.merge`,
which keeps duplicates, so a double-committed event fails the diff
instead of hiding inside set semantics.

Three CyberShake workflows are interleaved into one stream so the
group actually splits work: partitioning is by root workflow id, and
the chosen seeds land on partitions owned by different members.
"""
import itertools
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.archive import StampedeArchive
from repro.archive.merge import canonical_dump, diff_canonical, merge_canonical
from repro.bus.broker import Broker
from repro.bus.net import BrokerServer, RemoteConsumer
from repro.faults import ChaosBroker, FaultPlan
from repro.loader import load_events, load_from_bus, make_loader
from repro.netlogger.events import NLEvent
from repro.netlogger.stream import write_events
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: three workflows whose root ids land on partitions owned by *both*
#: members of a two-member group (partitions=4): seeds 1 and 2 hash to
#: partition 3, seed 3 to partition 0 — verified deterministic (crc32
#: over seeded uuids)
EVENT_SEEDS = (1, 2, 3)
PARTITIONS = 4
GROUP = "loaders"

CHAOS_SPEC = {
    "seed": 4321,
    "bus": {"drop": 0.1, "duplicate": 0.1, "reorder": 0.1, "reorder_depth": 4},
}


def _events_for(seed):
    sink = MemoryAppender()
    run_pegasus_workflow(
        cybershake(n_ruptures=2),
        sink,
        catalog=SiteCatalog(
            [Site("pool", slots=16, mean_queue_delay=1.0, hosts_per_site=4)]
        ),
        planner_config=PlannerConfig(cluster_size=4),
        seed=seed,
    )
    return list(sink.events)


def _normalize(events):
    """Round-trip through the BP codec once.

    Events cross the wire as BP text, which formats timestamps at
    microsecond precision and stringifies attrs; the sequential baseline
    must be built from the same values or the canonical diff flags
    nothing but float formatting.  The codec is idempotent, so paths
    that re-encode (file → publisher → TCP) stay byte-stable.
    """
    return [NLEvent.from_bp(e.to_bp()) for e in events]


@pytest.fixture(scope="module")
def stream():
    streams = [_events_for(s) for s in EVENT_SEEDS]
    return _normalize(
        event
        for batch in itertools.zip_longest(*streams)
        for event in batch
        if event is not None
    )


@pytest.fixture(scope="module")
def baseline(stream):
    return canonical_dump(load_events(stream, batch_size=50).archive)


def _await_commit_floors(group, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if all(
            group.committed(p) == group.published_seq(p)
            for p in range(group.partitions)
        ) and sum(group.published_seq(p) for p in range(group.partitions)):
            return True
        time.sleep(0.05)
    return False


def _group(broker):
    for group in broker.groups():
        if group.name == GROUP:
            return group
    return None


def _subenv():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


class TestCleanSubprocessIngest:
    def test_two_nl_load_processes_match_sequential_baseline(
        self, stream, baseline, tmp_path
    ):
        """The full stack, processes and all: an in-test BrokerServer,
        two real ``nl-load --bus`` loader processes joined to one
        consumer group, one ``stampede-bus publish`` process replaying
        the BP log."""
        bp = tmp_path / "events.bp"
        write_events(bp, stream)
        dbs = [tmp_path / f"out{i}.db" for i in range(2)]
        broker = Broker()
        with BrokerServer(broker) as server:
            loaders = [
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.loader.nl_load",
                        "--bus", server.url,
                        "--group", GROUP,
                        "--member-id", f"m{i}",
                        "--partitions", str(PARTITIONS),
                        "--idle-exit", "3.0",
                        "stampede_loader", f"connString=sqlite:///{db}",
                    ],
                    env=_subenv(),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                )
                for i, db in enumerate(dbs)
            ]
            try:
                # both members joined server-side before anything is
                # published: partition queues exist from the first event
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    group = _group(broker)
                    if group is not None and len(group.members()) == 2:
                        break
                    time.sleep(0.05)
                group = _group(broker)
                assert group is not None and len(group.members()) == 2

                publish = subprocess.run(
                    [
                        sys.executable, "-m", "repro.bus.cli",
                        "publish", str(bp), "--bus", server.url,
                    ],
                    env=_subenv(),
                    capture_output=True,
                    text=True,
                    timeout=60,
                )
                assert publish.returncode == 0, publish.stderr
                assert f"published {len(stream)} events" in publish.stdout

                assert _await_commit_floors(group), (
                    "commit floors never reached the published high-water marks: "
                    + str([
                        (group.committed(p), group.published_seq(p))
                        for p in range(PARTITIONS)
                    ])
                )
                outs = []
                for proc in loaders:
                    out, _ = proc.communicate(timeout=60)
                    outs.append(out)
                    assert proc.returncode == 0, out
            finally:
                for proc in loaders:
                    if proc.poll() is None:
                        proc.kill()

        dumps = [
            canonical_dump(StampedeArchive.open(f"sqlite:///{db}"))
            for db in dbs
        ]
        assert diff_canonical(baseline, merge_canonical(*dumps)) == []
        # the split actually happened: neither loader saw the whole stream
        for dump, out in zip(dumps, outs):
            assert 0 < len(dump["workflow"]) < len(EVENT_SEEDS), out

    def test_stampede_bus_serve_announce_roundtrip(self, tmp_path):
        """`stampede-bus serve --announce` end to end: the url file
        appears atomically, a consumer can subscribe, a publisher
        process can feed it."""
        events = _normalize(_events_for(1)[:40])
        bp = tmp_path / "events.bp"
        write_events(bp, events)
        announce = tmp_path / "bus.url"
        serve = subprocess.Popen(
            [
                sys.executable, "-m", "repro.bus.cli",
                "serve", "--port", "0", "--announce", str(announce),
            ],
            env=_subenv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 20
            while not announce.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert announce.exists(), "server never announced its url"
            url = announce.read_text().strip()
            assert url.startswith("tcp://")
            consumer = RemoteConsumer(url, queue_name="q", durable=True)
            publish = subprocess.run(
                [
                    sys.executable, "-m", "repro.bus.cli",
                    "publish", str(bp), "--bus", url,
                ],
                env=_subenv(),
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert publish.returncode == 0, publish.stderr
            got = []
            deadline = time.monotonic() + 15
            while len(got) < len(events) and time.monotonic() < deadline:
                event = consumer.get(timeout=0.5)
                if event is not None:
                    got.append(event)
            assert got == events
            consumer.cancel()
        finally:
            serve.kill()
            serve.wait(timeout=10)


class TestChaosIngest:
    def _run_members(self, url, n, stop, **kwargs):
        loaders = [make_loader(batch_size=25) for _ in range(n)]
        threads = [
            threading.Thread(
                target=load_from_bus,
                args=(url,),
                kwargs=dict(
                    group=GROUP,
                    member_id=f"m{i}",
                    partitions=PARTITIONS,
                    loader=loaders[i],
                    poll_timeout=0.05,
                    until=lambda _ld: stop.is_set(),
                    **kwargs,
                ),
            )
            for i in range(n)
        ]
        for t in threads:
            t.start()
        return loaders, threads

    def test_two_members_survive_drop_duplicate_reorder(self, stream, baseline):
        """Chaos on the delivery path (drops → redelivery, duplicate
        publishes, bounded reorder) across a real TCP hop: the merged
        archives still match the sequential baseline row for row."""
        plan = FaultPlan.from_dict(CHAOS_SPEC)
        broker = ChaosBroker(plan)
        with BrokerServer(broker) as server:
            stop = threading.Event()
            loaders, threads = self._run_members(server.url, 2, stop)
            deadline = time.monotonic() + 20
            while _group(broker) is None or len(_group(broker).members()) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            from repro.bus.client import EventPublisher

            EventPublisher(broker).publish_all(stream)
            group = _group(broker)
            assert _await_commit_floors(group, deadline=60.0)
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()

        stats = plan.stats
        assert stats.messages_dropped > 0
        assert stats.messages_duplicated > 0
        assert stats.messages_reordered > 0
        assert group.publish_duplicates == stats.messages_duplicated
        merged = merge_canonical(
            *(canonical_dump(ld.archive) for ld in loaders)
        )
        assert diff_canonical(baseline, merged) == []
        assert all(ld.stats.events_processed > 0 for ld in loaders)
        assert sum(ld.stats.redelivered_events for ld in loaders) > 0
        assert sum(ld.stats.duplicates_skipped for ld in loaders) == 0

    def test_scripted_disconnect_same_member_rejoin_exactly_once(
        self, stream, baseline
    ):
        """A forced mid-stream disconnect severs the member; the loader
        reconnects under the same member id, so the redelivered
        committed-but-unacked window dedupes against its surviving
        resequencer — exactly-once, now across a process boundary.

        One member on purpose: a *cross*-member handover of uncommitted
        work is at-least-once by design (the old member's in-flight
        batch commits on connection loss while the new member re-reads
        it), so the exactly-once claim is per member identity.
        """
        plan = FaultPlan.from_dict(
            {"seed": 99, "bus": {"disconnect_after": [60]}}
        )
        broker = ChaosBroker(plan)
        with BrokerServer(broker) as server:
            stop = threading.Event()
            loaders, threads = self._run_members(server.url, 1, stop)
            deadline = time.monotonic() + 20
            while _group(broker) is None or not _group(broker).members():
                assert time.monotonic() < deadline
                time.sleep(0.05)
            from repro.bus.client import EventPublisher

            EventPublisher(broker).publish_all(stream)
            group = _group(broker)
            assert _await_commit_floors(group, deadline=60.0)
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()

        assert plan.stats.disconnects == 1
        loader = loaders[0]
        assert loader.stats.reconnects >= 1
        assert diff_canonical(baseline, canonical_dump(loader.archive)) == []
