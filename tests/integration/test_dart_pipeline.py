"""End-to-end reproduction of the paper's §VI/§VII experiment pipeline:

Triana engine → Stampede events → AMQP bus → nl_load → relational archive
→ stampede_statistics / stampede_analyzer — with Table I's exact counts.
"""
import threading

import pytest

from repro.bus.broker import Broker
from repro.bus.client import BusSink
from repro.core.analyzer import analyze
from repro.core.reports import render_summary
from repro.core.statistics import workflow_statistics
from repro.core.timeseries import bundle_progress
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_from_bus, load_events, make_loader
from repro.model.entities import WorkflowStateRow
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender


@pytest.fixture(scope="module")
def dart_run():
    """One full 306-command DART run, loaded into an archive."""
    sink = MemoryAppender()
    res = run_dart_experiment(sink, seed=0)
    loader = load_events(sink.events)
    q = StampedeQuery(loader.archive)
    root = q.workflow_by_uuid(res.root_xwf_id)
    return sink, res, q, root


class TestTableOne:
    def test_exact_counts(self, dart_run):
        _, res, q, root = dart_run
        counts = q.summary_counts(root.wf_id)
        # Table I, reproduced exactly
        assert counts.tasks_total == 367
        assert counts.tasks_succeeded == 367
        assert counts.tasks_failed == 0
        assert counts.jobs_total == 367
        assert counts.jobs_succeeded == 367
        assert counts.subwf_total == 20
        assert counts.subwf_succeeded == 20
        assert counts.jobs_retries == 0

    def test_wall_times_in_band(self, dart_run):
        _, res, q, root = dart_run
        stats = workflow_statistics(q, wf_id=root.wf_id)
        # paper: 661 s wall, 40 224 s cumulative; shape: cumulative/wall ≈ 60
        assert 450 < stats.wall_time < 1000
        assert 30_000 < stats.cumulative_job_wall_time < 50_000
        ratio = stats.cumulative_job_wall_time / stats.wall_time
        assert 35 < ratio < 90

    def test_summary_rendering(self, dart_run):
        _, res, q, root = dart_run
        text = render_summary(workflow_statistics(q, wf_id=root.wf_id))
        assert " 367 " in text.replace("367", " 367 ", 1) or "367" in text
        assert "Workflow cumulative job wall time" in text


class TestEventStream:
    def test_every_event_schema_valid(self, dart_run):
        sink, *_ = dart_run
        report = EventValidator(STAMPEDE_SCHEMA).validate(sink.events)
        assert report.ok, report.violations[:3]

    def test_static_precedes_execution_per_workflow(self, dart_run):
        sink, *_ = dart_run
        static_done = set()
        for event in sink.events:
            xwf = str(event.get("xwf.id"))
            if event.event == "stampede.static.end":
                static_done.add(xwf)
            if event.event.startswith("stampede.job_inst") or event.event.startswith(
                "stampede.inv"
            ):
                assert xwf in static_done, (
                    f"execution event {event.event} before static.end for {xwf}"
                )

    def test_all_hosts_are_cloud_nodes(self, dart_run):
        sink, *_ = dart_run
        hosts = {
            str(e["hostname"])
            for e in sink.events
            if e.event == "stampede.job_inst.host.info"
            and str(e["hostname"]) != "dart-desktop"
        }
        assert hosts == {f"trianaworker{i}" for i in range(8)}


class TestFigureSeven:
    def test_twenty_progress_series(self, dart_run):
        _, res, q, root = dart_run
        series = bundle_progress(q, root.wf_id)
        assert len(series) == 20
        for s in series:
            assert s.points, s.label
            # every bundle finishes within the workflow wall time
            assert s.completion_time <= res.wall_time + 1.0

    def test_bundles_finish_in_waves(self, dart_run):
        _, res, q, root = dart_run
        series = bundle_progress(q, root.wf_id)
        finishes = sorted(s.completion_time for s in series)
        # the spread between first and last completion is substantial
        assert finishes[-1] - finishes[0] > 30.0


class TestAnalyzer:
    def test_clean_run_analysis(self, dart_run):
        _, res, q, root = dart_run
        analysis = analyze(q, wf_id=root.wf_id)
        assert analysis.ok


class TestRealTimeBusLoading:
    def test_live_loading_concurrent_with_run(self):
        """Events published to the bus during the run are loaded in real
        time by a loader thread — the paper's deployment architecture."""
        broker = Broker()
        broker.declare_queue("stampede", durable=True)
        broker.bind_queue("stampede", "stampede.#")
        loader = make_loader()

        def consume():
            load_from_bus(
                broker,
                queue_name="stampede",
                durable=True,
                loader=loader,
                until=lambda ld: ld.archive.query(WorkflowStateRow)
                .eq("state", "WORKFLOW_TERMINATED")
                .count()
                >= 4,  # root + 3 bundles
            )

        thread = threading.Thread(target=consume)
        thread.start()
        from repro.dart.sweep import sweep_grid

        commands = [c.line for c in sweep_grid()[:12]]
        res = run_dart_experiment(
            BusSink(broker), seed=4, n_nodes=2, chunk_size=4, commands=commands
        )
        thread.join(timeout=30)
        assert not thread.is_alive()
        q = StampedeQuery(loader.archive)
        root = q.workflow_by_uuid(res.root_xwf_id)
        counts = q.summary_counts(root.wf_id)
        assert counts.tasks_total == 12 + 9 + 1
        assert counts.tasks_succeeded == counts.tasks_total
