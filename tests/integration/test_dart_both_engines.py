"""The strongest form of the paper's generality claim: the SAME DART
experiment executed by both engines, monitored by the same infrastructure,
producing the same Table I accounting."""
import pytest

from repro.dart.pegasus_variant import run_dart_pegasus
from repro.dart.sweep import sweep_grid
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender

COMMANDS = [c.line for c in sweep_grid()[:48]]
CHUNK = 16  # -> 3 bundles


@pytest.fixture(scope="module")
def both_runs():
    triana_sink = MemoryAppender()
    triana = run_dart_experiment(
        triana_sink, seed=0, n_nodes=3, chunk_size=CHUNK, commands=COMMANDS
    )
    pegasus_sink = MemoryAppender()
    pegasus = run_dart_pegasus(
        pegasus_sink, seed=0, n_nodes=3, chunk_size=CHUNK, commands=COMMANDS
    )
    tq = StampedeQuery(load_events(triana_sink.events).archive)
    pq = StampedeQuery(load_events(pegasus_sink.events).archive)
    troot = tq.workflow_by_uuid(triana.root_xwf_id)
    proot = pq.workflow_by_uuid(pegasus.xwf_id)
    return (triana_sink, triana, tq, troot), (pegasus_sink, pegasus, pq, proot)


class TestSameExperimentBothEngines:
    def test_both_succeed(self, both_runs):
        (_, triana, *_), (_, pegasus, *_) = both_runs
        assert triana.root_report.ok
        assert pegasus.ok

    def test_both_streams_validate(self, both_runs):
        (tsink, *_), (psink, *_) = both_runs
        validator = EventValidator(STAMPEDE_SCHEMA)
        assert validator.validate(tsink.events).ok
        assert validator.validate(psink.events).ok

    def test_identical_task_accounting(self, both_runs):
        (_, _, tq, troot), (_, _, pq, proot) = both_runs
        tc = tq.summary_counts(troot.wf_id)
        pc = pq.summary_counts(proot.wf_id)
        # 48 execs + 3 bundles x 3 aux + 1 parent task = 58
        assert tc.tasks_total == pc.tasks_total == 58
        assert tc.tasks_succeeded == pc.tasks_succeeded == 58
        assert tc.subwf_total == pc.subwf_total == 3
        assert tc.subwf_succeeded == pc.subwf_succeeded == 3
        assert tc.tasks_failed == pc.tasks_failed == 0

    def test_engine_differences_visible(self, both_runs):
        """Triana: 1:1 task/job; Pegasus adds sub-DAX wrapper jobs."""
        (_, _, tq, troot), (_, _, pq, proot) = both_runs
        tc = tq.summary_counts(troot.wf_id)
        pc = pq.summary_counts(proot.wf_id)
        assert tc.jobs_total == tc.tasks_total  # no planning stage
        assert pc.jobs_total == pc.tasks_total + 3  # + sub-DAX jobs

    def test_cumulative_times_comparable(self, both_runs):
        """Same duration model -> cumulative job wall time within 15%."""
        (_, _, tq, troot), (_, _, pq, proot) = both_runs
        t_cum = tq.cumulative_job_wall_time(troot.wf_id)
        p_cum = pq.cumulative_job_wall_time(proot.wf_id)
        assert t_cum > 0 and p_cum > 0
        assert abs(t_cum - p_cum) / max(t_cum, p_cum) < 0.15

    def test_same_tools_same_reports(self, both_runs):
        from repro.core.reports import render_summary
        from repro.core.statistics import workflow_statistics

        (_, _, tq, troot), (_, _, pq, proot) = both_runs
        for q, root in ((tq, troot), (pq, proot)):
            text = render_summary(workflow_statistics(q, wf_id=root.wf_id))
            assert "58" in text
            assert "Workflow cumulative job wall time" in text

    def test_bundle_progress_from_both(self, both_runs):
        from repro.core.timeseries import bundle_progress

        (_, _, tq, troot), (_, _, pq, proot) = both_runs
        t_series = bundle_progress(tq, troot.wf_id)
        p_series = bundle_progress(pq, proot.wf_id)
        assert len(t_series) == len(p_series) == 3
        for s in t_series + p_series:
            assert s.final_cumulative_runtime > 0
