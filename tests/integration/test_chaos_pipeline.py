"""The chaos acceptance suite: end-to-end resilience of the pipeline.

One seeded :class:`FaultPlan` throws everything at the loader at once —
message drops, duplicate deliveries, reorderings, a forced consumer
disconnect, injected archive lock failures, poison payloads — and the
final archive must still come out **row for row identical** (surrogate
keys included) to a fault-free baseline run.  That identity is the
paper-level claim the resilience layer exists to defend: monitoring data
is not allowed to be lost, duplicated, or misordered by infrastructure
failures.
"""
import json

import pytest

from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.faults import ChaosBroker, FaultPlan
from repro.loader import load_from_bus, make_loader
from repro.loader.dlq import DLQ_TABLE
from repro.loader.nl_load import main as nl_load_main
from repro.netlogger.stream import write_events

from tests.helpers import diamond_events
from tests.loader.test_checkpoint_resume import dump_archive

QUEUE = "stampede"

#: the acceptance scenario from the issue: drops + duplicates + reorders,
#: one forced consumer disconnect mid-stream, two archive lock failures
CHAOS_SPEC = {
    "seed": 1234,
    "bus": {
        "drop": 0.15,
        "duplicate": 0.15,
        "reorder": 0.15,
        "reorder_depth": 4,
        "disconnect_after": [30],
    },
    "archive": {"fail_transactions": [2, 5]},
}

POISON = [
    "ts=garbage this is not a BP line",
    "event=stampede.inv.end level=Info",  # missing its timestamp
]


def bind_queue(broker):
    broker.declare_queue(QUEUE, durable=True)
    broker.bind_queue(QUEUE, "stampede.#")


def publish_stream(broker, poison=False):
    """The diamond event stream; optionally two poison payloads mixed in.

    Poison messages are stamped under their own publisher id so chaos
    duplicates of them dedupe like any other message — a quarantine must
    happen exactly once per distinct poison event.
    """
    publisher = EventPublisher(broker)
    events = diamond_events()
    for i, event in enumerate(events):
        if poison and i in (10, 35):
            n = 1 if i == 10 else 2
            broker.publish(
                "stampede.inv.end",
                POISON[n - 1],
                headers={"x-publisher": "poison-pub", "x-seq": n},
            )
        publisher.publish(event)
    return len(events)


def baseline_run():
    broker = Broker()
    bind_queue(broker)
    publish_stream(broker)
    loader = make_loader(batch_size=10)
    load_from_bus(broker, queue_name=QUEUE, durable=True, loader=loader)
    return loader


def chaos_run(spec=CHAOS_SPEC, poison=True):
    plan = FaultPlan.from_dict(spec)
    broker = ChaosBroker(plan)
    bind_queue(broker)
    publish_stream(broker, poison=poison)
    loader = make_loader(batch_size=10)
    loader.archive.db = plan.wrap_database(loader.archive.db)
    load_from_bus(
        broker, queue_name=QUEUE, durable=True, loader=loader, dead_letter=True
    )
    return loader, plan


class TestChaosAcceptance:
    def test_archive_identical_to_fault_free_baseline(self):
        baseline = dump_archive(baseline_run().archive)
        loader, plan = chaos_run()

        # the chaos actually happened...
        stats = plan.stats
        assert stats.messages_dropped > 0
        assert stats.messages_duplicated > 0
        assert stats.messages_reordered > 0
        assert stats.disconnects == 1
        assert stats.archive_faults == 2
        assert stats.total_injected > 0

        # ...the resilience layer observed and survived it...
        lstats = loader.stats
        assert lstats.redelivered_events > 0
        assert lstats.duplicates_skipped > 0
        assert lstats.reconnects == 1
        assert lstats.retries >= 2

        # ...and the archive is row-for-row what a clean run produces
        assert dump_archive(loader.archive) == baseline

    def test_poison_events_quarantined_exactly_once(self):
        loader, _ = chaos_run()
        # stamped poisons dedupe like any delivery: exactly one
        # quarantine per distinct poison event, chaos notwithstanding
        assert loader.stats.dlq_events == 2
        assert loader.archive.db.count(DLQ_TABLE) == 2

    def test_chaos_is_reproducible_from_the_seed(self):
        first_loader, first_plan = chaos_run()
        second_loader, second_plan = chaos_run()
        assert first_plan.stats.to_dict() == second_plan.stats.to_dict()
        assert (
            first_loader.stats.duplicates_skipped
            == second_loader.stats.duplicates_skipped
        )
        assert dump_archive(first_loader.archive) == dump_archive(
            second_loader.archive
        )

    def test_bus_only_chaos_needs_no_dead_letter(self):
        spec = {
            "seed": 77,
            "bus": {"drop": 0.2, "duplicate": 0.2, "reorder": 0.2},
        }
        baseline = dump_archive(baseline_run().archive)
        loader, plan = chaos_run(spec=spec, poison=False)
        assert plan.stats.total_injected > 0
        assert dump_archive(loader.archive) == baseline


class TestFaultsCLI:
    def test_nl_load_runs_under_a_fault_plan(self, tmp_path, capsys):
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"seed": 5, "archive": {"fail_transactions": [1]}}))
        rc = nl_load_main(
            [
                str(bp),
                "stampede_loader",
                "connString=sqlite:///:memory:",
                "--faults",
                str(spec),
                "-v",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "retries" in out

    def test_bad_fault_spec_is_a_clean_error(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps({"bus": {"no_such_fault": 1}}))
        from repro.faults import FaultPlanError

        with pytest.raises(FaultPlanError):
            nl_load_main([str(bp), "--faults", str(spec)])
