"""The paper's central claim: one monitoring infrastructure serves two
independently developed engines.  Both engines' event streams flow through
the SAME schema, loader, archive and tools without any engine-specific
handling."""
import pytest

from repro.core.analyzer import analyze
from repro.core.statistics import workflow_statistics
from repro.loader import load_events, make_loader
from repro.pegasus import PlannerConfig, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, GatherUnit
from repro.util.uuidgen import derive_uuid
from repro.workloads import diamond


def triana_diamond_events():
    """The diamond workflow executed by the Triana engine."""
    g = TaskGraph("diamond")
    a = g.add(ConstantUnit("a", 1, seconds=10.0))
    b = g.add(CallableUnit("b", lambda ins: ins[0], seconds=10.0))
    c = g.add(CallableUnit("c", lambda ins: ins[0], seconds=10.0))
    d = g.add(GatherUnit("d", seconds=10.0))
    g.connect(a, b)
    g.connect(a, c)
    g.connect(b, d)
    g.connect(c, d)
    sink = MemoryAppender()
    sched = Scheduler(g, seed=0)
    StampedeLog(sched, sink, xwf_id=derive_uuid("parity", "triana"))
    sched.run()
    return sink.events


def pegasus_diamond_events():
    """The same logical workflow executed by the Pegasus engine."""
    sink = MemoryAppender()
    run_pegasus_workflow(
        diamond(runtime=10.0),
        sink,
        planner_config=PlannerConfig(
            cluster_size=1, add_create_dir=False, add_stage_in=False,
            add_stage_out=False,
        ),
        seed=0,
    )
    return sink.events


class TestEngineParity:
    def test_both_streams_validate_against_one_schema(self):
        validator = EventValidator(STAMPEDE_SCHEMA)
        assert validator.validate(triana_diamond_events()).ok
        assert validator.validate(pegasus_diamond_events()).ok

    def test_one_loader_loads_both_without_configuration(self):
        loader = make_loader()
        loader.process_all(triana_diamond_events())
        loader.process_all(pegasus_diamond_events())
        q = StampedeQuery(loader.archive)
        assert len(q.workflows()) == 2

    def test_same_tools_answer_same_questions(self):
        loader = make_loader()
        loader.process_all(triana_diamond_events())
        loader.process_all(pegasus_diamond_events())
        q = StampedeQuery(loader.archive)
        for wf in q.workflows():
            stats = workflow_statistics(q, wf_id=wf.wf_id)
            assert stats.counts.tasks_total == 4
            assert stats.counts.tasks_succeeded == 4
            assert stats.wall_time is not None and stats.wall_time > 20
            analysis = analyze(q, wf_id=wf.wf_id)
            assert analysis.ok

    def test_structural_equivalence_in_archive(self):
        triana = load_events(triana_diamond_events())
        pegasus = load_events(pegasus_diamond_events())
        tq = StampedeQuery(triana.archive)
        pq = StampedeQuery(pegasus.archive)
        twf, pwf = tq.workflows()[0], pq.workflows()[0]
        # identical AW structure lands in the archive from both engines
        t_tasks = {t.abs_task_id for t in tq.tasks(twf.wf_id)}
        p_tasks = {t.abs_task_id for t in pq.tasks(pwf.wf_id)}
        assert t_tasks == p_tasks == {"a", "b", "c", "d"}
        t_edges = {
            (e.parent_abs_task_id, e.child_abs_task_id)
            for e in tq.task_edges(twf.wf_id)
        }
        p_edges = {
            (e.parent_abs_task_id, e.child_abs_task_id)
            for e in pq.task_edges(pwf.wf_id)
        }
        assert t_edges == p_edges

    def test_engine_differences_visible_not_breaking(self):
        """Pegasus planning artifacts (clustering, aux jobs) coexist in the
        same archive without special-casing."""
        sink = MemoryAppender()
        run_pegasus_workflow(
            diamond(runtime=10.0), sink,
            planner_config=PlannerConfig(cluster_size=2), seed=0,
        )
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        jobs = q.jobs(wf.wf_id)
        # 4 tasks map onto fewer compute jobs + aux jobs
        assert len(jobs) != 4
        counts = q.summary_counts(wf.wf_id)
        assert counts.tasks_total == 4  # tasks still counted at AW level
