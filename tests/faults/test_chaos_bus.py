"""ChaosBroker: bus faults stay inside AMQP semantics, so nothing is lost.

Every test publishes stamped messages through a fault-injecting broker
and asserts the delivery contract the resilience layer depends on: drops
redeliver, duplicates carry the same stamp, reorders release everything,
and disconnects requeue in-flight deliveries on a surviving queue.
"""
import pytest

from repro.bus.broker import ConnectionLostError
from repro.bus.client import EventConsumer, EventPublisher
from repro.bus.reliable import HEADER_SEQ, Resequencer
from repro.faults import ChaosBroker, ChaosConsumer, FaultPlan
from repro.netlogger.events import NLEvent


def make_broker(**bus_spec):
    seed = bus_spec.pop("seed", 42)
    plan = FaultPlan.from_dict({"seed": seed, "bus": bus_spec})
    return ChaosBroker(plan), plan


def publish_stamped(broker, count, pattern="stampede.#"):
    publisher = EventPublisher(broker)
    for i in range(count):
        publisher.publish(NLEvent("stampede.test.tick", float(i), {"n": i}))
    return publisher


def drain(consumer, auto_ack=True):
    out = []
    while True:
        msg = consumer.get(timeout=0.0, auto_ack=auto_ack)
        if msg is None:
            return out
        out.append(msg)


class TestDrop:
    def test_drops_redeliver_instead_of_losing(self):
        broker, plan = make_broker(drop=0.5)
        consumer = broker.subscribe("stampede.#", queue_name="q")
        assert isinstance(consumer, ChaosConsumer)
        publish_stamped(broker, 40)
        got = drain(consumer)
        assert plan.stats.messages_dropped > 0
        # every publish arrives exactly once; dropped ones come back
        # flagged redelivered
        assert sorted(m.header(HEADER_SEQ) for m in got) == list(range(1, 41))
        assert sum(1 for m in got if m.redelivered) == plan.stats.messages_dropped

    def test_redelivered_messages_are_never_dropped_again(self):
        broker, plan = make_broker(drop=0.9, seed=3)
        consumer = broker.subscribe("stampede.#", queue_name="q")
        publish_stamped(broker, 30)
        got = drain(consumer)
        # even at the max drop rate the stream converges
        assert len(got) == 30


class TestDuplicate:
    def test_duplicates_fan_out_with_identical_stamps(self):
        broker, plan = make_broker(duplicate=0.5)
        consumer = broker.subscribe("stampede.#", queue_name="q")
        publish_stamped(broker, 40)
        got = drain(consumer)
        assert plan.stats.messages_duplicated > 0
        assert len(got) == 40 + plan.stats.messages_duplicated
        # the resequencer weeds the extras back out
        reseq = Resequencer()
        released = []
        for msg in got:
            ok, _ = reseq.offer(msg)
            released.extend(ok)
        assert len(released) == 40
        assert reseq.duplicates == plan.stats.messages_duplicated


class TestReorder:
    def test_reordered_stream_is_complete_and_resequenceable(self):
        broker, plan = make_broker(reorder=0.5, reorder_depth=4)
        consumer = broker.subscribe("stampede.#", queue_name="q")
        publish_stamped(broker, 40)
        got = drain(consumer)
        assert plan.stats.messages_reordered > 0
        seqs = [m.header(HEADER_SEQ) for m in got]
        assert sorted(seqs) == list(range(1, 41))
        assert seqs != sorted(seqs)  # the chaos actually shuffled
        reseq = Resequencer()
        released = []
        for msg in got:
            ok, _ = reseq.offer(msg)
            released.extend(ok)
        assert [m.header(HEADER_SEQ) for m in released] == list(range(1, 41))

    def test_delay_holds_for_fixed_polls(self):
        broker, plan = make_broker(delay=0.5, delay_polls=2)
        consumer = broker.subscribe("stampede.#", queue_name="q")
        publish_stamped(broker, 20)
        got = drain(consumer)
        assert plan.stats.messages_delayed > 0
        assert sorted(m.header(HEADER_SEQ) for m in got) == list(range(1, 21))


class TestDisconnect:
    def test_scripted_disconnect_raises_and_requeues(self):
        broker, plan = make_broker(disconnect_after=[5])
        consumer = broker.subscribe(
            "stampede.#", queue_name="q", durable=True, auto_delete=False
        )
        publish_stamped(broker, 10)
        got = []
        with pytest.raises(ConnectionLostError):
            while True:
                msg = consumer.get(timeout=0.0, auto_ack=False)
                if msg is None:
                    break
                got.append(msg)
        assert plan.stats.disconnects == 1
        assert len(got) == 5
        # the 5 unacked deliveries went back to the (durable) queue, so a
        # fresh consumer sees the complete stream again
        fresh = broker.subscribe(
            "stampede.#", queue_name="q", durable=True, auto_delete=False
        )
        redelivered = drain(fresh)
        assert sorted(m.header(HEADER_SEQ) for m in redelivered) == list(
            range(1, 11)
        )
        assert sorted(m.header(HEADER_SEQ) for m in got) == list(range(1, 6))
        assert all(m.redelivered for m in redelivered[:5])

    def test_event_consumer_recovers_transparently(self):
        broker, plan = make_broker(disconnect_after=[4, 9])
        consumer = EventConsumer(broker, queue_name="q", durable=True)
        publish_stamped(broker, 12)
        events = []
        for _ in range(200):
            event = consumer.get(timeout=0.0)
            if event is not None:
                events.append(event)
            elif consumer.connected and len(events) >= 12:
                break
        assert plan.stats.disconnects == 2
        assert consumer.reconnects == 2
        # auto-ack consumption across two disconnects redelivers but the
        # full stream still arrives
        assert {e.attrs["n"] for e in events} == set(range(12))

    def test_injector_state_survives_reconnect(self):
        # the second scripted disconnect fires on the post-reconnect
        # consumer generation: the plan's counters are shared
        broker, plan = make_broker(disconnect_after=[2, 4])
        consumer = broker.subscribe(
            "stampede.#", queue_name="q", durable=True, auto_delete=False
        )
        publish_stamped(broker, 6)
        with pytest.raises(ConnectionLostError):
            drain(consumer)
        consumer = broker.subscribe(
            "stampede.#", queue_name="q", durable=True, auto_delete=False
        )
        with pytest.raises(ConnectionLostError):
            drain(consumer)
        assert plan.stats.disconnects == 2


class TestDeterminism:
    def run_once(self, seed):
        broker, plan = make_broker(drop=0.3, duplicate=0.3, reorder=0.3, seed=seed)
        consumer = broker.subscribe("stampede.#", queue_name="q")
        publish_stamped(broker, 30)
        got = drain(consumer)
        return [m.header(HEADER_SEQ) for m in got], plan.stats.to_dict()

    def test_same_seed_same_chaos(self):
        assert self.run_once(5) == self.run_once(5)

    def test_different_seed_different_chaos(self):
        assert self.run_once(5) != self.run_once(6)
