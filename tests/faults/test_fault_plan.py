"""repro.faults.plan: spec validation, determinism, stats plumbing."""
import json

import pytest

from repro.bus.queues import Message
from repro.faults import (
    ArchiveFaultSpec,
    BusFaultSpec,
    EngineFaultSpec,
    FaultPlan,
    FaultPlanError,
    FaultStats,
)


class TestSpecValidation:
    def test_rates_bounded(self):
        with pytest.raises(FaultPlanError, match="bus.drop"):
            BusFaultSpec(drop=0.95)
        with pytest.raises(FaultPlanError):
            BusFaultSpec(duplicate=-0.1)
        with pytest.raises(FaultPlanError, match="archive.error_rate"):
            ArchiveFaultSpec(error_rate=1.0)
        with pytest.raises(FaultPlanError, match="engine.crash_rate"):
            EngineFaultSpec(crash_rate=2.0)

    def test_ordinals_are_one_based(self):
        with pytest.raises(FaultPlanError):
            BusFaultSpec(disconnect_after=(0,))
        with pytest.raises(FaultPlanError):
            ArchiveFaultSpec(fail_transactions=(0, 2))

    def test_active_flags(self):
        assert not BusFaultSpec().active
        assert BusFaultSpec(drop=0.1).active
        assert BusFaultSpec(disconnect_after=(5,)).active
        assert not ArchiveFaultSpec().active
        assert ArchiveFaultSpec(fail_transactions=(1,)).active
        assert EngineFaultSpec(crash={"j": (1,)}).active


class TestFromDict:
    def test_full_round_trip(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 42,
                "bus": {"drop": 0.05, "duplicate": 0.1, "disconnect_after": [120]},
                "archive": {"fail_transactions": [2, 5]},
                "engine": {"crash": {"b": [1]}, "hang_seconds": 30.0},
            }
        )
        assert plan.seed == 42
        assert plan.bus.drop == 0.05
        assert plan.bus.disconnect_after == (120,)
        assert plan.archive.fail_transactions == (2, 5)
        assert plan.engine.crash == {"b": (1,)}
        assert plan.engine.hang_seconds == 30.0

    def test_scalar_ordinals_coerce_to_tuples(self):
        plan = FaultPlan.from_dict(
            {"bus": {"disconnect_after": 3}, "archive": {"fail_transactions": 2}}
        )
        assert plan.bus.disconnect_after == (3,)
        assert plan.archive.fail_transactions == (2,)

    def test_unknown_section_rejected(self):
        with pytest.raises(FaultPlanError, match="loader"):
            FaultPlan.from_dict({"loader": {"drop": 0.1}})

    def test_unknown_field_inside_section_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"bus": {"dropp": 0.1}})

    def test_empty_dict_is_a_quiet_plan(self):
        plan = FaultPlan.from_dict({})
        assert not plan.bus.active
        assert not plan.archive.active
        assert not plan.engine.active


class TestFromFile:
    def test_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 7, "bus": {"drop": 0.2}}))
        plan = FaultPlan.from_file(str(path))
        assert plan.seed == 7 and plan.bus.drop == 0.2

    def test_non_mapping_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(FaultPlanError, match="mapping"):
            FaultPlan.from_file(str(path))


class TestDeterminism:
    def test_layer_rngs_are_seed_stable(self):
        a = FaultPlan(seed=99)
        b = FaultPlan(seed=99)
        assert [a.rng("bus").random() for _ in range(5)] == [
            b.rng("bus").random() for _ in range(5)
        ]

    def test_layers_draw_from_independent_streams(self):
        plan = FaultPlan(seed=99)
        assert [plan.rng("bus").random() for _ in range(5)] != [
            plan.rng("archive").random() for _ in range(5)
        ]

    def test_rng_is_cached_per_layer(self):
        plan = FaultPlan(seed=1)
        assert plan.rng("bus") is plan.rng("bus")

    def test_injectors_are_singletons(self):
        plan = FaultPlan(seed=1)
        assert plan.bus_injector() is plan.bus_injector()
        assert plan.archive_injector() is plan.archive_injector()
        assert plan.engine_injector() is plan.engine_injector()
        # all feed the one shared stats tally
        assert plan.bus_injector().stats is plan.stats


class TestStats:
    def test_total_and_serialization(self):
        stats = FaultStats(messages_dropped=2, archive_faults=1)
        assert stats.total_injected == 3
        data = stats.to_dict()
        assert data["messages_dropped"] == 2
        assert data["total_injected"] == 3
        assert json.loads(stats.to_json())["archive_faults"] == 1

    def test_repr_names_active_layers(self):
        plan = FaultPlan.from_dict({"seed": 1, "bus": {"drop": 0.1}})
        assert "bus" in repr(plan)
        assert "archive" not in repr(plan)


class TestArmDisarm:
    """Mid-run fault activation: injectors exist from the start (so
    ordinal schedules count from run start) but fire only while armed."""

    def test_armed_by_default(self):
        assert FaultPlan(seed=1).armed
        assert not FaultPlan(seed=1, armed=False).armed

    def test_from_dict_accepts_armed(self):
        plan = FaultPlan.from_dict({"seed": 1, "armed": False})
        assert not plan.armed
        plan.arm()
        assert plan.armed
        plan.disarm()
        assert not plan.armed

    def test_disarmed_bus_injector_delivers_cleanly(self):
        spec = {"seed": 7, "bus": {"drop": 0.9, "duplicate": 0.9}}
        plan = FaultPlan.from_dict({**spec, "armed": False})
        injector = plan.bus_injector()
        msg = Message("stampede.x", "e")
        assert all(injector.classify(msg) == "deliver" for _ in range(20))
        assert not any(injector.should_duplicate() for _ in range(20))
        assert plan.stats.total_injected == 0
        assert injector.deliveries == 20  # counters still advance

    def test_arming_mid_stream_switches_faults_on(self):
        plan = FaultPlan.from_dict(
            {"seed": 7, "bus": {"drop": 0.9}, "armed": False}
        )
        injector = plan.bus_injector()
        msg = Message("stampede.x", "e")
        assert all(injector.classify(msg) == "deliver" for _ in range(20))
        plan.arm()
        fates = [injector.classify(msg) for _ in range(20)]
        assert "drop" in fates
        plan.disarm()
        assert all(injector.classify(msg) == "deliver" for _ in range(20))

    def test_disarmed_archive_and_engine_injectors_are_inert(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 7,
                "archive": {"error_rate": 0.9},
                "engine": {"crash_rate": 0.9},
                "armed": False,
            }
        )
        for _ in range(20):
            plan.archive_injector().on_transaction()  # would raise when armed
        assert all(
            plan.engine_injector().attempt("job", i).clean for i in range(20)
        )
        plan.arm()
        assert any(
            not plan.engine_injector().attempt("job", i).clean for i in range(20)
        )
