"""ChaosDatabase: injected transient write failures and loader recovery."""
import sqlite3

import pytest

from repro.archive.store import StampedeArchive
from repro.faults import ChaosDatabase, FaultPlan
from repro.loader import load_events, make_loader
from repro.model.entities import WorkflowRow

from tests.helpers import diamond_events


def chaos_archive(**archive_spec):
    seed = archive_spec.pop("seed", 0)
    plan = FaultPlan.from_dict({"seed": seed, "archive": archive_spec})
    archive = StampedeArchive.open("sqlite:///:memory:")
    archive.db = plan.wrap_database(archive.db)
    return archive, plan


class TestChaosDatabase:
    def test_scripted_attempts_fail_with_locked_error(self):
        archive, plan = chaos_archive(fail_transactions=[1, 3])
        with pytest.raises(sqlite3.OperationalError, match="injected"):
            with archive.db.transaction():
                pass
        with archive.db.transaction():  # attempt 2 is healthy
            pass
        with pytest.raises(sqlite3.OperationalError):
            with archive.db.transaction():
                pass
        assert plan.stats.archive_faults == 2

    def test_nested_transactions_count_as_one_attempt(self):
        archive, plan = chaos_archive(fail_transactions=[2])
        with archive.db.transaction():
            with archive.db.transaction():  # joins, does not consume attempt 2
                pass
        with pytest.raises(sqlite3.OperationalError):
            with archive.db.transaction():
                pass
        assert plan.stats.archive_faults == 1

    def test_failure_raised_before_any_statement_runs(self):
        # entry-time injection: the wrapped backend never opens the failed
        # transaction, so even a no-rollback backend stays consistent
        archive, plan = chaos_archive(fail_transactions=[1])
        inner_txns = []
        original = archive.db._inner.transaction

        def spying():
            inner_txns.append(1)
            return original()

        archive.db._inner.transaction = spying
        with pytest.raises(sqlite3.OperationalError):
            with archive.db.transaction():
                pass
        assert inner_txns == []
        with archive.db.transaction():
            pass
        assert inner_txns == [1]

    def test_transient_errors_includes_injected_type(self):
        archive, _ = chaos_archive(fail_transactions=[1])
        assert sqlite3.OperationalError in archive.db.TRANSIENT_ERRORS

    def test_delegates_everything_else(self):
        archive, _ = chaos_archive()
        assert isinstance(archive.db, ChaosDatabase)
        # attribute delegation reaches the inner backend untouched
        assert archive.db.count.__self__ is archive.db._inner

    def test_error_rate_is_seed_deterministic(self):
        def failures(seed):
            archive, plan = chaos_archive(error_rate=0.5, seed=seed)
            out = []
            for _ in range(20):
                try:
                    with archive.db.transaction():
                        pass
                    out.append(False)
                except sqlite3.OperationalError:
                    out.append(True)
            return out

        assert failures(9) == failures(9)
        assert any(failures(9))
        assert not all(failures(9))


class TestLoaderRecovery:
    def test_loader_retries_through_injected_faults(self):
        archive, plan = chaos_archive(fail_transactions=[1, 2])
        loader = make_loader(archive=archive, batch_size=50)
        load_events(diamond_events(), loader)
        assert plan.stats.archive_faults == 2
        assert loader.stats.retries >= 2
        # the archive came out complete despite the failed flushes
        workflows = loader.archive.query(WorkflowRow).all()
        assert len(workflows) == 1

    def test_chaos_archive_matches_clean_archive(self):
        clean = make_loader(batch_size=50)
        load_events(diamond_events(), clean)

        archive, _ = chaos_archive(fail_transactions=[1, 3])
        chaotic = make_loader(archive=archive, batch_size=50)
        load_events(diamond_events(), chaotic)

        assert (
            chaotic.archive.query(WorkflowRow).all()
            == clean.archive.query(WorkflowRow).all()
        )
        assert chaotic.stats.rows_inserted == clean.stats.rows_inserted
