"""Engine-layer chaos: injected crashes/hangs ride the organic failure
paths, so every fault produces a complete, lintable Stampede lifecycle.

The DAGMan retry test is the contract the archive analyses depend on: a
failed-then-retried job must emit events that pass the repro.lint
lifecycle (STL107/108) and start/end-pairing (STL109/110) rules — an
injected crash is indistinguishable, event-wise, from a real site
failure.
"""
import pytest

from repro.faults import FaultPlan
from repro.lint import LintConfig, Severity
from repro.lint.stream import lint_bp
from repro.loader import load_events
from repro.model.entities import JobInstanceRow, WorkflowRow
from repro.pegasus import DAGManRun, Planner, run_pegasus_workflow
from repro.schema.stampede import Events
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit
from repro.workloads import diamond

LINT_CONFIG = LintConfig(allow_unknown_attrs=True)


def make_injector(**engine_spec):
    seed = engine_spec.pop("seed", 0)
    plan = FaultPlan.from_dict({"seed": seed, "engine": engine_spec})
    return plan.engine_injector(), plan


class TestEngineFaultInjector:
    def test_scripted_crash_and_hang(self):
        inj, plan = make_injector(
            crash={"j": [2]}, hang={"j": [1]}, hang_seconds=30.0
        )
        first = inj.attempt("j", 1)
        assert not first.crash and first.hang_seconds == 30.0
        second = inj.attempt("j", 2)
        assert second.crash and second.hang_seconds == 0.0
        assert inj.attempt("j", 3).clean
        assert inj.attempt("other", 1).clean
        assert plan.stats.engine_crashes == 1
        assert plan.stats.engine_hangs == 1

    def test_inactive_spec_is_always_clean(self):
        inj, plan = make_injector()
        assert all(inj.attempt("j", n).clean for n in range(1, 50))
        assert plan.stats.engine_crashes == 0

    def test_rates_are_seed_deterministic(self):
        def decisions(seed):
            inj, _ = make_injector(crash_rate=0.3, hang_rate=0.3, seed=seed)
            return [
                (d.crash, d.hang_seconds)
                for d in (inj.attempt("j", n) for n in range(1, 40))
            ]

        assert decisions(4) == decisions(4)
        assert decisions(4) != decisions(5)
        assert any(crash for crash, _ in decisions(4))


class TestDAGManFaults:
    def run_diamond(self, plan=None, seed=11):
        aw = diamond()
        ew = Planner().plan(aw)
        sink = MemoryAppender()
        faults = plan.engine_injector() if plan is not None else None
        run = DAGManRun(aw, ew, sink, seed=seed, faults=faults)
        report = run.run()
        return run, report, sink.events

    def compute_job_id(self):
        ew = Planner().plan(diamond())
        return ew.compute_jobs()[0].exec_job_id

    def test_injected_crash_is_retried_to_success(self):
        job_id = self.compute_job_id()
        plan = FaultPlan.from_dict({"engine": {"crash": {job_id: [1]}}})
        run, report, events = self.run_diamond(plan)
        assert plan.stats.engine_crashes == 1
        assert report.ok  # the retry rescued the workflow
        assert report.retries >= 1
        submits = [
            e for e in events
            if e.event == Events.JOB_INST_SUBMIT_START
            and e.attrs.get("job.id") == job_id
        ]
        assert len(submits) == 2  # failed attempt + successful retry

    def test_retried_job_lifecycle_lints_clean(self):
        # satellite: the chaos-injected failure must produce events that
        # pass the lifecycle and start/end-pairing lint rules
        job_id = self.compute_job_id()
        plan = FaultPlan.from_dict({"engine": {"crash": {job_id: [1]}}})
        _, report, events = self.run_diamond(plan)
        assert report.ok
        bp_text = "\n".join(e.to_bp() for e in events) + "\n"
        findings = lint_bp(bp_text, config=LINT_CONFIG)
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert errors == []
        pairing = [f for f in findings if f.rule_id in ("STL109", "STL110")]
        assert pairing == []

    def test_crashed_attempts_archive_as_extra_job_instances(self):
        job_id = self.compute_job_id()
        plan = FaultPlan.from_dict({"engine": {"crash": {job_id: [1]}}})
        _, report, events = self.run_diamond(plan)
        loader = load_events(events)
        assert len(loader.archive.query(WorkflowRow).all()) == 1
        _, clean_report, clean_events = self.run_diamond(plan=None)
        clean_loader = load_events(clean_events)
        chaos_insts = loader.archive.query(JobInstanceRow).all()
        clean_insts = clean_loader.archive.query(JobInstanceRow).all()
        assert len(chaos_insts) == len(clean_insts) + 1

    def test_exhausted_retries_fail_the_workflow(self):
        job_id = self.compute_job_id()
        # crash every attempt DAGMan is willing to make (max_retries=3)
        plan = FaultPlan.from_dict(
            {"engine": {"crash": {job_id: [1, 2, 3, 4]}}}
        )
        _, report, events = self.run_diamond(plan)
        assert not report.ok
        # even the terminal failure lints clean
        bp_text = "\n".join(e.to_bp() for e in events) + "\n"
        errors = [
            f for f in lint_bp(bp_text, config=LINT_CONFIG)
            if f.severity >= Severity.ERROR
        ]
        assert errors == []

    def test_hang_stretches_the_makespan(self):
        job_id = self.compute_job_id()
        _, base_report, _ = self.run_diamond(plan=None)
        plan = FaultPlan.from_dict(
            {"engine": {"hang": {job_id: [1]}, "hang_seconds": 60.0}}
        )
        _, hung_report, _ = self.run_diamond(plan)
        assert plan.stats.engine_hangs == 1
        assert hung_report.ok  # a hang delays, it does not fail
        assert hung_report.wall_time >= base_report.wall_time + 50.0

    def test_run_pegasus_workflow_passes_faults_through(self):
        plan = FaultPlan.from_dict({"engine": {"crash_rate": 0.2}})
        sink = MemoryAppender()
        run = run_pegasus_workflow(
            diamond(), sink, seed=1, faults=plan.engine_injector()
        )
        assert run.faults is plan.engine_injector()


class TestTrianaFaults:
    def pipeline(self):
        g = TaskGraph("pipe")
        src = g.add(ConstantUnit("src", [1, 2, 3]))
        work = g.add(CallableUnit("work", lambda ins: sum(ins[0])))
        g.connect(src, work)
        return g

    def test_injected_crash_surfaces_as_unit_error(self):
        plan = FaultPlan.from_dict({"engine": {"crash": {"work": [1]}}})
        sched = Scheduler(self.pipeline(), fault_injector=plan.engine_injector())
        report = sched.run()
        assert plan.stats.engine_crashes == 1
        assert not report.ok

    def test_hang_inflates_invocation_duration(self):
        base = Scheduler(self.pipeline(), seed=5).run()
        plan = FaultPlan.from_dict(
            {"engine": {"hang": {"work": [1]}, "hang_seconds": 45.0}}
        )
        hung = Scheduler(
            self.pipeline(), seed=5, fault_injector=plan.engine_injector()
        ).run()
        assert hung.ok
        assert hung.wall_time >= base.wall_time + 40.0

    def test_clean_plan_leaves_execution_untouched(self):
        plan = FaultPlan.from_dict({})
        base = Scheduler(self.pipeline(), seed=5).run()
        faulted = Scheduler(
            self.pipeline(), seed=5, fault_injector=plan.engine_injector()
        ).run()
        assert faulted.ok
        assert faulted.wall_time == base.wall_time
