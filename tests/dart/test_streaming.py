import numpy as np
import pytest

from repro.dart.streaming import (
    ContourTrackerUnit,
    PitchAnalysisUnit,
    melody_frames,
    run_streaming_dart,
)
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender

NOTES = [220.0, 261.6, 329.6, 392.0]


class TestMelodyFrames:
    def test_frame_shape(self):
        frames = melody_frames(NOTES, frames_per_note=3, frame_size=1024)
        assert len(frames) == 12
        assert all(len(f) == 1024 for f in frames)

    def test_deterministic(self):
        a = melody_frames(NOTES, seed=1)
        b = melody_frames(NOTES, seed=1)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestUnits:
    def test_pitch_analysis_unit(self):
        frames = melody_frames([220.0], frames_per_note=1)
        unit = PitchAnalysisUnit("shs")
        out = unit.process([frames[0]])
        assert abs(1200 * np.log2(out["f0"] / 220.0)) < 60
        assert unit.frames_analyzed == 1

    def test_contour_tracker_release(self):
        tracker = ContourTrackerUnit("t", target_voiced_frames=2,
                                     salience_floor=0.5)
        tracker.process([{"f0": 220.0, "salience": 1.0}])
        assert not tracker.satisfied
        tracker.process([{"f0": 220.0, "salience": 0.1}])  # unvoiced: skipped
        assert not tracker.satisfied
        tracker.process([{"f0": 221.0, "salience": 1.0}])
        assert tracker.satisfied
        assert len(tracker.contour) == 2


class TestStreamingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        sink = MemoryAppender()
        res = run_streaming_dart(sink, notes=NOTES, frames_per_note=4,
                                 target_voiced_frames=10, seed=0)
        return sink, res

    def test_run_succeeds(self, result):
        sink, res = result
        assert res.report.ok

    def test_contour_tracks_melody(self, result):
        sink, res = result
        assert len(res.contour) >= 10
        # the contour visits each note's neighbourhood in order
        detected = np.array(res.contour)
        for note in NOTES[:2]:  # at least the first notes before release
            cents = np.abs(1200 * np.log2(detected / note))
            assert (cents < 80).any(), f"note {note} never detected"

    def test_multiple_invocations_per_job(self, result):
        sink, res = result
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflow_by_uuid(res.xwf_id)
        analysis_job = q.job_by_exec_id(wf.wf_id, "shs-analysis")
        (inst,) = q.job_instances_for_job(analysis_job.job_id)
        invocations = q.invocations_for_instance(inst.job_instance_id)
        assert len(invocations) > 1  # the streaming property
        assert [i.task_submit_seq for i in invocations] == list(
            range(1, len(invocations) + 1)
        )

    def test_events_schema_valid(self, result):
        sink, res = result
        assert EventValidator(STAMPEDE_SCHEMA).validate(sink.events).ok

    def test_local_condition_releases_early(self):
        """With a tiny target, the run releases before draining the stream."""
        sink = MemoryAppender()
        res = run_streaming_dart(sink, notes=NOTES, frames_per_note=8,
                                 target_voiced_frames=4, seed=1)
        assert res.report.ok
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflow_by_uuid(res.xwf_id)
        analysis_job = q.job_by_exec_id(wf.wf_id, "shs-analysis")
        (inst,) = q.job_instances_for_job(analysis_job.job_id)
        n_inv = len(q.invocations_for_instance(inst.job_instance_id))
        assert n_inv < res.frames_streamed  # released before the end
