import numpy as np
import pytest

from repro.dart.audio import ToneSpec, add_noise, synth_missing_fundamental, synth_tone
from repro.dart.shs import SHSParams, evaluate_params, shs_pitch, shs_track

SR = 8000.0


def tone(f0, **kw):
    return synth_tone(ToneSpec(f0=f0, sample_rate=SR, **kw))


class TestAudio:
    def test_tone_length_and_range(self):
        sig = tone(220.0, duration=0.5)
        assert len(sig) == int(0.5 * SR)
        assert np.abs(sig).max() <= 1.0 + 1e-9

    def test_invalid_f0(self):
        with pytest.raises(ValueError):
            synth_tone(ToneSpec(f0=0.0))

    def test_partials_below_nyquist(self):
        # f0 near Nyquist/2: partials silently clipped, no aliasing crash
        sig = tone(3500.0, n_partials=10)
        assert np.isfinite(sig).all()

    def test_noise_reproducible(self):
        a = add_noise(np.zeros(100), 0.1, seed=1)
        b = add_noise(np.zeros(100), 0.1, seed=1)
        assert np.array_equal(a, b)
        c = add_noise(np.zeros(100), 0.1, seed=2)
        assert not np.array_equal(a, c)

    def test_missing_fundamental_suppresses_f0_partial(self):
        sig = synth_missing_fundamental(ToneSpec(f0=200.0, sample_rate=SR))
        spectrum = np.abs(np.fft.rfft(sig * np.hanning(len(sig))))
        bin_hz = SR / len(sig)
        f0_bin = int(round(200.0 / bin_hz))
        h2_bin = int(round(400.0 / bin_hz))
        assert spectrum[h2_bin] > 3 * spectrum[f0_bin]


class TestSHSParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SHSParams(n_harmonics=0)
        with pytest.raises(ValueError):
            SHSParams(compression=0.0)
        with pytest.raises(ValueError):
            SHSParams(window_size=1000)  # not a power of two
        with pytest.raises(ValueError):
            SHSParams(f_min=500, f_max=100)


class TestPitchDetection:
    @pytest.mark.parametrize("f0", [82.4, 110.0, 220.0, 440.0, 880.0])
    def test_detects_pure_harmonic_tones(self, f0):
        params = SHSParams(f_max=1000.0)
        est = shs_pitch(tone(f0), SR, params).f0
        cents = abs(1200 * np.log2(est / f0))
        assert cents < 30, f"f0={f0} est={est}"

    def test_missing_fundamental_recovered(self):
        # the key property of sub-harmonic summation
        sig = synth_missing_fundamental(ToneSpec(f0=196.0, sample_rate=SR))
        est = shs_pitch(sig, SR, SHSParams()).f0
        cents = abs(1200 * np.log2(est / 196.0))
        assert cents < 50

    def test_single_harmonic_fails_on_missing_fundamental(self):
        # sanity check: with n_harmonics=1 SHS degrades to peak picking
        sig = synth_missing_fundamental(ToneSpec(f0=196.0, sample_rate=SR))
        est = shs_pitch(sig, SR, SHSParams(n_harmonics=1)).f0
        # picks a partial (≈392 or higher), not the fundamental
        assert est > 196.0 * 1.5

    def test_noisy_tone(self):
        sig = tone(330.0, noise_level=0.2)
        est = shs_pitch(sig, SR, SHSParams()).f0
        assert abs(1200 * np.log2(est / 330.0)) < 50

    def test_track_shape(self):
        sig = tone(220.0, duration=1.0)
        track = shs_track(sig, SR, SHSParams(window_size=1024))
        assert len(track) > 5
        assert np.all(np.abs(1200 * np.log2(track / 220.0)) < 60)

    def test_window_too_small_for_range(self):
        with pytest.raises(ValueError):
            shs_pitch(tone(220.0), SR, SHSParams(window_size=64, f_min=50,
                                                 f_max=60))

    def test_salience_positive(self):
        result = shs_pitch(tone(220.0), SR)
        assert result.salience > 0


class TestEvaluateParams:
    def test_good_params_score_high(self):
        cases = [(tone(f0), f0) for f0 in (110.0, 220.0, 440.0)]
        score = evaluate_params(SHSParams(), cases, SR)
        assert score == 1.0

    def test_bad_params_score_lower(self):
        cases = [
            (synth_missing_fundamental(ToneSpec(f0=f0, sample_rate=SR)), f0)
            for f0 in (98.0, 196.0, 293.7)
        ]
        good = evaluate_params(SHSParams(n_harmonics=8), cases, SR)
        bad = evaluate_params(SHSParams(n_harmonics=1), cases, SR)
        assert good > bad

    def test_empty_cases_rejected(self):
        with pytest.raises(ValueError):
            evaluate_params(SHSParams(), [], SR)
