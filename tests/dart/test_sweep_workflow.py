import pytest

from repro.dart.sweep import (
    N_COMMANDS,
    SweepCommand,
    command_duration,
    generate_commands,
    mean_duration,
    parse_command,
    sweep_grid,
)
from repro.dart.workflow import (
    DartExecUnit,
    build_sub_workflow,
    chunk_commands,
    run_dart_experiment,
)
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler


class TestSweep:
    def test_306_commands(self):
        assert N_COMMANDS == 306
        assert len(generate_commands()) == 306

    def test_grid_unique(self):
        grid = sweep_grid()
        assert len({(c.harmonics, c.compression, c.window) for c in grid}) == 306

    def test_command_parse_roundtrip(self):
        for cmd in sweep_grid()[::37]:
            parsed = parse_command(cmd.line)
            assert parsed == cmd

    def test_malformed_command_rejected(self):
        with pytest.raises(ValueError):
            parse_command("java -jar dart.jar --nonsense")

    def test_duration_model_calibrated(self):
        # grid mean ~129 s puts the sweep's cumulative time at ~40 000 s
        assert 120 < mean_duration() < 140
        durations = [command_duration(c) for c in sweep_grid()]
        assert min(durations) > 20
        assert max(durations) < 350

    def test_duration_monotone_in_work(self):
        cheap = SweepCommand(0, harmonics=4, compression=0.7, window=1024)
        costly = SweepCommand(1, harmonics=20, compression=0.7, window=4096)
        assert command_duration(costly) > command_duration(cheap)


class TestChunking:
    def test_chunks_cover_all_commands(self):
        commands = generate_commands()
        chunks = chunk_commands(commands, 16, seed=0)
        assert len(chunks) == 20
        sizes = [len(lines) for _, _, lines in chunks]
        assert sizes == [16] * 19 + [2]
        all_lines = [l for _, _, lines in chunks for l in lines]
        assert sorted(all_lines) == sorted(commands)

    def test_line_ranges_contiguous(self):
        chunks = chunk_commands(generate_commands(), 16, seed=0)
        assert chunks[0][:2] == (0, 15)
        assert chunks[-1][:2] == (304, 305)

    def test_deterministic_per_seed(self):
        a = chunk_commands(generate_commands(), 16, seed=3)
        b = chunk_commands(generate_commands(), 16, seed=3)
        assert a == b


class TestSubWorkflow:
    def test_structure(self):
        chunks = chunk_commands(generate_commands(), 16, seed=0)
        lo, hi, lines = chunks[0]
        graph = build_sub_workflow("b0", lo, hi, lines)
        names = {t.name for t in graph.tasks()}
        assert f"unit:{lo}-{hi}" in names
        assert "file.zipper" in names
        assert "file.Output_0" in names
        assert sum(1 for n in names if n.startswith("exec")) == 16
        assert len(graph) == 19
        assert graph.is_dag()

    def test_executes_and_scores(self):
        chunks = chunk_commands(generate_commands(), 4, seed=0)
        lo, hi, lines = chunks[0]
        graph = build_sub_workflow("b0", lo, hi, lines)
        sched = Scheduler(graph, seed=0, max_concurrent=4)
        report = sched.run()
        assert report.ok
        result = sched.results["exec0"]
        assert 0.0 <= result["accuracy"] <= 1.0
        assert sched.results["file.zipper"]["count"] == 4

    def test_exec_unit_real_work(self):
        cmd = sweep_grid()[100]
        unit = DartExecUnit("exec0", cmd.line)
        out = unit.process([["ignored"]])
        assert out["harmonics"] == cmd.harmonics
        assert out["window"] == cmd.window
        assert 0.0 <= out["accuracy"] <= 1.0


class TestFullExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        sink = MemoryAppender()
        res = run_dart_experiment(sink, seed=0)
        return sink, res

    def test_bundle_and_task_counts(self, result):
        _, res = result
        assert res.n_bundles == 20
        assert res.n_exec_tasks == 306

    def test_all_bundles_succeed(self, result):
        _, res = result
        assert res.root_report.ok
        assert all(r.report.ok for r in res.broker.runs)

    def test_wall_time_in_paper_band(self, result):
        # paper: 661 s; accept the same order with modest tolerance
        _, res = result
        assert 450 < res.wall_time < 1000

    def test_results_for_every_command(self, result):
        _, res = result
        assert len(res.all_results) == 306
        assert [r["index"] for r in res.all_results] == list(range(306))

    def test_best_result_reasonable(self, result):
        _, res = result
        assert res.best_result is not None
        assert res.best_result["accuracy"] >= max(
            r["accuracy"] for r in res.all_results[:50]
        ) - 1e-9

    def test_deterministic(self):
        s1, s2 = MemoryAppender(), MemoryAppender()
        r1 = run_dart_experiment(s1, seed=42, chunk_size=50)
        r2 = run_dart_experiment(s2, seed=42, chunk_size=50)
        assert r1.wall_time == r2.wall_time
        assert r1.root_xwf_id == r2.root_xwf_id
        assert [e.to_bp() for e in s1.events] == [e.to_bp() for e in s2.events]

    def test_smaller_configuration(self):
        sink = MemoryAppender()
        res = run_dart_experiment(
            sink,
            seed=1,
            n_nodes=2,
            chunk_size=8,
            commands=[c.line for c in __import__("repro.dart.sweep",
                                                 fromlist=["sweep_grid"]).sweep_grid()[:16]],
        )
        assert res.n_bundles == 2
        assert res.n_exec_tasks == 16
