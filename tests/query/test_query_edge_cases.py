"""Query-API edge cases: empty workflows, missing hosts, detail fallbacks."""
import pytest

from repro.loader import load_events, make_loader
from repro.model.entities import (
    JobInstanceRow,
    JobRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.query import StampedeQuery

from tests.helpers import diamond_events


@pytest.fixture
def empty_q():
    return StampedeQuery(make_loader().archive)


class TestEmptyArchive:
    def test_no_workflows(self, empty_q):
        assert empty_q.workflows() == []
        assert empty_q.root_workflows() == []

    def test_missing_lookups(self, empty_q):
        assert empty_q.workflow(1) is None
        assert empty_q.workflow_by_uuid("x") is None
        assert empty_q.workflow_wall_time(1) is None
        assert empty_q.workflow_status(1) is None

    def test_empty_collections(self, empty_q):
        assert empty_q.tasks(1) == []
        assert empty_q.jobs(1) == []
        assert empty_q.job_instances(1) == []
        assert empty_q.invocations(1) == []
        assert empty_q.hosts(1) == []
        assert empty_q.job_details(1) == []
        assert empty_q.failed_job_instances(1) == []

    def test_empty_counts(self, empty_q):
        counts = empty_q.summary_counts(1)
        assert counts.tasks_total == 0
        assert counts.jobs_total == 0
        assert empty_q.cumulative_job_wall_time(1) == 0.0


class TestPartialData:
    def test_instance_without_host(self):
        """A job instance with no host.info still renders details."""
        archive = make_loader().archive
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u"))
        archive.insert(JobRow(job_id=1, wf_id=1, exec_job_id="j"))
        archive.insert(
            JobInstanceRow(job_instance_id=1, job_id=1, job_submit_seq=1,
                           local_duration=5.0, exitcode=0)
        )
        q = StampedeQuery(archive)
        (detail,) = q.job_details(1)
        assert detail.hostname is None
        assert detail.queue_time is None  # no jobstates recorded
        assert detail.runtime == 5.0
        assert detail.invocation_duration is None  # no invocations

    def test_instance_with_dangling_host_id(self):
        archive = make_loader().archive
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u"))
        archive.insert(JobRow(job_id=1, wf_id=1, exec_job_id="j"))
        archive.insert(
            JobInstanceRow(job_instance_id=1, job_id=1, job_submit_seq=1,
                           host_id=999)
        )
        q = StampedeQuery(archive)
        (detail,) = q.job_details(1)
        assert detail.hostname is None

    def test_orphan_instance_ignored_in_details(self):
        """Instances whose job row is missing don't crash job_details."""
        archive = make_loader().archive
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u"))
        archive.insert(JobRow(job_id=1, wf_id=1, exec_job_id="j"))
        archive.insert(
            JobInstanceRow(job_instance_id=7, job_id=999, job_submit_seq=1)
        )
        q = StampedeQuery(archive)
        assert q.job_details(1) == []

    def test_multiple_terminations_last_wins(self):
        archive = make_loader().archive
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u"))
        archive.insert_many(
            [
                WorkflowStateRow(wf_id=1, state="WORKFLOW_STARTED",
                                 timestamp=0.0, restart_count=0),
                WorkflowStateRow(wf_id=1, state="WORKFLOW_TERMINATED",
                                 timestamp=10.0, restart_count=0, status=-1),
                WorkflowStateRow(wf_id=1, state="WORKFLOW_STARTED",
                                 timestamp=20.0, restart_count=1),
                WorkflowStateRow(wf_id=1, state="WORKFLOW_TERMINATED",
                                 timestamp=30.0, restart_count=1, status=0),
            ]
        )
        q = StampedeQuery(archive)
        assert q.workflow_status(1) == 0  # the restart's outcome
        assert q.workflow_wall_time(1) == 30.0  # first start to last end

    def test_task_failure_then_retry_success_counts_succeeded(self):
        loader = load_events(diamond_events(retries={"c": 1}))
        q = StampedeQuery(loader.archive)
        counts = q.summary_counts(1)
        # the retried task ultimately succeeded
        assert counts.tasks_succeeded == 4
        assert counts.tasks_failed == 0
        assert counts.jobs_retries == 1
