import pytest

from repro.dart.sweep import sweep_grid
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_events
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender

from tests.helpers import diamond_events


@pytest.fixture
def q():
    return StampedeQuery(load_events(diamond_events()).archive)


class TestWorkflowQueries:
    def test_workflows_and_lookup(self, q):
        wfs = q.workflows()
        assert len(wfs) == 1
        wf = wfs[0]
        assert q.workflow(wf.wf_id).wf_uuid == wf.wf_uuid
        assert q.workflow_by_uuid(wf.wf_uuid).wf_id == wf.wf_id
        assert q.workflow(999) is None

    def test_root_workflows(self, q):
        assert len(q.root_workflows()) == 1

    def test_wall_time_and_status(self, q):
        wf = q.workflows()[0]
        assert q.workflow_wall_time(wf.wf_id) == pytest.approx(23.0, abs=0.1)
        assert q.workflow_status(wf.wf_id) == 0

    def test_status_none_while_running(self):
        q = StampedeQuery(load_events(diamond_events()[:-1]).archive)
        wf = q.workflows()[0]
        assert q.workflow_status(wf.wf_id) is None
        assert q.workflow_wall_time(wf.wf_id) is None


class TestStructureQueries:
    def test_tasks_and_edges(self, q):
        wf = q.workflows()[0]
        assert [t.abs_task_id for t in q.tasks(wf.wf_id)] == ["a", "b", "c", "d"]
        assert len(q.task_edges(wf.wf_id)) == 4
        assert len(q.job_edges(wf.wf_id)) == 4

    def test_job_by_exec_id(self, q):
        wf = q.workflows()[0]
        job = q.job_by_exec_id(wf.wf_id, "b")
        assert job is not None and job.exec_job_id == "b"
        assert q.job_by_exec_id(wf.wf_id, "zzz") is None


class TestExecutionQueries:
    def test_job_states_sequence(self, q):
        wf = q.workflows()[0]
        inst = q.job_instances(wf.wf_id)[0]
        states = q.job_states(inst.job_instance_id)
        assert [s.jobstate_submit_seq for s in states] == list(range(len(states)))
        assert q.last_job_state(inst.job_instance_id).state == "JOB_SUCCESS"

    def test_invocations_link_tasks(self, q):
        wf = q.workflows()[0]
        invs = q.invocations(wf.wf_id)
        assert {i.abs_task_id for i in invs} == {"a", "b", "c", "d"}

    def test_hosts(self, q):
        wf = q.workflows()[0]
        (host,) = q.hosts(wf.wf_id)
        assert host.hostname == "node1"
        assert q.host(host.host_id).ip == "10.0.0.1"

    def test_cumulative_job_wall_time(self, q):
        wf = q.workflows()[0]
        assert q.cumulative_job_wall_time(wf.wf_id) == pytest.approx(16.0)


class TestHierarchyQueries:
    @pytest.fixture(scope="class")
    def dart_q(self):
        sink = MemoryAppender()
        commands = [c.line for c in sweep_grid()[:8]]
        res = run_dart_experiment(sink, seed=9, n_nodes=2, chunk_size=4,
                                  commands=commands)
        return StampedeQuery(load_events(sink.events).archive), res

    def test_parent_child_links(self, dart_q):
        q, res = dart_q
        root = q.workflow_by_uuid(res.root_xwf_id)
        subs = q.sub_workflows(root.wf_id)
        assert len(subs) == 2
        for sub in subs:
            assert sub.parent_wf_id == root.wf_id
            assert sub.root_wf_id == root.wf_id

    def test_descendants(self, dart_q):
        q, res = dart_q
        root = q.workflow_by_uuid(res.root_xwf_id)
        desc = q.descendant_workflows(root.wf_id)
        assert len(desc) == 2

    def test_summary_counts_include_descendants(self, dart_q):
        q, res = dart_q
        root = q.workflow_by_uuid(res.root_xwf_id)
        counts = q.summary_counts(root.wf_id)
        assert counts.subwf_total == 2
        assert counts.subwf_succeeded == 2
        # 8 execs + 2*(unit+zipper+Output_0) + monitor
        assert counts.tasks_total == 8 + 6 + 1
        assert counts.tasks_succeeded == counts.tasks_total

    def test_summary_counts_exclude_descendants(self, dart_q):
        q, res = dart_q
        root = q.workflow_by_uuid(res.root_xwf_id)
        counts = q.summary_counts(root.wf_id, include_descendants=False)
        assert counts.tasks_total == 1
        assert counts.subwf_total == 0
