"""Shared test fixtures: hand-built Stampede event streams.

``diamond_events`` builds the full, schema-valid event stream of a small
diamond workflow (4 tasks mapped 1:1 onto 4 jobs) without using either
engine, so loader/query tests do not depend on engine correctness.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from repro.netlogger.events import NLEvent
from repro.schema.stampede import Events

XWF = "11111111-2222-4333-8444-555555555555"


def _ev(name: str, ts: float, **attrs) -> NLEvent:
    attrs.setdefault("xwf.id", XWF)
    return NLEvent(name, ts, attrs)


def diamond_events(
    fail_job: Optional[str] = None,
    retries: Dict[str, int] = None,
    xwf: str = XWF,
) -> List[NLEvent]:
    """Event stream of a diamond workflow a->(b,c)->d on host 'node1'.

    ``fail_job``: exec job id whose final attempt exits 1.
    ``retries``: per-job count of extra failed attempts before the final one.
    """
    retries = retries or {}
    jobs = ["a", "b", "c", "d"]
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    events: List[NLEvent] = []
    t = 0.0

    def ev(name: str, **attrs) -> None:
        attrs.setdefault("xwf.id", xwf)
        events.append(NLEvent(name, t, attrs))

    ev(
        Events.WF_PLAN,
        **{
            "submit.hostname": "submit01",
            "dag.file.name": "diamond.dag",
            "planner.version": "test-1.0",
            "submit_dir": "/runs/diamond",
            "root.xwf.id": xwf,
            "user": "tester",
        },
    )
    ev(Events.STATIC_START)
    for j in jobs:
        ev(
            Events.TASK_INFO,
            **{"task.id": j, "type_desc": "compute", "transformation": f"tr_{j}"},
        )
    for p, c in edges:
        ev(Events.TASK_EDGE, **{"parent.task.id": p, "child.task.id": c})
    for j in jobs:
        ev(
            Events.JOB_INFO,
            **{
                "job.id": j,
                "type_desc": "compute",
                "clustered": 0,
                "max_retries": 3,
                "executable": f"/bin/{j}",
                "task_count": 1,
            },
        )
    for p, c in edges:
        ev(Events.JOB_EDGE, **{"parent.job.id": p, "child.job.id": c})
    for j in jobs:
        ev(Events.MAP_TASK_JOB, **{"task.id": j, "job.id": j})
    ev(Events.STATIC_END)

    t = 10.0
    ev(Events.XWF_START, restart_count=0)

    any_failed = False
    for j in jobs:
        attempts = retries.get(j, 0) + 1
        for attempt in range(1, attempts + 1):
            final = attempt == attempts
            failed = (j == fail_job and final) or not final
            any_failed = any_failed or (j == fail_job and final)
            t += 1.0
            ev(
                Events.JOB_INST_SUBMIT_START,
                **{"job.id": j, "job_inst.id": attempt, "sched.id": f"{j}.{attempt}"},
            )
            ev(
                Events.JOB_INST_SUBMIT_END,
                **{"job.id": j, "job_inst.id": attempt, "status": 0},
            )
            t += 0.5  # queue delay
            ev(
                Events.JOB_INST_HOST_INFO,
                **{
                    "job.id": j,
                    "job_inst.id": attempt,
                    "site": "local",
                    "hostname": "node1",
                    "ip": "10.0.0.1",
                },
            )
            ev(Events.JOB_INST_MAIN_START, **{"job.id": j, "job_inst.id": attempt})
            start = t
            t += 4.0  # runtime
            ev(
                Events.INV_START,
                **{"job.id": j, "job_inst.id": attempt, "inv.id": 1, "task.id": j},
            )
            ev(
                Events.INV_END,
                **{
                    "job.id": j,
                    "job_inst.id": attempt,
                    "inv.id": 1,
                    "task.id": j,
                    "start_time": start,
                    "dur": 4.0,
                    "remote_cpu_time": 3.6,
                    "exitcode": 1 if failed else 0,
                    "transformation": f"tr_{j}",
                    "executable": f"/bin/{j}",
                    "status": -1 if failed else 0,
                    "site": "local",
                    "hostname": "node1",
                },
            )
            ev(
                Events.JOB_INST_MAIN_TERM,
                **{"job.id": j, "job_inst.id": attempt, "status": -1 if failed else 0},
            )
            ev(
                Events.JOB_INST_MAIN_END,
                **{
                    "job.id": j,
                    "job_inst.id": attempt,
                    "site": "local",
                    "status": -1 if failed else 0,
                    "exitcode": 1 if failed else 0,
                    "local.dur": 4.0,
                    "stdout.text": f"out of {j}",
                    "stderr.text": "boom" if failed else "",
                },
            )
    t += 1.0
    ev(Events.XWF_END, restart_count=0, status=-1 if any_failed else 0)
    return events
