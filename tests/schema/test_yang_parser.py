import pytest

from repro.schema.yang.ast import YangStatement
from repro.schema.yang.lexer import TokenKind, YangLexError, tokenize
from repro.schema.yang.parser import YangParseError, parse_module, parse_yang


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("leaf x { type string; }")
        kinds = [t.kind for t in toks]
        assert kinds == [
            TokenKind.STRING,
            TokenKind.STRING,
            TokenKind.LBRACE,
            TokenKind.STRING,
            TokenKind.STRING,
            TokenKind.SEMI,
            TokenKind.RBRACE,
        ]

    def test_double_quoted_string(self):
        toks = tokenize('description "hello world";')
        assert toks[1].value == "hello world"
        assert toks[1].quoted

    def test_escapes(self):
        toks = tokenize(r'pattern "a\"b\nc\\d";')
        assert toks[1].value == 'a"b\nc\\d'

    def test_unknown_escape_keeps_backslash(self):
        toks = tokenize(r'pattern "\d{4}";')
        assert toks[1].value == r"\d{4}"

    def test_single_quoted_no_escapes(self):
        toks = tokenize(r"pattern '\d';")
        assert toks[1].value == r"\d"

    def test_line_comment(self):
        toks = tokenize("a; // comment here\nb;")
        assert [t.value for t in toks if t.kind == TokenKind.STRING] == ["a", "b"]

    def test_block_comment(self):
        toks = tokenize("a; /* multi\nline */ b;")
        assert [t.value for t in toks if t.kind == TokenKind.STRING] == ["a", "b"]

    def test_unterminated_string(self):
        with pytest.raises(YangLexError):
            tokenize('x "oops')

    def test_unterminated_comment(self):
        with pytest.raises(YangLexError):
            tokenize("/* never ends")

    def test_line_numbers(self):
        toks = tokenize("a;\nb;")
        assert toks[0].line == 1
        assert toks[2].line == 2


class TestParser:
    def test_leaf_statement(self):
        (stmt,) = parse_yang("leaf ts { type string; mandatory true; }")
        assert stmt.keyword == "leaf"
        assert stmt.arg == "ts"
        assert stmt.arg_of("mandatory") == "true"
        assert stmt.find_one("type").arg == "string"

    def test_empty_block(self):
        (stmt,) = parse_yang("container x { }")
        assert stmt.children == []

    def test_semicolon_statement(self):
        (stmt,) = parse_yang("prefix stmp;")
        assert stmt.arg == "stmp"

    def test_string_concatenation(self):
        (stmt,) = parse_yang('pattern "abc" + "def";')
        assert stmt.arg == "abcdef"

    def test_concat_requires_quotes(self):
        with pytest.raises(YangParseError):
            parse_yang("pattern abc + def;")

    def test_nested(self):
        (stmt,) = parse_yang(
            "container a { leaf b { type string; } leaf c { type uint32; } }"
        )
        assert [c.arg for c in stmt.find_all("leaf")] == ["b", "c"]

    def test_missing_terminator(self):
        with pytest.raises(YangParseError):
            parse_yang("leaf x")

    def test_unclosed_block(self):
        with pytest.raises(YangParseError):
            parse_yang("container x { leaf y { type string; }")

    def test_stray_rbrace(self):
        with pytest.raises(YangParseError):
            parse_yang("a; }")

    def test_parse_module_requires_single_module(self):
        with pytest.raises(YangParseError):
            parse_module("leaf x { type string; }")
        mod = parse_module("module m { prefix p; }")
        assert mod.arg == "m"

    def test_quoted_keyword_rejected(self):
        with pytest.raises(YangParseError):
            parse_yang('"leaf" x;')


class TestAst:
    def test_walk(self):
        (stmt,) = parse_yang("container a { leaf b { type string; } }")
        keywords = [s.keyword for s in stmt.walk()]
        assert keywords == ["container", "leaf", "type"]

    def test_to_yang_roundtrip(self):
        text = 'container a { leaf b { type string; description "x y"; } }'
        (stmt,) = parse_yang(text)
        (reparsed,) = parse_yang(stmt.to_yang())
        assert reparsed == stmt

    def test_arg_of_default(self):
        (stmt,) = parse_yang("leaf x { type string; }")
        assert stmt.arg_of("mandatory", "false") == "false"

    def test_equality(self):
        a = YangStatement("leaf", "x")
        b = YangStatement("leaf", "x")
        assert a == b and hash(a) == hash(b)
