"""The full Stampede YANG module survives parse → to_yang → parse → compile."""
from repro.schema.compiler import compile_module
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.yang.parser import parse_module
from repro.schema.yang_source import STAMPEDE_YANG


class TestModuleRoundtrip:
    def test_ast_roundtrip(self):
        module = parse_module(STAMPEDE_YANG)
        reparsed = parse_module(module.to_yang())
        assert reparsed == module

    def test_compiled_registry_identical(self):
        module = parse_module(STAMPEDE_YANG)
        registry = compile_module(module.to_yang())
        assert set(registry.event_names()) == set(STAMPEDE_SCHEMA.event_names())
        for name in registry.event_names():
            a = registry.get(name)
            b = STAMPEDE_SCHEMA.get(name)
            assert set(a.leaves) == set(b.leaves), name
            for leaf_name in a.leaves:
                assert (
                    a.leaves[leaf_name].mandatory
                    == b.leaves[leaf_name].mandatory
                ), f"{name}.{leaf_name}"
                assert (
                    a.leaves[leaf_name].type_name
                    == b.leaves[leaf_name].type_name
                ), f"{name}.{leaf_name}"

    def test_descriptions_preserved(self):
        module = parse_module(STAMPEDE_YANG)
        registry = compile_module(module.to_yang())
        schema = registry.get("stampede.xwf.start")
        assert "restarted" in schema.leaves["restart_count"].description
