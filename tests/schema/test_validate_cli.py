import pytest

from repro.netlogger.stream import write_events
from repro.schema.validate_cli import main

from tests.helpers import diamond_events


class TestValidateCli:
    def test_valid_file(self, tmp_path, capsys):
        path = tmp_path / "ok.bp"
        write_events(path, diamond_events())
        rc = main([str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.bp"
        lines = [e.to_bp() for e in diamond_events()]
        lines.append("ts=1 event=stampede.xwf.start")  # missing restart_count
        lines.append("this is not BP at all ***")
        path.write_text("\n".join(lines) + "\n")
        rc = main([str(path)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "missing" in captured.err
        assert "unparseable" in captured.err

    def test_unknown_event_tolerated_with_flag(self, tmp_path, capsys):
        path = tmp_path / "custom.bp"
        path.write_text("ts=1 event=custom.thing a=1\n")
        assert main([str(path)]) == 1
        assert main([str(path), "--allow-unknown-events",
                     "--allow-unknown-attrs"]) == 0

    def test_dump_schema(self, capsys):
        rc = main(["--dump-schema"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("module stampede")
        assert "stampede.xwf.start" in out

    def test_list_events(self, capsys):
        rc = main(["--list-events"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stampede.inv.end" in out
        assert "restart_count" in out  # mandatory attr shown

    def test_requires_input(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_max_violations_cap(self, tmp_path, capsys):
        path = tmp_path / "many.bp"
        path.write_text(
            "\n".join("ts=1 event=stampede.xwf.start" for _ in range(30)) + "\n"
        )
        rc = main([str(path), "--max-violations", "3"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "more violation(s)" in err
        assert err.count("missing") == 3

    def test_dumped_schema_recompiles(self, capsys):
        from repro.schema.compiler import compile_module

        main(["--dump-schema"])
        text = capsys.readouterr().out
        registry = compile_module(text)
        assert len(registry) == 29
