import pytest

from repro.schema.compiler import compile_module
from repro.schema.stampede import STAMPEDE_SCHEMA, Events
from repro.schema.yang.parser import parse_yang
from repro.schema.yang.types import TypeRegistry, YangTypeError


def resolve(text: str, typedefs: str = ""):
    registry = TypeRegistry()
    if typedefs:
        for stmt in parse_yang(typedefs):
            registry.register_typedef(stmt)
    (stmt,) = parse_yang(text)
    return registry.resolve(stmt)


class TestTypes:
    def test_string_plain(self):
        t = resolve("type string;")
        t.check("anything at all")

    def test_string_pattern(self):
        t = resolve(r'type string { pattern "[a-z]+"; }')
        t.check("abc")
        with pytest.raises(YangTypeError):
            t.check("ABC")

    def test_string_length(self):
        t = resolve('type string { length "2..4"; }')
        t.check("abc")
        with pytest.raises(YangTypeError):
            t.check("a")
        with pytest.raises(YangTypeError):
            t.check("abcde")

    def test_uint32(self):
        t = resolve("type uint32;")
        t.check("0")
        t.check("4294967295")
        with pytest.raises(YangTypeError):
            t.check("-1")
        with pytest.raises(YangTypeError):
            t.check("4294967296")
        with pytest.raises(YangTypeError):
            t.check("abc")

    def test_int32_range_restriction(self):
        t = resolve('type int32 { range "0..10"; }')
        t.check("5")
        with pytest.raises(YangTypeError):
            t.check("11")

    def test_decimal64(self):
        t = resolve("type decimal64;")
        t.check("74.0")
        t.check("-1")
        with pytest.raises(YangTypeError):
            t.check("x")

    def test_boolean(self):
        t = resolve("type boolean;")
        for ok in ("true", "false", "0", "1", "True"):
            t.check(ok)
        with pytest.raises(YangTypeError):
            t.check("yes")

    def test_enumeration(self):
        t = resolve("type enumeration { enum A; enum B; }")
        t.check("A")
        with pytest.raises(YangTypeError):
            t.check("C")

    def test_union(self):
        t = resolve("type union { type uint32; type enumeration { enum X; } }")
        t.check("5")
        t.check("X")
        with pytest.raises(YangTypeError):
            t.check("Y")

    def test_typedef_resolution(self):
        t = resolve(
            "type myint;", typedefs='typedef myint { type uint8 { range "0..1"; } }'
        )
        t.check("1")
        with pytest.raises(YangTypeError):
            t.check("2")

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            resolve("type nosuch;")

    def test_duplicate_typedef_rejected(self):
        registry = TypeRegistry()
        (td,) = parse_yang("typedef t { type string; }")
        registry.register_typedef(td)
        with pytest.raises(ValueError):
            registry.register_typedef(td)


MINI_MODULE = """
module mini {
    typedef score { type uint8 { range "0..100"; } }
    grouping base {
        leaf ts { type string; mandatory true; }
    }
    container mini.event {
        description "An event";
        uses base;
        leaf value { type score; mandatory true; }
        leaf note { type string; }
    }
}
"""


class TestCompiler:
    def test_compile_mini_module(self):
        reg = compile_module(MINI_MODULE)
        assert reg.module_name == "mini"
        schema = reg.get("mini.event")
        assert schema is not None
        assert set(schema.leaves) == {"ts", "value", "note"}
        assert schema.leaves["value"].mandatory
        assert not schema.leaves["note"].mandatory
        assert schema.description == "An event"

    def test_grouping_flattened(self):
        reg = compile_module(MINI_MODULE)
        assert "ts" in reg.get("mini.event").leaves

    def test_unknown_grouping(self):
        bad = "module m { container c { uses nothere; } }"
        with pytest.raises(ValueError):
            compile_module(bad)

    def test_duplicate_container(self):
        bad = "module m { container c { } container c { } }"
        with pytest.raises(ValueError):
            compile_module(bad)


class TestStampedeSchema:
    def test_all_events_compiled(self):
        assert len(STAMPEDE_SCHEMA) == len(Events.all())

    def test_base_event_in_every_schema(self):
        for name in STAMPEDE_SCHEMA.event_names():
            schema = STAMPEDE_SCHEMA.get(name)
            assert "ts" in schema.leaves, name
            assert schema.leaves["ts"].mandatory, name
            assert "xwf.id" in schema.leaves, name

    def test_xwf_start_restart_count(self):
        schema = STAMPEDE_SCHEMA.get(Events.XWF_START)
        assert schema.leaves["restart_count"].mandatory
        assert schema.leaves["restart_count"].type_name == "uint32"

    def test_job_inst_events_share_ids(self):
        for name in STAMPEDE_SCHEMA.event_names():
            if name.startswith("stampede.job_inst."):
                schema = STAMPEDE_SCHEMA.get(name)
                assert "job.id" in schema.leaves, name
                assert "job_inst.id" in schema.leaves, name

    def test_inv_end_mandatories(self):
        schema = STAMPEDE_SCHEMA.get(Events.INV_END)
        for attr in ("start_time", "dur", "exitcode", "transformation", "status"):
            assert schema.leaves[attr].mandatory, attr

    def test_uuid_type_checks(self):
        leaf = STAMPEDE_SCHEMA.get(Events.XWF_START).leaves["xwf.id"]
        leaf.yang_type.check("ea17e8ac-02ac-4909-b5e3-16e367392556")
        with pytest.raises(YangTypeError):
            leaf.yang_type.check("not-a-uuid")

    def test_nl_ts_union_accepts_both_forms(self):
        leaf = STAMPEDE_SCHEMA.get(Events.XWF_START).leaves["ts"]
        leaf.yang_type.check("2012-03-13T12:35:38.000000Z")
        leaf.yang_type.check("1331642138.5")
        with pytest.raises(YangTypeError):
            leaf.yang_type.check("yesterday")
