import pytest

from repro.netlogger.events import NLEvent
from repro.schema.stampede import STAMPEDE_SCHEMA, Events
from repro.schema.validator import EventValidator

XWF = "ea17e8ac-02ac-4909-b5e3-16e367392556"


@pytest.fixture
def validator():
    return EventValidator(STAMPEDE_SCHEMA)


def xwf_start(**extra):
    attrs = {"xwf.id": XWF, "restart_count": 0}
    attrs.update(extra)
    return NLEvent(Events.XWF_START, 100.0, attrs)


class TestEventValidator:
    def test_valid_event(self, validator):
        assert validator.validate_event(xwf_start()) == []

    def test_missing_mandatory(self, validator):
        ev = NLEvent(Events.XWF_START, 100.0, {"xwf.id": XWF})
        violations = validator.validate_event(ev)
        assert [v.kind for v in violations] == ["missing"]
        assert violations[0].attribute == "restart_count"

    def test_bad_type(self, validator):
        violations = validator.validate_event(xwf_start(restart_count="many"))
        assert [v.kind for v in violations] == ["bad-type"]

    def test_unknown_event(self, validator):
        ev = NLEvent("stampede.nope", 0.0)
        assert [v.kind for v in validator.validate_event(ev)] == ["unknown-event"]

    def test_unknown_event_allowed(self):
        v = EventValidator(STAMPEDE_SCHEMA, allow_unknown_events=True)
        assert v.validate_event(NLEvent("custom.thing", 0.0)) == []

    def test_unknown_attr(self, validator):
        violations = validator.validate_event(xwf_start(custom="x"))
        assert [v.kind for v in violations] == ["unknown-attr"]

    def test_unknown_attr_allowed(self):
        v = EventValidator(STAMPEDE_SCHEMA, allow_unknown_attrs=True)
        assert v.validate_event(xwf_start(custom="x")) == []

    def test_check_raises(self, validator):
        with pytest.raises(ValueError):
            validator.check(NLEvent("stampede.nope", 0.0))
        validator.check(xwf_start())

    def test_validate_stream_report(self, validator):
        events = [xwf_start(), NLEvent("stampede.nope", 0.0), xwf_start()]
        report = validator.validate(events)
        assert report.events_checked == 3
        assert len(report.violations) == 1
        assert not report.ok
        assert "3 event" in report.summary()

    def test_ok_report(self, validator):
        report = validator.validate([xwf_start()])
        assert report.ok
        assert "OK" in report.summary()

    def test_paper_log_line_validates(self, validator):
        line = (
            "ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start level=Info "
            "xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0"
        )
        assert validator.validate_event(NLEvent.from_bp(line)) == []

    def test_violation_str(self, validator):
        (violation,) = validator.validate_event(
            NLEvent(Events.XWF_START, 0.0, {"xwf.id": XWF})
        )
        text = str(violation)
        assert "missing" in text and "restart_count" in text
