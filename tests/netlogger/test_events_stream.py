import io

import pytest

from repro.netlogger.events import Level, NLEvent
from repro.netlogger.stream import BPReader, BPWriter, read_events, tail_events, write_events


def sample_events(n=5):
    return [
        NLEvent(f"stampede.test.e{i}", float(i), {"idx": i, "msg": f"event {i}"})
        for i in range(n)
    ]


class TestNLEvent:
    def test_bp_roundtrip(self):
        ev = NLEvent(
            "stampede.xwf.start",
            1331642138.0,
            {"xwf.id": "ea17e8ac-02ac-4909-b5e3-16e367392556", "restart_count": 0},
        )
        back = NLEvent.from_bp(ev.to_bp())
        assert back == ev

    def test_level_roundtrip(self):
        ev = NLEvent("x.y", 1.0, level=Level.ERROR)
        assert NLEvent.from_bp(ev.to_bp()).level is Level.ERROR

    def test_level_parse_case_insensitive(self):
        assert Level.parse("info") is Level.INFO
        with pytest.raises(ValueError):
            Level.parse("nope")

    def test_default_level_info(self):
        assert NLEvent.from_bp("ts=1 event=x").level is Level.INFO

    def test_prefix_and_matching(self):
        ev = NLEvent("stampede.job_inst.main.start", 0.0)
        assert ev.prefix == "stampede"
        assert ev.matches_prefix("stampede.job_inst")
        assert ev.matches_prefix("stampede.job_inst.main.start")
        assert not ev.matches_prefix("stampede.job")  # word boundary

    def test_empty_event_rejected(self):
        with pytest.raises(ValueError):
            NLEvent("", 0.0)

    def test_copy_independent(self):
        ev = NLEvent("x", 0.0, {"a": 1})
        cp = ev.copy()
        cp.attrs["a"] = 2
        assert ev.attrs["a"] == 1

    def test_getitem_contains(self):
        ev = NLEvent("x", 0.0, {"a": 1})
        assert ev["a"] == 1
        assert "a" in ev
        assert ev.get("b", "d") == "d"


class TestStream:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "log.bp"
        events = sample_events()
        assert write_events(path, events) == 5
        back = read_events(path)
        assert back == events

    def test_reader_skips_blank_and_comments(self):
        text = "# comment\n\nts=1 event=a\n   \nts=2 event=b\n"
        events = read_events(io.StringIO(text))
        assert [e.event for e in events] == ["a", "b"]

    def test_reader_error_modes(self):
        text = "ts=1 event=a\nnot a bp line ===\nts=2 event=b\n"
        with pytest.raises(Exception):
            read_events(io.StringIO(text))
        reader = BPReader(io.StringIO(text), on_error="skip")
        events = list(reader)
        assert [e.event for e in events] == ["a", "b"]
        assert len(reader.errors) == 1
        assert reader.errors[0][0] == 2  # line number

    def test_reader_error_callback(self):
        seen = []
        reader = BPReader(
            io.StringIO("bogus ***\n"), on_error=lambda n, l, e: seen.append(n)
        )
        list(reader)
        assert seen == [1]

    def test_writer_append_and_count(self, tmp_path):
        path = tmp_path / "log.bp"
        with BPWriter(path) as w:
            w.write_all(sample_events(3))
            assert w.events_written == 3
        with BPWriter(path) as w:
            w.write(sample_events(1)[0])
        assert len(read_events(path)) == 4

    def test_tail_events_follows_growth(self, tmp_path):
        path = tmp_path / "grow.bp"
        events = sample_events(4)
        with BPWriter(path) as w:
            w.write(events[0])

        produced = iter(events[1:])
        writer = BPWriter(path)
        state = {"remaining": 3}

        def poll():
            try:
                writer.write(next(produced))
                return True
            except StopIteration:
                writer.close()
                return False

        seen = list(tail_events(path, poll))
        assert seen == events

    def test_tail_start_at_end(self, tmp_path):
        path = tmp_path / "grow.bp"
        events = sample_events(3)
        with BPWriter(path) as w:
            w.write(events[0])
        writer = BPWriter(path)
        sent = {"done": False}

        def poll():
            if sent["done"]:
                writer.close()
                return False
            writer.write(events[1])
            sent["done"] = True
            return True

        seen = list(tail_events(path, poll, start_at_end=True))
        assert seen == [events[1]]
