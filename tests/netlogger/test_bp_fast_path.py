"""Fast-path BP parser must be observationally identical to the strict
scanner: same dicts for valid lines, same error class for invalid ones.

The fast path is tiered (str.split, then regex, then the char-by-char
scanner); when a tier is unsure it returns nothing and the next tier
runs, so equivalence should hold *by construction* — these tests are the
evidence.  A seeded 10k-line corpus covers the shapes the tiers
dispatch on (plain, quoted, escaped, unicode, malformed) and hypothesis
explores the space around them.
"""
import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlogger.bp import (
    BPParseError,
    format_bp_line,
    parse_bp_line,
    quote_value,
)
from repro.netlogger.events import NLEvent
from repro.util.timeutil import format_iso, parse_ts, parse_ts_cached

# ---------------------------------------------------------------------------
# seeded corpus: 10k lines spanning every parser tier
# ---------------------------------------------------------------------------

_NAME_ALPHABET = string.ascii_letters + string.digits + "_"
_PLAIN_ALPHABET = string.ascii_letters + string.digits + "_-./:@+"
_UNICODE_SAMPLES = "αβγδ中文токен🎯naïve Ω"


def _rand_name(rng: random.Random) -> str:
    parts = []
    for _ in range(rng.randint(1, 3)):
        first = rng.choice(string.ascii_letters + "_")
        rest = "".join(
            rng.choice(_NAME_ALPHABET) for _ in range(rng.randint(0, 7))
        )
        parts.append(first + rest)
    return ".".join(parts)


def _rand_value(rng: random.Random) -> str:
    kind = rng.randrange(6)
    if kind == 0:  # plain token (split tier)
        return "".join(
            rng.choice(_PLAIN_ALPHABET) for _ in range(rng.randint(0, 12))
        )
    if kind == 1:  # spaces force quoting (regex tier)
        return " ".join(
            "".join(rng.choice(_PLAIN_ALPHABET) for _ in range(rng.randint(1, 6)))
            for _ in range(rng.randint(1, 3))
        )
    if kind == 2:  # embedded quotes / backslashes (escape handling)
        return "".join(
            rng.choice('ab"\\= ') for _ in range(rng.randint(1, 10))
        )
    if kind == 3:  # unicode
        return "".join(
            rng.choice(_UNICODE_SAMPLES) for _ in range(rng.randint(1, 8))
        )
    if kind == 4:  # empty value
        return ""
    return str(rng.uniform(-1e6, 1e6))  # numeric-looking


def _corpus_line(rng: random.Random) -> str:
    attrs = {"ts": format_iso(rng.uniform(0, 2_000_000_000)), "event": _rand_name(rng)}
    for _ in range(rng.randint(0, 6)):
        attrs[_rand_name(rng)] = _rand_value(rng)
    line = format_bp_line(attrs)
    if rng.random() < 0.15:  # surrounding whitespace is stripped upstream
        line = " " * rng.randint(1, 3) + line + " " * rng.randint(1, 3)
    return line.strip()


def _mangle(line: str, rng: random.Random) -> str:
    """Break a valid line so at least some corpus entries must error."""
    kind = rng.randrange(4)
    if kind == 0:
        return line.replace("=", "", 1)  # token without '='
    if kind == 1:
        return line + ' dangling="unterminated'
    if kind == 2:
        return line + " 9bad=value"  # name starting with a digit
    return line + " =novalue"


def _build_corpus(n: int = 10_000, seed: int = 20260806):
    rng = random.Random(seed)
    lines = []
    for i in range(n):
        line = _corpus_line(rng)
        if i % 10 == 9:
            line = _mangle(line, rng)
        lines.append(line)
    return lines


def test_fast_and_strict_agree_on_10k_corpus():
    agreed_ok = agreed_err = 0
    for line in _build_corpus():
        try:
            slow = parse_bp_line(line, fast=False)
            slow_exc = None
        except BPParseError as exc:
            slow, slow_exc = None, exc
        try:
            fast = parse_bp_line(line, fast=True)
            fast_exc = None
        except BPParseError as exc:
            fast, fast_exc = None, exc
        if slow_exc is None:
            assert fast_exc is None, f"fast rejected valid line: {line!r}: {fast_exc}"
            assert fast == slow, f"disagreement on {line!r}"
            agreed_ok += 1
        else:
            assert fast_exc is not None, f"fast accepted invalid line: {line!r}"
            agreed_err += 1
    # the corpus must genuinely exercise both sides
    assert agreed_ok > 8_000
    assert agreed_err > 500


def test_strict_mode_duplicate_keys_both_paths():
    line = "ts=1.5 event=dup.test a=1 a=2"
    assert parse_bp_line(line, fast=True)["a"] == "2"
    assert parse_bp_line(line, fast=False)["a"] == "2"
    for fast in (True, False):
        with pytest.raises(BPParseError):
            parse_bp_line(line, strict=True, fast=fast)


# ---------------------------------------------------------------------------
# hypothesis: equivalence over generated lines
# ---------------------------------------------------------------------------

name_part = st.text(
    alphabet=string.ascii_letters + string.digits + "_",
    min_size=1,
    max_size=8,
).filter(lambda s: s[0].isalpha() or s[0] == "_")
attr_names = st.builds(
    lambda parts: ".".join(parts), st.lists(name_part, min_size=1, max_size=3)
).filter(lambda n: n not in ("ts", "event", "level"))
attr_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=40,
)


@given(attrs=st.dictionaries(attr_names, attr_values, max_size=8))
@settings(max_examples=300)
def test_fast_matches_strict_on_formatted_lines(attrs):
    line_attrs = {"ts": "1.5", "event": "prop.test", **attrs}
    line = format_bp_line(line_attrs)
    assert parse_bp_line(line, fast=True) == parse_bp_line(line, fast=False)


@given(value=attr_values)
@settings(max_examples=200)
def test_fast_unquotes_like_strict(value):
    line = f"ts=1 event=x v={quote_value(value)}"
    fast = parse_bp_line(line, fast=True)
    slow = parse_bp_line(line, fast=False)
    assert fast["v"] == value
    assert fast == slow


# ---------------------------------------------------------------------------
# timestamp fast path: parse_ts_cached is bit-identical to parse_ts
# ---------------------------------------------------------------------------

@given(ts=st.floats(min_value=0, max_value=4_000_000_000))
@settings(max_examples=300)
def test_parse_ts_cached_matches_reference_on_iso(ts):
    text = format_iso(ts)
    assert parse_ts_cached(text) == parse_ts(text)


@given(ts=st.floats(min_value=0, max_value=4_000_000_000))
@settings(max_examples=200)
def test_parse_ts_cached_matches_reference_on_floats(ts):
    text = repr(ts)
    assert parse_ts_cached(text) == parse_ts(text)


@pytest.mark.parametrize(
    "text",
    [
        "2012-11-10T09:08:07.123456Z",
        "2012-11-10T09:08:07Z",
        "2012-11-10T09:08:07.123456+02:00",
        "2012-11-10T09:08:07.123456-05:30",
        "1352538487.123456",
        "0",
    ],
)
def test_parse_ts_cached_known_shapes(text):
    assert parse_ts_cached(text) == parse_ts(text)


def test_from_bp_fast_and_strict_events_identical():
    line = 'ts=2012-11-10T09:08:07.123456Z event=job.end level=Info x="a b" u=中文'
    fast = NLEvent.from_bp(line, fast=True)
    slow = NLEvent.from_bp(line, fast=False)
    assert fast.event == slow.event
    assert fast.ts == slow.ts
    assert fast.level == slow.level
    assert fast.attrs == slow.attrs
