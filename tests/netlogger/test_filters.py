import pytest

from repro.netlogger.events import NLEvent
from repro.netlogger.filters import (
    by_pattern,
    by_time_window,
    by_workflow,
    event_counts,
    sample,
    split_by_workflow,
)

from tests.helpers import XWF, diamond_events


class TestFilters:
    def test_by_pattern(self):
        events = diamond_events()
        inv = list(by_pattern(events, "stampede.inv.#"))
        assert len(inv) == 8  # 4 inv.start + 4 inv.end
        assert all(e.event.startswith("stampede.inv") for e in inv)

    def test_by_pattern_exact(self):
        events = diamond_events()
        assert len(list(by_pattern(events, "stampede.xwf.start"))) == 1

    def test_by_workflow(self):
        other = "99999999-8888-4777-8666-555555555555"
        mixed = diamond_events() + diamond_events(xwf=other)
        ours = list(by_workflow(mixed, XWF))
        assert len(ours) == len(diamond_events())
        assert all(str(e.get("xwf.id")) == XWF for e in ours)

    def test_by_time_window(self):
        events = diamond_events()
        early = list(by_time_window(events, end=10.0))
        late = list(by_time_window(events, start=10.0))
        assert len(early) + len(late) == len(events)
        assert all(e.ts < 10.0 for e in early)
        both = list(by_time_window(events, start=5.0, end=15.0))
        assert all(5.0 <= e.ts < 15.0 for e in both)

    def test_sample_deterministic_and_keeps_lifecycle(self):
        events = diamond_events()
        a = list(sample(events, 0.3, seed=5))
        b = list(sample(events, 0.3, seed=5))
        assert [e.event for e in a] == [e.event for e in b]
        names = [e.event for e in a]
        assert "stampede.xwf.start" in names
        assert "stampede.xwf.end" in names
        assert len(a) < len(events)

    def test_sample_bounds(self):
        events = diamond_events()
        assert len(list(sample(events, 1.0))) == len(events)
        only_lifecycle = list(sample(events, 0.0))
        assert all(e.event.startswith("stampede.xwf") for e in only_lifecycle)
        with pytest.raises(ValueError):
            list(sample(events, 1.5))

    def test_split_by_workflow(self):
        other = "99999999-8888-4777-8666-555555555555"
        mixed = diamond_events() + diamond_events(xwf=other)
        streams = split_by_workflow(mixed)
        assert set(streams) == {XWF, other}
        assert len(streams[XWF]) == len(streams[other])

    def test_event_counts(self):
        counts = event_counts(diamond_events())
        assert counts["stampede.inv.end"] == 4
        assert counts["stampede.task.info"] == 4
        assert counts["stampede.xwf.end"] == 1


class TestGantt:
    def test_gantt_rows(self):
        from repro.core.timeseries import gantt
        from repro.loader import load_events
        from repro.query import StampedeQuery

        loader = load_events(diamond_events())
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        rows = gantt(q, wf.wf_id)
        assert len(rows) == 4
        for row in rows:
            assert row.hostname == "node1"
            assert row.submit is not None
            assert row.submit <= row.start <= row.end
            q_span = row.queue_span
            r_span = row.run_span
            assert q_span[1] == r_span[0]
            assert r_span[1] - r_span[0] == pytest.approx(4.0, abs=0.1)
        # sorted by start time
        starts = [r.start for r in rows]
        assert starts == sorted(starts)

    def test_gantt_incomplete_instance(self):
        from repro.core.timeseries import gantt
        from repro.loader import load_events
        from repro.query import StampedeQuery

        # drop the tail so job 'd' never finishes
        events = diamond_events()
        cut = [e for e in events if not (
            e.event.startswith("stampede.job_inst.main")
            and str(e.get("job.id")) == "d"
        ) and e.event != "stampede.xwf.end"]
        loader = load_events(cut)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        rows = gantt(q, wf.wf_id)
        incomplete = next(r for r in rows if r.exec_job_id == "d")
        assert incomplete.end is None
        assert incomplete.run_span is None
