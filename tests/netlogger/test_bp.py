import pytest

from repro.netlogger.bp import (
    BPParseError,
    format_bp_line,
    parse_bp_line,
    quote_value,
)

PAPER_LINE = (
    "ts=2012-03-13T12:35:38.000000Z event=stampede.xwf.start level=Info "
    "xwf.id=ea17e8ac-02ac-4909-b5e3-16e367392556 restart_count=0"
)


class TestParse:
    def test_paper_example(self):
        attrs = parse_bp_line(PAPER_LINE)
        assert attrs["event"] == "stampede.xwf.start"
        assert attrs["restart_count"] == "0"
        assert attrs["xwf.id"] == "ea17e8ac-02ac-4909-b5e3-16e367392556"

    def test_order_preserved(self):
        attrs = parse_bp_line("ts=1 event=x b=1 a=2")
        assert list(attrs) == ["ts", "event", "b", "a"]

    def test_quoted_value_with_spaces(self):
        attrs = parse_bp_line('ts=1 event=x msg="hello world"')
        assert attrs["msg"] == "hello world"

    def test_quoted_value_with_escapes(self):
        attrs = parse_bp_line(r'ts=1 event=x msg="say \"hi\" \\ there"')
        assert attrs["msg"] == 'say "hi" \\ there'

    def test_quoted_equals(self):
        attrs = parse_bp_line('ts=1 event=x argv="--opt=value"')
        assert attrs["argv"] == "--opt=value"

    def test_empty_quoted_value(self):
        attrs = parse_bp_line('ts=1 event=x empty=""')
        assert attrs["empty"] == ""

    def test_missing_ts_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line("event=x a=1")

    def test_missing_event_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line("ts=1 a=1")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line('ts=1 event=x msg="oops')

    def test_missing_equals_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line("ts=1 event=x standalone")

    def test_garbage_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line("ts=1 event=x ***=1")

    def test_extra_whitespace_tolerated(self):
        attrs = parse_bp_line("  ts=1   event=x   a=1  ")
        assert attrs["a"] == "1"

    def test_dotted_and_dashed_names(self):
        attrs = parse_bp_line("ts=1 event=x job_inst.id=3 some-name=y")
        assert attrs["job_inst.id"] == "3"
        assert attrs["some-name"] == "y"


class TestFormat:
    def test_ts_event_first(self):
        line = format_bp_line({"a": 1, "event": "x", "ts": "5"})
        assert line.startswith("ts=5 event=x")

    def test_quotes_spaces(self):
        line = format_bp_line({"ts": 1, "event": "x", "m": "a b"})
        assert 'm="a b"' in line

    def test_bool_rendering(self):
        line = format_bp_line({"ts": 1, "event": "x", "flag": True})
        assert "flag=true" in line

    def test_requires_ts_and_event(self):
        with pytest.raises(ValueError):
            format_bp_line({"a": 1})

    def test_invalid_attr_name(self):
        with pytest.raises(ValueError):
            format_bp_line({"ts": 1, "event": "x", "bad name": 1})

    def test_roundtrip(self):
        original = {
            "ts": "2012-03-13T12:35:38.000000Z",
            "event": "stampede.inv.end",
            "argv": '--file "my data.txt" --n=3',
            "dur": "74.0",
            "path": "C:\\temp\\x",
        }
        attrs = parse_bp_line(format_bp_line(original))
        assert attrs == {k: str(v) for k, v in original.items()}


class TestQuoteValue:
    def test_plain_unquoted(self):
        assert quote_value("hello") == "hello"

    def test_space_quoted(self):
        assert quote_value("a b") == '"a b"'

    def test_empty_quoted(self):
        assert quote_value("") == '""'

    def test_backslash_escaped(self):
        assert quote_value("a\\b c") == '"a\\\\b c"'
