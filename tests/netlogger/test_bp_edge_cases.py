"""BP quoting/escaping edge cases and duplicate-attribute handling."""
import pytest

from repro.netlogger import (
    BPParseError,
    format_bp_line,
    parse_bp_line,
    parse_bp_pairs,
    quote_value,
)

TS = "ts=2012-03-13T12:00:00.000000Z event=e.v"


class TestQuotingEdgeCases:
    def test_empty_value_round_trips(self):
        attrs = parse_bp_line(f'{TS} msg=""')
        assert attrs["msg"] == ""
        assert 'msg=""' in format_bp_line(attrs)

    def test_value_of_only_spaces(self):
        attrs = parse_bp_line(f'{TS} msg="   "')
        assert attrs["msg"] == "   "

    def test_embedded_quote(self):
        attrs = parse_bp_line(f'{TS} msg="say \\"hi\\""')
        assert attrs["msg"] == 'say "hi"'

    def test_embedded_backslash(self):
        attrs = parse_bp_line(f'{TS} path="C:\\\\tmp\\\\x"')
        assert attrs["path"] == "C:\\tmp\\x"

    def test_backslash_then_quote(self):
        # literal backslash immediately before the closing quote
        attrs = parse_bp_line(f'{TS} msg="end\\\\"')
        assert attrs["msg"] == "end\\"

    def test_equals_inside_quotes(self):
        attrs = parse_bp_line(f'{TS} expr="a=b=c"')
        assert attrs["expr"] == "a=b=c"

    def test_dangling_escape_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line(f'{TS} msg="trailing\\')

    def test_unterminated_quote_rejected(self):
        with pytest.raises(BPParseError):
            parse_bp_line(f'{TS} msg="never closed')

    def test_quote_value_chooses_minimal_form(self):
        assert quote_value("plain") == "plain"
        assert quote_value("has space") == '"has space"'
        assert quote_value("") == '""'
        assert quote_value('q"q') == '"q\\"q"'

    @pytest.mark.parametrize("value", [
        "", " ", "a b", 'a"b', "a\\b", "a=b", 'mix "of \\ all=things ',
        "tab\tinside", "unicode ✓ value",
    ])
    def test_round_trip_stability(self, value):
        attrs = {"ts": "2012-03-13T12:00:00.000000Z", "event": "e.v",
                 "msg": value}
        line1 = format_bp_line(attrs)
        parsed = parse_bp_line(line1)
        assert parsed["msg"] == value
        # serialize -> parse -> serialize is a fixed point
        assert format_bp_line(parsed) == line1


class TestDuplicateAttributes:
    LINE = f"{TS} x=1 x=2"

    def test_default_last_occurrence_wins(self):
        assert parse_bp_line(self.LINE)["x"] == "2"

    def test_strict_raises(self):
        with pytest.raises(BPParseError) as err:
            parse_bp_line(self.LINE, strict=True)
        assert "duplicate" in str(err.value)

    def test_strict_accepts_clean_line(self):
        attrs = parse_bp_line(f"{TS} x=1 y=2", strict=True)
        assert attrs["x"] == "1" and attrs["y"] == "2"

    def test_parse_bp_pairs_preserves_duplicates(self):
        pairs = parse_bp_pairs(self.LINE)
        assert pairs.count(("x", "1")) == 1
        assert pairs.count(("x", "2")) == 1

    def test_parse_bp_pairs_preserves_order(self):
        pairs = parse_bp_pairs(f"{TS} b=1 a=2 b=3")
        names = [k for k, _ in pairs]
        assert names == ["ts", "event", "b", "a", "b"]
