"""Bus edge cases: blocking gets, exchange bookkeeping, binding removal."""
import threading
import time

import pytest

from repro.bus.broker import Broker, Exchange
from repro.bus.queues import MessageQueue


class TestBlockingGet:
    def test_timeout_expires(self):
        q = MessageQueue("q")
        start = time.monotonic()
        assert q.get(timeout=0.05) is None
        assert time.monotonic() - start >= 0.04

    def test_blocking_get_wakes_on_put(self):
        q = MessageQueue("q")
        result = {}

        def consumer():
            result["msg"] = q.get(timeout=5.0)

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        q.put("k", "hello")
        t.join(timeout=5)
        assert not t.is_alive()
        assert result["msg"].body == "hello"

    def test_poll_returns_immediately(self):
        q = MessageQueue("q")
        start = time.monotonic()
        assert q.get(timeout=0.0) is None
        assert time.monotonic() - start < 0.05


class TestExchange:
    def test_route_order_stable(self):
        ex = Exchange("x")
        ex.bind("a.#", "q1")
        ex.bind("#", "q2")
        ex.bind("a.b", "q1")  # second binding to q1: still one delivery
        assert ex.route("a.b") == ["q1", "q2"]

    def test_unbind(self):
        ex = Exchange("x")
        ex.bind("a.#", "q1")
        ex.unbind("a.#", "q1")
        assert ex.route("a.b") == []

    def test_duplicate_binding_ignored(self):
        ex = Exchange("x")
        ex.bind("a.#", "q1")
        ex.bind("a.#", "q1")
        assert len(ex.bindings()) == 1

    def test_invalid_pattern_rejected_at_bind(self):
        ex = Exchange("x")
        with pytest.raises(ValueError):
            ex.bind("a.b#", "q1")


class TestBrokerMisc:
    def test_publish_to_missing_exchange_creates_it(self):
        broker = Broker()
        assert broker.publish("a.b", 1, exchange="fresh") == 0
        assert broker.declare_exchange("fresh").published == 1

    def test_queue_lookup_missing(self):
        with pytest.raises(KeyError):
            Broker().queue("nope")

    def test_bounded_queue_via_broker(self):
        broker = Broker()
        broker.declare_queue("small", max_length=2)
        broker.bind_queue("small", "#")
        for i in range(5):
            broker.publish("k", i)
        q = broker.queue("small")
        assert len(q) == 2
        assert q.stats.dropped == 3
