"""Stress regression tests for the MessageQueue two-condition protocol.

The queue uses one mutex with two conditions (``_not_empty`` /
``_not_full``).  The classic failure modes of that protocol — a notify
on the wrong condition (lost wakeup), a missed notify under overflow, a
message handed to two consumers — only show up under real contention,
so these tests run N producers against M consumers per overflow policy
and check the conservation laws afterwards:

* every published body is delivered exactly once ('block'/'raise');
* published == acked + dropped + leftover ('drop-oldest');
* no delivery is duplicated under any policy;
* all threads join within the deadline (no thread wedged on a
  condition nobody will ever signal).
"""
import random
import threading
import time

import pytest

from repro.bus.queues import MessageQueue, QueueFullError


def run_stress(
    policy,
    producers=4,
    consumers=3,
    per_producer=200,
    max_length=8,
    retry_on_full=False,
):
    """Drive one contended round; return (queue, delivered bodies)."""
    q = MessageQueue("stress", max_length=max_length, overflow=policy)
    producers_done = threading.Event()
    delivered = []
    delivered_mu = threading.Lock()
    errors = []

    def produce(pid):
        try:
            for i in range(per_producer):
                body = (pid, i)
                while True:
                    try:
                        q.put("stress.key", body, timeout=10)
                        break
                    except QueueFullError:
                        if not retry_on_full:
                            raise
                        time.sleep(0.0005)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    def consume():
        try:
            while True:
                msg = q.get(timeout=0.05)
                if msg is None:
                    if producers_done.is_set() and len(q) == 0:
                        return
                    continue
                with delivered_mu:
                    delivered.append(msg.body)
                q.ack(msg.delivery_tag)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [
        threading.Thread(target=produce, args=(pid,), name=f"prod-{pid}")
        for pid in range(producers)
    ] + [
        threading.Thread(target=consume, name=f"cons-{cid}")
        for cid in range(consumers)
    ]
    for t in threads:
        t.start()
    for t in threads[:producers]:
        t.join(timeout=30)
    producers_done.set()
    for t in threads[producers:]:
        t.join(timeout=30)
    wedged = [t.name for t in threads if t.is_alive()]
    assert not wedged, f"threads wedged on the queue protocol: {wedged}"
    assert not errors, errors
    return q, delivered


class TestBlockPolicy:
    def test_no_lost_wakeups_no_duplicates(self):
        q, delivered = run_stress("block")
        expected = {(pid, i) for pid in range(4) for i in range(200)}
        assert len(delivered) == len(set(delivered)), "duplicate delivery"
        assert set(delivered) == expected, "lost messages"
        assert q.stats.published == len(expected)
        assert q.stats.acked == len(expected)
        assert q.stats.dropped == 0
        assert q.unacked_count == 0

    def test_backpressure_engages_and_releases(self):
        # a size-1 queue with a slow consumer forces the producer onto
        # _not_full; every message still arrives exactly once
        q, delivered = run_stress(
            "block", producers=2, consumers=1, per_producer=25, max_length=1
        )
        assert sorted(delivered) == sorted(
            (pid, i) for pid in range(2) for i in range(25)
        )
        assert q.stats.blocked > 0, "expected the producers to hit backpressure"


class TestRaisePolicy:
    def test_publisher_retry_conserves_messages(self):
        q, delivered = run_stress("raise", retry_on_full=True)
        expected = {(pid, i) for pid in range(4) for i in range(200)}
        assert len(delivered) == len(set(delivered))
        assert set(delivered) == expected
        assert q.stats.dropped == 0


class TestDropOldestPolicy:
    def test_conservation_with_shedding(self):
        q, delivered = run_stress("drop-oldest", max_length=4)
        published = 4 * 200
        assert q.stats.published == published
        assert len(delivered) == len(set(delivered)), "duplicate delivery"
        # every message is either delivered (and acked) or shed — never both
        assert len(delivered) + q.stats.dropped == published
        assert len(q) == 0


class TestRandomPolicyMix:
    def test_seeded_policy_sweep(self):
        rng = random.Random(0x5717)
        for round_no in range(4):
            policy = rng.choice(["block", "raise", "drop-oldest"])
            max_length = rng.choice([2, 5, 16])
            q, delivered = run_stress(
                policy,
                producers=rng.randint(2, 4),
                consumers=rng.randint(1, 3),
                per_producer=60,
                max_length=max_length,
                retry_on_full=(policy == "raise"),
            )
            assert len(delivered) == len(set(delivered)), (
                f"round {round_no} ({policy}, max={max_length}): duplicates"
            )
            if policy == "drop-oldest":
                assert len(delivered) + q.stats.dropped == q.stats.published
            else:
                assert len(delivered) == q.stats.published


class TestShutdownWithInFlight:
    def test_requeue_unacked_wakes_waiting_consumer(self):
        # a consumer dies holding unacked messages; requeue_unacked must
        # notify_all so a parked consumer picks the redeliveries up
        q = MessageQueue("shutdown", max_length=16, overflow="block")
        for i in range(3):
            q.put("k", i)
        first = [q.get(timeout=1) for _ in range(3)]
        assert all(m is not None for m in first)
        got = []

        def waiter():
            for _ in range(3):
                msg = q.get(timeout=5)
                assert msg is not None
                got.append((msg.body, msg.redelivered))
                q.ack(msg.delivery_tag)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)  # let the waiter park on _not_empty
        assert q.requeue_unacked() == 3
        t.join(timeout=10)
        assert not t.is_alive()
        assert sorted(b for b, _ in got) == [0, 1, 2]
        assert all(redelivered for _, redelivered in got)
        assert q.unacked_count == 0


@pytest.mark.parametrize("policy", ["block", "raise", "drop-oldest"])
def test_empty_queue_timeout_returns_none(policy):
    q = MessageQueue("empty", max_length=2, overflow=policy)
    t0 = time.monotonic()
    assert q.get(timeout=0.05) is None
    assert time.monotonic() - t0 < 5
