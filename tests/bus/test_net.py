"""The TCP transport: JSONL framing, failure modes, reconnects.

Everything here runs against a real :class:`BrokerServer` on a loopback
socket — no mocks — because the failure modes under test (mid-frame
disconnects, partial JSON, server restarts) live in the transport
itself.  The invariant throughout: transport failures may delay or
redeliver, but :func:`load_from_bus`'s resequencer + ack-after-commit
machinery on top must still archive exactly-once.
"""
import json
import socket
import threading
import time

import pytest

from repro.bus.broker import Broker, ConnectionLostError
from repro.bus.net import (
    PROTOCOL_VERSION,
    BrokerServer,
    BusProtocolError,
    RemoteConsumer,
    RemotePublisher,
    connect_publisher,
    decode_body,
    encode_body,
    parse_bus_url,
)
from repro.netlogger.events import NLEvent
from repro.util.retry import RetryPolicy

from tests.helpers import diamond_events


@pytest.fixture
def server():
    srv = BrokerServer(Broker()).start()
    yield srv
    srv.stop()


def raw_conn(server):
    """A bare framed socket speaking the protocol by hand."""
    sock = socket.create_connection(server.address, timeout=5.0)
    return sock


def send_line(sock, frame):
    sock.sendall(json.dumps(frame).encode() + b"\n")


def recv_line(sock):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(4096)
        if not chunk:
            return None
        buf += chunk
    return json.loads(buf)


class TestUrlAndCodec:
    def test_parse_bus_url(self):
        assert parse_bus_url("tcp://127.0.0.1:5672") == ("127.0.0.1", 5672)
        assert parse_bus_url("tcp://host:1/") == ("host", 1)

    @pytest.mark.parametrize(
        "bad", ["http://x:1", "tcp://nohost", "tcp://:5672", "127.0.0.1:1"]
    )
    def test_parse_bus_url_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_bus_url(bad)

    def test_body_codec_roundtrip(self):
        event = diamond_events()[0]
        # events ride as BP text and come back as the BP string — the
        # consumer parses once, the relay never does
        encoded = encode_body(event)
        assert set(encoded) == {"bp"}
        assert NLEvent.from_bp(decode_body(encoded)) == event
        assert decode_body(encode_body("plain")) == "plain"
        assert decode_body(encode_body({"k": [1, None]})) == {"k": [1, None]}

    def test_unknown_body_tag_raises(self):
        with pytest.raises(BusProtocolError):
            decode_body({"pickle": "no"})


class TestHandshake:
    def test_hello_accepts_current_version(self, server):
        sock = raw_conn(server)
        send_line(sock, {"op": "hello", "v": PROTOCOL_VERSION, "id": 1})
        reply = recv_line(sock)
        assert reply["ok"] and reply["v"] == PROTOCOL_VERSION
        sock.close()

    def test_hello_rejects_other_version_and_closes(self, server):
        sock = raw_conn(server)
        send_line(sock, {"op": "hello", "v": 99, "id": 1})
        reply = recv_line(sock)
        assert reply["ok"] is False
        assert recv_line(sock) is None  # server hung up
        sock.close()

    def test_unknown_op_reports_but_keeps_connection(self, server):
        sock = raw_conn(server)
        send_line(sock, {"op": "hello", "v": PROTOCOL_VERSION, "id": 1})
        recv_line(sock)
        send_line(sock, {"op": "frobnicate", "id": 2})
        reply = recv_line(sock)
        assert reply["ok"] is False and "unknown op" in reply["error"]
        send_line(sock, {"op": "flush", "id": 3})
        assert recv_line(sock)["ok"]  # still serving
        sock.close()


class TestRoundtrip:
    def test_publish_consume_over_tcp(self, server):
        events = diamond_events()
        publisher = RemotePublisher(server.url, publisher_id="p1")
        consumer = RemoteConsumer(server.url, queue_name="q", durable=True)
        publisher.publish_all(events)
        publisher.flush()
        got = []
        while True:
            event = consumer.get(timeout=0.5)
            if event is None and len(got) == len(events):
                break
            if event is not None:
                got.append(event)
        assert got == events
        publisher.close()
        consumer.cancel()

    def test_flush_is_a_barrier(self, server):
        publisher = RemotePublisher(server.url)
        publisher.publish_all(diamond_events())
        published = publisher.flush()
        # after the barrier the broker must have every frame we sent
        assert published == len(diamond_events())
        assert server.publishes == len(diamond_events())
        publisher.close()

    def test_consumer_group_over_tcp(self, server):
        events = diamond_events()
        c1 = RemoteConsumer(server.url, group="loaders", partitions=4)
        c2 = RemoteConsumer(server.url, group="loaders", partitions=4)
        assert c1.queue_name != c2.queue_name
        publisher = RemotePublisher(server.url)
        publisher.publish_all(events)
        publisher.flush()
        got = []
        deadline = time.monotonic() + 10
        while len(got) < len(events) and time.monotonic() < deadline:
            for c in (c1, c2):
                event = c.get(timeout=0.05)
                if event is not None:
                    got.append(event)
        # one diamond workflow = one root key = one partition = one member
        assert sorted(e.event for e in got) == sorted(e.event for e in events)
        publisher.close()
        c1.cancel()
        c2.cancel()

    def test_server_side_blocking_get(self, server):
        consumer = RemoteConsumer(server.url, queue_name="q", durable=True)
        publisher = RemotePublisher(server.url)
        event = diamond_events()[0]

        def later():
            time.sleep(0.3)
            publisher.publish(event)
            publisher.flush()

        t = threading.Thread(target=later)
        start = time.monotonic()
        t.start()
        got = consumer.get(timeout=5.0)
        waited = time.monotonic() - start
        t.join()
        assert got == event
        assert 0.2 < waited < 4.0  # parked, not polled; well under the cap
        publisher.close()
        consumer.cancel()

    def test_depth_and_cancel(self, server):
        consumer = RemoteConsumer(server.url, queue_name="q", durable=True)
        publisher = RemotePublisher(server.url)
        publisher.publish_all(diamond_events())
        publisher.flush()
        assert consumer.depth() == len(diamond_events())
        consumer.cancel()
        assert not consumer.connected
        with pytest.raises(ConnectionLostError):
            consumer.get_message(timeout=0.0)
        publisher.close()

    def test_connect_publisher_picks_transport(self, server):
        assert isinstance(connect_publisher(server.url), RemotePublisher)
        from repro.bus.client import EventPublisher

        assert isinstance(connect_publisher(Broker()), EventPublisher)


class TestFailureModes:
    def test_partial_json_line_drops_connection(self, server):
        sock = raw_conn(server)
        send_line(sock, {"op": "hello", "v": PROTOCOL_VERSION, "id": 1})
        recv_line(sock)
        sock.sendall(b'{"op": "publish", "key": not json\n')
        reply = recv_line(sock)
        assert reply["ok"] is False and reply["error"] == "bad-frame"
        assert recv_line(sock) is None  # connection torn down
        sock.close()
        deadline = time.monotonic() + 2
        while server.protocol_errors == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.protocol_errors == 1

    def test_mid_frame_disconnect_requeues_inflight(self, server):
        """A consumer that dies mid-frame (no clean close, half a frame
        on the wire) must have its unacked delivery requeued for the
        next subscriber — the transport equivalent of a loader crash."""
        sock = raw_conn(server)
        send_line(sock, {"op": "hello", "v": PROTOCOL_VERSION, "id": 1})
        recv_line(sock)
        send_line(
            sock,
            {"op": "subscribe", "queue": "q", "durable": True,
             "pattern": "stampede.#", "id": 2},
        )
        assert recv_line(sock)["ok"]
        pub = RemotePublisher(server.url)
        pub.publish_all(diamond_events()[:3])
        pub.flush()
        send_line(sock, {"op": "get", "sub": 1, "timeout": 2.0, "id": 3})
        reply = recv_line(sock)
        assert "msg" in reply  # delivered, unacked
        first_key = reply["msg"]["key"]
        # die mid-frame: half an ack, no newline, then RST-ish close
        sock.sendall(b'{"op": "ack", "sub": 1, ')
        sock.close()
        # the server notices EOF/bad frame and cancels the subscription,
        # requeueing the in-flight message for the next consumer
        consumer = RemoteConsumer(server.url, queue_name="q", durable=True)
        deadline = time.monotonic() + 5
        got = []
        while len(got) < 3 and time.monotonic() < deadline:
            msg = consumer.get_message(timeout=0.3)
            if msg is not None:
                got.append(msg)
        keys = [m.routing_key for m in got]
        assert first_key in keys and len(got) == 3
        redelivered = [m for m in got if m.routing_key == first_key]
        assert any(m.redelivered for m in redelivered)
        consumer.cancel()

    def test_publisher_survives_server_restart(self, server):
        publisher = RemotePublisher(
            server.url, retry=RetryPolicy(max_retries=8, base_delay=0.05)
        )
        events = diamond_events()
        publisher.publish(events[0])
        publisher.flush()
        host, port = server.address
        server.stop()
        with pytest.raises(ConnectionLostError):
            # the dead socket surfaces on publish or on the flush barrier
            publisher.publish(events[1])
            publisher.flush()
        # same port, fresh broker: the durable queue story is the
        # loader's (resume/spill); here we only claim transport recovery
        server2 = BrokerServer(Broker(), host=host, port=port).start()
        try:
            publisher.publish(events[1])
            publisher.flush()
            assert server2.publishes == 1
            assert publisher.reconnects >= 1
        finally:
            publisher.close()
            server2.stop()

    def test_consumer_reconnect_after_server_restart(self, server):
        consumer = RemoteConsumer(server.url, queue_name="q", durable=True)
        host, port = server.address
        server.stop()
        with pytest.raises(ConnectionLostError):
            consumer.get_message(timeout=0.5)
        assert not consumer.connected
        server2 = BrokerServer(Broker(), host=host, port=port).start()
        try:
            consumer.reconnect()
            assert consumer.connected
            assert consumer.queue_name == "q"  # same subscription identity
            publisher = RemotePublisher(server2.url)
            publisher.publish(diamond_events()[0])
            publisher.flush()
            assert consumer.get(timeout=2.0) == diamond_events()[0]
            publisher.close()
        finally:
            consumer.cancel()
            server2.stop()

    def test_group_member_identity_survives_reconnect(self, server):
        consumer = RemoteConsumer(server.url, group="loaders", partitions=2)
        member = consumer.queue_name.rsplit(".", 1)[-1]
        consumer.reconnect()
        # the server re-issued the same member identity, so partition
        # publisher stamps (and therefore resequencer dedupe) carry over
        assert consumer.queue_name.rsplit(".", 1)[-1] == member
        consumer.cancel()
