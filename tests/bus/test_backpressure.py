"""Bounded-queue backpressure: the 'block' overflow policy."""
import threading
import time

import pytest

from repro.bus.broker import Broker
from repro.bus.queues import MessageQueue, QueueFullError


class TestBlockPolicy:
    def test_put_blocks_until_consumer_frees_capacity(self):
        q = MessageQueue("q", max_length=2, overflow="block")
        q.put("k", 1)
        q.put("k", 2)
        done = threading.Event()

        def publish_third():
            q.put("k", 3)  # must block until a get() frees a slot
            done.set()

        t = threading.Thread(target=publish_third, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()  # publisher is being held back
        msg = q.get()
        q.ack(msg.delivery_tag)
        assert done.is_set() or done.wait(1.0)
        assert q.stats.blocked == 1
        assert q.stats.dropped == 0  # backpressure sheds nothing

    def test_put_timeout_raises(self):
        q = MessageQueue("q", max_length=1, overflow="block")
        q.put("k", 1)
        start = time.monotonic()
        with pytest.raises(QueueFullError):
            q.put("k", 2, timeout=0.05)
        assert time.monotonic() - start >= 0.05

    def test_drain_releases_blocked_publisher(self):
        q = MessageQueue("q", max_length=1, overflow="block")
        q.put("k", 1)
        done = threading.Event()

        def publish():
            q.put("k", 2)
            done.set()

        threading.Thread(target=publish, daemon=True).start()
        time.sleep(0.02)
        q.drain()
        assert done.wait(1.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue("q", overflow="explode")

    def test_broker_passes_policy_through(self):
        broker = Broker()
        consumer = broker.subscribe(
            "stampede.#", queue_name="bounded", max_length=1, overflow="raise"
        )
        broker.publish("stampede.x", "one")
        with pytest.raises(QueueFullError):
            broker.publish("stampede.x", "two")
        assert consumer.depth() == 1


class TestGetDeadline:
    def test_finite_timeout_is_a_deadline(self):
        q = MessageQueue("q")
        start = time.monotonic()
        assert q.get(timeout=0.08) is None
        assert time.monotonic() - start >= 0.08

    def test_zero_timeout_polls(self):
        q = MessageQueue("q")
        start = time.monotonic()
        assert q.get(timeout=0.0) is None
        assert time.monotonic() - start < 0.05
