import threading

import pytest

from repro.bus.broker import Broker
from repro.bus.client import BusSink, EventConsumer, EventPublisher, FileSink, MultiSink
from repro.bus.queues import MessageQueue, QueueFullError
from repro.netlogger.events import NLEvent


class TestMessageQueue:
    def test_fifo(self):
        q = MessageQueue("q")
        q.put("k1", "a")
        q.put("k2", "b")
        assert q.get().body == "a"
        assert q.get().body == "b"
        assert q.get() is None

    def test_ack_cycle(self):
        q = MessageQueue("q")
        q.put("k", "a")
        msg = q.get()
        assert q.unacked_count == 1
        q.ack(msg.delivery_tag)
        assert q.unacked_count == 0
        assert q.stats.acked == 1

    def test_nack_requeues_at_head(self):
        q = MessageQueue("q")
        q.put("k", "a")
        q.put("k", "b")
        msg = q.get()
        q.nack(msg.delivery_tag)
        redelivered = q.get()
        assert redelivered.body == "a"
        assert redelivered.redelivered

    def test_nack_drop(self):
        q = MessageQueue("q")
        q.put("k", "a")
        msg = q.get()
        q.nack(msg.delivery_tag, requeue=False)
        assert q.get() is None
        assert q.stats.dropped == 1

    def test_unknown_tag(self):
        q = MessageQueue("q")
        with pytest.raises(ValueError):
            q.ack(999)

    def test_requeue_unacked(self):
        q = MessageQueue("q")
        for body in "abc":
            q.put("k", body)
        q.get(), q.get()
        assert q.requeue_unacked() == 2
        assert [q.get().body for _ in range(3)] == ["a", "b", "c"]

    def test_bounded_drop_oldest(self):
        q = MessageQueue("q", max_length=2)
        for body in "abc":
            q.put("k", body)
        assert len(q) == 2
        assert q.get().body == "b"
        assert q.stats.dropped == 1

    def test_bounded_raise(self):
        q = MessageQueue("q", max_length=1, overflow="raise")
        q.put("k", "a")
        with pytest.raises(QueueFullError):
            q.put("k", "b")

    def test_drain(self):
        q = MessageQueue("q")
        for body in "abc":
            q.put("k", body)
        drained = q.drain()
        assert [m.body for m in drained] == ["a", "b", "c"]
        assert len(q) == 0


class TestBroker:
    def test_publish_routes_by_pattern(self):
        broker = Broker()
        broker.declare_queue("jobs")
        broker.declare_queue("all")
        broker.bind_queue("jobs", "stampede.job_inst.#")
        broker.bind_queue("all", "stampede.#")
        n = broker.publish("stampede.job_inst.main.start", "payload")
        assert n == 2
        assert broker.publish("stampede.xwf.start", "p2") == 1
        assert len(broker.queue("jobs")) == 1
        assert len(broker.queue("all")) == 2

    def test_no_duplicate_delivery_per_queue(self):
        broker = Broker()
        broker.declare_queue("q")
        broker.bind_queue("q", "stampede.#")
        broker.bind_queue("q", "#")
        assert broker.publish("stampede.x", "p") == 1

    def test_unroutable_counted(self):
        broker = Broker()
        assert broker.publish("no.subscribers", "p") == 0
        assert broker.declare_exchange().unroutable == 1

    def test_redeclare_queue_idempotent(self):
        broker = Broker()
        q1 = broker.declare_queue("q", durable=True)
        q2 = broker.declare_queue("q", durable=True)
        assert q1 is q2

    def test_redeclare_queue_mismatch(self):
        broker = Broker()
        broker.declare_queue("q", durable=True)
        with pytest.raises(ValueError):
            broker.declare_queue("q", durable=False)

    def test_bind_unknown_queue(self):
        with pytest.raises(KeyError):
            Broker().bind_queue("nope", "#")

    def test_anonymous_queue_names(self):
        broker = Broker()
        a = broker.declare_queue()
        b = broker.declare_queue()
        assert a.name != b.name

    def test_subscribe_and_consume(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        broker.publish("stampede.a", 1)
        broker.publish("stampede.b", 2)
        assert [m.body for m in consumer] == [1, 2]

    def test_consumer_cancel_auto_delete(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        name = consumer.queue_name
        consumer.cancel()
        assert name not in broker.queue_names()
        # messages published after cancel go nowhere
        assert broker.publish("stampede.a", 1) == 0

    def test_delete_queue_removes_bindings(self):
        broker = Broker()
        broker.declare_queue("q")
        broker.bind_queue("q", "stampede.#")
        broker.delete_queue("q")
        assert broker.publish("stampede.a", 1) == 0

    def test_threaded_producer_consumer(self):
        broker = Broker()
        consumer = broker.subscribe("k.#", auto_delete=False)
        total = 500
        received = []

        def produce():
            for i in range(total):
                broker.publish("k.msg", i)

        t = threading.Thread(target=produce)
        t.start()
        while len(received) < total:
            msg = consumer.get(timeout=1.0)
            if msg is not None:
                received.append(msg.body)
        t.join()
        assert received == list(range(total))


class TestEventClient:
    def test_publish_consume_events(self):
        broker = Broker()
        consumer = EventConsumer(broker, "stampede.xwf.#")
        publisher = EventPublisher(broker)
        ev = NLEvent("stampede.xwf.start", 1.0, {"restart_count": 0})
        publisher.publish(ev)
        publisher.publish(NLEvent("stampede.job.info", 2.0))  # filtered out
        got = consumer.drain()
        assert got == [ev]
        assert publisher.events_published == 2

    def test_bus_sink(self):
        broker = Broker()
        consumer = EventConsumer(broker, "#")
        sink = BusSink(broker)
        sink.emit(NLEvent("a.b", 0.0))
        assert sink.events_published == 1
        assert len(consumer.drain()) == 1

    def test_file_sink_and_multi(self, tmp_path):
        broker = Broker()
        consumer = EventConsumer(broker, "#")
        fsink = FileSink(tmp_path / "log.bp")
        multi = MultiSink(fsink, BusSink(broker))
        multi.emit(NLEvent("a.b", 0.0))
        multi.close()
        assert fsink.events_written == 1
        assert len(consumer.drain()) == 1
        assert (tmp_path / "log.bp").read_text().startswith("ts=")

    def test_consumer_iterates_nl_events(self):
        broker = Broker()
        consumer = EventConsumer(broker, "#")
        broker.publish("x.y", NLEvent("x.y", 1.0))
        events = list(consumer)
        assert isinstance(events[0], NLEvent)

    def test_consumer_parses_bp_strings(self):
        broker = Broker()
        consumer = EventConsumer(broker, "#")
        broker.publish("x.y", "ts=1 event=x.y a=1")
        (event,) = consumer.drain()
        assert event.attrs["a"] == "1"
