"""Broker dead-lettering: unroutable publishes land in ``stampede.dlq``.

Regression suite for the failure mode where a typo'd routing key (or a
publish racing queue setup) silently vanished: the message must now be
counted, annotated, and *recoverable* — an operator can read it back from
the DLQ and republish it down the correct path.
"""
from repro.bus.broker import DEAD_LETTER_QUEUE, Broker
from repro.bus.client import EventConsumer, EventPublisher
from repro.netlogger.events import NLEvent


class TestUnroutableDeadLettering:
    def test_typoed_routing_key_is_recoverable_from_the_dlq(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.job.#", queue_name="loader")

        # the typo: 'stamped.' routes nowhere
        delivered = broker.publish("stamped.job.mainjob.start", {"job": "j1"})
        assert delivered == 0
        assert broker.declare_exchange().unroutable == 1
        assert consumer.get() is None  # nothing leaked to the real queue

        dead = broker.queue(DEAD_LETTER_QUEUE).get()
        assert dead is not None
        assert dead.body == {"job": "j1"}
        assert dead.routing_key == "stamped.job.mainjob.start"
        assert dead.header("x-death") == "unroutable"
        assert dead.header("x-exchange") == "stampede"

        # recovery: replay under the intended key and the consumer sees it
        broker.publish("stampede.job.mainjob.start", dead.body)
        replayed = consumer.get()
        assert replayed is not None
        assert replayed.body == {"job": "j1"}

    def test_publisher_headers_survive_dead_lettering(self):
        broker = Broker()
        broker.publish("nowhere", "x", headers={"x-seq": 7})
        dead = broker.queue(DEAD_LETTER_QUEUE).get()
        assert dead.header("x-seq") == 7
        assert dead.header("x-death") == "unroutable"

    def test_stamped_event_publish_dead_letters_whole_event(self):
        broker = Broker()
        EventConsumer(broker, pattern="stampede.job.#")
        publisher = EventPublisher(broker)
        event = NLEvent("stampede.xwf.start", 1.0, {"xwf.id": "w1"})
        # no binding matches xwf events -> dead-lettered with its stamp
        publisher.publish(event)
        dead = broker.queue(DEAD_LETTER_QUEUE).get()
        assert dead.body is event
        assert dead.header("x-publisher") == publisher.publisher_id

    def test_dlq_queue_is_lazy_and_durable(self):
        broker = Broker()
        assert DEAD_LETTER_QUEUE not in broker.queue_names()
        broker.publish("void", "x")
        assert DEAD_LETTER_QUEUE in broker.queue_names()
        assert broker.queue(DEAD_LETTER_QUEUE).durable

    def test_disabled_dlq_restores_drop_and_count(self):
        broker = Broker(dead_letter_queue=None)
        assert broker.publish("void", "x") == 0
        assert broker.declare_exchange().unroutable == 1
        assert DEAD_LETTER_QUEUE not in broker.queue_names()

    def test_routable_publish_never_touches_the_dlq(self):
        broker = Broker()
        broker.subscribe("stampede.#", queue_name="q")
        assert broker.publish("stampede.job.start", "x") == 1
        assert DEAD_LETTER_QUEUE not in broker.queue_names()
