"""repro.bus.reliable: publisher sequence stamps + the Resequencer.

The resequencer is the consumer half of the exactly-once story: it must
restore publish order, swallow duplicate deliveries, and never lose a
message — even across forced releases and connection resets.
"""
import pytest

from repro.bus.queues import Message
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ, Resequencer


def msg(seq, publisher="pub", body=None):
    return Message(
        "stampede.test",
        body if body is not None else f"{publisher}:{seq}",
        delivery_tag=seq,
        headers={HEADER_PUBLISHER: publisher, HEADER_SEQ: seq},
    )


def bodies(messages):
    return [m.body for m in messages]


class TestInOrder:
    def test_in_order_stream_passes_straight_through(self):
        reseq = Resequencer()
        for seq in range(1, 6):
            released, dups = reseq.offer(msg(seq))
            assert bodies(released) == [f"pub:{seq}"]
            assert dups == []
        assert reseq.duplicates == 0
        assert reseq.pending_count == 0
        assert reseq.expected("pub") == 6

    def test_unstamped_messages_pass_through_untouched(self):
        reseq = Resequencer()
        plain = Message("stampede.test", "raw", delivery_tag=1)
        released, dups = reseq.offer(plain)
        assert released == [plain] and dups == []
        # and they don't disturb stamped streams
        released, _ = reseq.offer(msg(1))
        assert bodies(released) == ["pub:1"]

    def test_partial_stamp_is_treated_as_unstamped(self):
        reseq = Resequencer()
        half = Message("k", "x", headers={HEADER_SEQ: 5})
        released, dups = reseq.offer(half)
        assert released == [half] and dups == []


class TestReordering:
    def test_early_arrival_held_until_gap_fills(self):
        reseq = Resequencer()
        released, _ = reseq.offer(msg(2))
        assert released == []
        assert reseq.pending_count == 1
        assert reseq.held_back == 1
        released, _ = reseq.offer(msg(1))
        assert bodies(released) == ["pub:1", "pub:2"]
        assert reseq.pending_count == 0

    def test_deep_shuffle_comes_out_in_publish_order(self):
        reseq = Resequencer()
        out = []
        for seq in [3, 1, 5, 2, 4]:
            released, _ = reseq.offer(msg(seq))
            out.extend(bodies(released))
        assert out == [f"pub:{i}" for i in range(1, 6)]
        assert reseq.gaps_skipped == 0

    def test_publishers_are_independent(self):
        reseq = Resequencer()
        released, _ = reseq.offer(msg(2, publisher="a"))
        assert released == []
        released, _ = reseq.offer(msg(1, publisher="b"))
        assert bodies(released) == ["b:1"]  # b's stream is not gated by a's gap


class TestDuplicates:
    def test_already_released_sequence_is_a_duplicate(self):
        reseq = Resequencer()
        reseq.offer(msg(1))
        released, dups = reseq.offer(msg(1))
        assert released == []
        assert bodies(dups) == ["pub:1"]
        assert reseq.duplicates == 1

    def test_duplicate_of_a_held_message_is_flagged(self):
        reseq = Resequencer()
        reseq.offer(msg(2))
        released, dups = reseq.offer(msg(2))
        assert released == [] and len(dups) == 1
        # the original held copy is still released when the gap fills
        released, _ = reseq.offer(msg(1))
        assert bodies(released) == ["pub:1", "pub:2"]


class TestForcedRelease:
    def test_overflowing_max_held_force_releases_in_order(self):
        reseq = Resequencer(max_held=3)
        for seq in [5, 3, 4]:
            released, _ = reseq.offer(msg(seq))
            assert released == []
        released, _ = reseq.offer(msg(6))  # 4th held message bursts the bound
        assert bodies(released) == ["pub:3", "pub:4", "pub:5", "pub:6"]
        assert reseq.gaps_skipped == 2  # seq 1 and 2 adopted as lost
        # the stream continues cleanly after the skip
        released, _ = reseq.offer(msg(7))
        assert bodies(released) == ["pub:7"]

    def test_release_pending_drains_end_of_stream_gaps(self):
        reseq = Resequencer()
        reseq.offer(msg(1))
        reseq.offer(msg(3))
        reseq.offer(msg(5))
        released = reseq.release_pending()
        assert bodies(released) == ["pub:3", "pub:5"]
        assert reseq.gaps_skipped == 2  # 2 and 4 never arrived
        assert reseq.pending_count == 0

    def test_release_pending_on_empty_is_a_noop(self):
        assert Resequencer().release_pending() == []

    def test_max_held_must_be_positive(self):
        with pytest.raises(ValueError):
            Resequencer(max_held=0)


class TestReset:
    def test_reset_held_drops_buffer_but_keeps_positions(self):
        reseq = Resequencer()
        reseq.offer(msg(1))
        reseq.offer(msg(3))
        assert reseq.reset_held() == 1
        assert reseq.pending_count == 0
        # seq 1 was already released: its redelivery must dedupe
        released, dups = reseq.offer(msg(1))
        assert released == [] and len(dups) == 1
        # seq 2 and 3 redeliver in order and flow normally
        released, _ = reseq.offer(msg(2))
        assert bodies(released) == ["pub:2"]
        released, _ = reseq.offer(msg(3))
        assert bodies(released) == ["pub:3"]
        assert reseq.gaps_skipped == 0


class TestSeed:
    def test_seed_unblocks_mid_stream_inheritance(self):
        """A consumer that inherits a stream at a known committed
        position (consumer-group partition handover) must not hold
        everything forever waiting for sequences a previous owner
        already released."""
        reseq = Resequencer()
        reseq.seed("pub", 4)
        released, _ = reseq.offer(msg(4))
        assert bodies(released) == ["pub:4"]
        # everything below the seed is a duplicate of released history
        released, dups = reseq.offer(msg(2))
        assert released == [] and len(dups) == 1

    def test_seed_backwards_refused(self):
        reseq = Resequencer()
        reseq.offer(msg(1))
        reseq.offer(msg(2))
        with pytest.raises(ValueError):
            reseq.seed("pub", 1)
        reseq.seed("pub", 3)  # forwards (no-op here) is fine

    def test_seed_validates_floor(self):
        with pytest.raises(ValueError):
            Resequencer().seed("pub", 0)

    def test_seed_discards_stale_held(self):
        reseq = Resequencer()
        reseq.offer(msg(2))  # held, waiting for 1
        reseq.seed("pub", 3)
        assert reseq.pending_count == 0  # seq 2 is below the new floor
        released, _ = reseq.offer(msg(3))
        assert bodies(released) == ["pub:3"]


class TestLateArrivals:
    def test_force_skipped_gap_arriving_late_counts_as_loss_not_dup(self):
        """A gap adopted as lost by a force-release was never delivered;
        if it shows up afterwards that is data loss surfacing late, and
        reporting it as a harmless duplicate would hide it."""
        reseq = Resequencer(max_held=2)
        reseq.offer(msg(2))
        reseq.offer(msg(3))
        reseq.offer(msg(4))  # overflows max_held: force-release, skip 1
        assert reseq.gaps_skipped == 1
        released, dups = reseq.offer(msg(1))  # the skipped gap arrives
        assert released == [] and len(dups) == 1  # still not re-released
        assert reseq.late_arrivals == 1
        assert reseq.duplicates == 0  # NOT misfiled as a dedupe
        # a real duplicate is still a duplicate
        released, dups = reseq.offer(msg(2))
        assert reseq.duplicates == 1 and reseq.late_arrivals == 1

    def test_drain_skips_count_late_arrivals_too(self):
        reseq = Resequencer()
        reseq.offer(msg(3))
        reseq.release_pending()  # adopts 1 and 2 as lost
        reseq.offer(msg(1))
        reseq.offer(msg(2))
        assert reseq.late_arrivals == 2
        assert reseq.duplicates == 0


class TestExactlyOnceProperty:
    """Seeded-random chaos: any mix of drops (with eventual redelivery),
    duplicates, and bounded reordering must release every sequence
    exactly once, in order."""

    def _chaos_stream(self, rng, n):
        stream = []
        for seq in range(1, n + 1):
            stream.append(seq)
            if rng.random() < 0.2:  # duplicate delivery
                stream.append(seq)
        # bounded reorder: random exchanges within a window
        for _ in range(n):
            i = rng.randrange(len(stream) - 1)
            j = min(i + rng.randrange(1, 4), len(stream) - 1)
            stream[i], stream[j] = stream[j], stream[i]
        # drops with redelivery: drop some first occurrences, append them
        # at the end (the broker redelivers unacked messages eventually)
        for seq in list(range(1, n + 1)):
            if rng.random() < 0.1:
                stream.remove(seq)
                stream.append(seq)
        return stream

    @pytest.mark.parametrize("seed", [7, 42, 1234, 99991])
    def test_random_chaos_releases_each_seq_once_in_order(self, seed):
        import random

        rng = random.Random(seed)
        n = 200
        reseq = Resequencer(max_held=n)  # window large enough: no skips
        released_seqs = []
        dup_count = 0
        for seq in self._chaos_stream(rng, n):
            released, dups = reseq.offer(msg(seq))
            released_seqs.extend(m.header(HEADER_SEQ) for m in released)
            dup_count += len(dups)
        released_seqs.extend(
            m.header(HEADER_SEQ) for m in reseq.release_pending()
        )
        assert released_seqs == list(range(1, n + 1))
        assert dup_count == reseq.duplicates
        assert reseq.gaps_skipped == 0 and reseq.late_arrivals == 0
