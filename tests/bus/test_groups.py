"""Consumer groups: partitioned fan-out with exactly-once commits.

The group layer is what lets N loader processes share one event stream
without double-archiving: the router partitions by root workflow id and
stamps gapless per-partition sequences, members rewrite those stamps
into per-ownership publisher identities the downstream Resequencer can
dedupe, and acks advance broker-side commit floors that survive member
churn.  The acceptance test at the bottom is the distributed-ingest
claim in miniature: two in-process members must archive, between them,
row for row what a single loader would.
"""
import threading

import pytest

from repro.archive.merge import canonical_dump, diff_canonical, merge_canonical
from repro.bus.broker import Broker, ConnectionLostError
from repro.bus.client import EventPublisher
from repro.bus.groups import (
    HEADER_PART_KEY,
    HEADER_PARTITION,
    HEADER_PART_SEQ,
    GroupConsumer,
    PartitionKeyer,
    partition_for,
)
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ
from repro.loader import load_events, load_from_bus, make_loader

from tests.helpers import diamond_events


class TestPartitionFor:
    def test_stable_across_calls_and_instances(self):
        # crc32, not hash(): the same key must land on the same partition
        # in every process, or a restarted loader re-shards the stream
        assert partition_for("wf-1", 8) == partition_for("wf-1", 8)
        assert 0 <= partition_for("anything", 8) < 8

    def test_spreads_keys(self):
        parts = {partition_for(f"wf-{i}", 8) for i in range(64)}
        assert len(parts) > 1


class TestPartitionKeyer:
    def test_learns_root_from_plan_event(self):
        keyer = PartitionKeyer()
        keyer.key_for({"xwf.id": "sub-1", "root.xwf.id": "root-A"}, default="d")
        # later events of sub-1 carry no root stamp; the keyer remembers
        assert keyer.key_for({"xwf.id": "sub-1"}, default="d") == "root-A"

    def test_falls_back_to_own_id_then_default(self):
        keyer = PartitionKeyer()
        assert keyer.key_for({"xwf.id": "lonely"}, default="d") == "lonely"
        assert keyer.key_for({}, default="d") == "d"

    def test_lru_bound(self):
        keyer = PartitionKeyer(max_entries=2)
        keyer.learn("a", "ra")
        keyer.learn("b", "rb")
        keyer.learn("c", "rc")
        assert keyer.key_for({"xwf.id": "a"}, default="d") == "a"  # evicted
        assert keyer.key_for({"xwf.id": "c"}, default="d") == "rc"


class TestRouting:
    def test_workflow_stays_on_one_partition(self):
        broker = Broker()
        group = broker.declare_group("loaders", partitions=8)
        EventPublisher(broker).publish_all(diamond_events())
        depths = [len(group.queue(p)) for p in range(8)]
        assert sum(depths) == len(diamond_events())
        assert sum(1 for d in depths if d) == 1  # single root workflow

    def test_part_seq_is_gapless_per_partition(self):
        broker = Broker()
        group = broker.declare_group("loaders", partitions=4)
        pub = EventPublisher(broker)
        for xwf in ("wf-a", "wf-b", "wf-c"):
            pub.publish_all(diamond_events(xwf=xwf))
        for p in range(4):
            seqs = []
            while True:
                msg = group.queue(p).get(timeout=0.0)
                if msg is None:
                    break
                seqs.append(msg.header(HEADER_PART_SEQ))
            assert seqs == list(range(1, len(seqs) + 1))
            assert group.published_seq(p) == len(seqs)

    def test_part_key_header_overrides_derivation(self):
        broker = Broker()
        group = broker.declare_group("loaders", partitions=8)
        want = partition_for("pinned", 8)
        broker.publish("stampede.x", "raw", headers={HEADER_PART_KEY: "pinned"})
        msg = group.queue(want).get(timeout=0.0)
        assert msg is not None and msg.header(HEADER_PARTITION) == want

    def test_publish_side_duplicate_absorbed_by_hwm(self):
        broker = Broker()
        group = broker.declare_group("loaders", partitions=4)
        hdrs = {HEADER_PUBLISHER: "pub", HEADER_SEQ: 1}
        broker.publish("stampede.x", "once", headers=dict(hdrs))
        broker.publish("stampede.x", "again", headers=dict(hdrs))
        assert group.publish_duplicates == 1
        assert group.routed == 1
        assert sum(len(group.queue(p)) for p in range(4)) == 1

    def test_group_and_queue_both_receive(self):
        broker = Broker()
        broker.declare_queue("plain", durable=True)
        broker.bind_queue("plain", "stampede.#")
        broker.declare_group("loaders", partitions=2)
        delivered = broker.publish("stampede.x", "body")
        assert delivered == 2  # the bound queue plus the group partition

    def test_redeclare_same_params_idempotent_mismatch_raises(self):
        broker = Broker()
        g1 = broker.declare_group("loaders", partitions=4)
        assert broker.declare_group("loaders", partitions=4) is g1
        with pytest.raises(ValueError):
            broker.declare_group("loaders", partitions=8)


class TestRebalance:
    def test_single_member_owns_everything(self):
        broker = Broker()
        m = broker.join_group("loaders", partitions=8)
        assert m.partitions() == list(range(8))

    def test_second_member_takes_half_sticky(self):
        broker = Broker()
        a = broker.join_group("loaders", member_id="a", partitions=8)
        before = set(a.partitions())
        b = broker.join_group("loaders", member_id="b", partitions=8)
        group = broker.group("loaders")
        assign = group.assignment()
        assert sorted(len(v) for v in assign.values()) == [4, 4]
        # sticky: a kept a subset of what it had, nothing swapped around
        assert set(a.partitions()) < before
        assert set(a.partitions()) | set(b.partitions()) == before

    def test_leave_returns_partitions_to_survivor(self):
        broker = Broker()
        a = broker.join_group("loaders", member_id="a", partitions=8)
        b = broker.join_group("loaders", member_id="b", partitions=8)
        b.leave()
        assert a.partitions() == list(range(8))
        assert broker.group("loaders").members() == ["a"]

    def test_rebalance_requeues_unacked_of_revoked_partitions(self):
        broker = Broker()
        a = broker.join_group("loaders", member_id="a", partitions=2)
        EventPublisher(broker).publish_all(diamond_events())
        msg = a.get(timeout=0.5)
        assert msg is not None  # in flight, unacked
        part = int(msg.header(HEADER_PARTITION))
        broker.join_group("loaders", member_id="b", partitions=2)
        owner = {
            p: m for m, ps in broker.group("loaders").assignment().items()
            for p in ps
        }
        if owner[part] == "b":
            # the in-flight delivery was revoked: acking is refused and
            # the message went back on the partition queue for b
            with pytest.raises(ValueError):
                a.ack(msg.delivery_tag)
        else:
            a.ack(msg.delivery_tag)  # still owned: ack flows through


class TestCommitFloors:
    def test_ack_advances_floor(self):
        broker = Broker()
        m = broker.join_group("loaders", partitions=1)
        EventPublisher(broker).publish_all(diamond_events())
        group = broker.group("loaders")
        seen = 0
        while True:
            msg = m.get(timeout=0.2)
            if msg is None:
                break
            seen += 1
            m.ack(msg.delivery_tag)
        assert seen == len(diamond_events())
        assert group.committed(0) == group.published_seq(0)

    def test_delivery_at_or_below_floor_is_dropped(self):
        broker = Broker()
        m = broker.join_group("loaders", partitions=1)
        EventPublisher(broker).publish_all(diamond_events())
        group = broker.group("loaders")
        while True:
            msg = m.get(timeout=0.2)
            if msg is None:
                break
            m.ack(msg.delivery_tag)
        floor = group.committed(0)
        assert floor == group.published_seq(0) >= 1
        # a redelivery of a committed message (e.g. after a handover)
        # must be settled silently, not delivered twice
        group.queue(0).put(
            "stampede.x",
            "stale",
            headers={HEADER_PARTITION: 0, HEADER_PART_SEQ: floor},
        )
        assert m.get(timeout=0.5) is None
        assert m.duplicates_dropped == 1


class TestPublisherIdentity:
    def _drain_some(self, member, n):
        out = []
        for _ in range(n):
            msg = member.get(timeout=0.5)
            assert msg is not None
            out.append(msg)
        return out

    def test_stamps_are_rebased_per_ownership(self):
        broker = Broker()
        m = broker.join_group("loaders", member_id="a", partitions=1)
        EventPublisher(broker).publish_all(diamond_events())
        first, second = self._drain_some(m, 2)
        assert first.header(HEADER_PUBLISHER) == "loaders/p0@g1"
        assert first.header(HEADER_SEQ) == 1
        assert second.header(HEADER_SEQ) == 2

    def test_same_member_rejoin_keeps_identity(self):
        """A reconnect must not mint a new publisher stream: the member's
        surviving resequencer state is exactly what dedupes the
        committed-but-redelivered window."""
        broker = Broker()
        m = broker.join_group("loaders", member_id="a", partitions=1)
        EventPublisher(broker).publish_all(diamond_events())
        msgs = self._drain_some(m, 3)
        m.ack(msgs[0].delivery_tag)  # floor = 1; 2 and 3 stay in flight
        stamp = msgs[1].header(HEADER_PUBLISHER)
        m.disconnect()
        with pytest.raises(ConnectionLostError):
            m.get(timeout=0.0)
        m2 = broker.join_group("loaders", member_id="a", partitions=1)
        redelivered = m2.get(timeout=0.5)
        # same publisher identity AND a sequence inside the already-
        # delivered window: a resequencer that released seqs 2 and 3
        # recognizes the redelivery as a duplicate instead of a new stream
        assert redelivered.header(HEADER_PUBLISHER) == stamp
        assert redelivered.header(HEADER_SEQ) in (2, 3)

    def test_new_owner_gets_new_generation_rebased_at_floor(self):
        broker = Broker()
        a = broker.join_group("loaders", member_id="a", partitions=1)
        EventPublisher(broker).publish_all(diamond_events())
        msgs = self._drain_some(a, 2)
        for msg in msgs:
            a.ack(msg.delivery_tag)
        a.leave()
        b = broker.join_group("loaders", member_id="b", partitions=1)
        msg = b.get(timeout=0.5)
        # generation bumped (a held g1), sequence restarts at 1 relative
        # to the committed floor — b's fresh resequencer needs no seed
        assert msg.header(HEADER_PUBLISHER) == "loaders/p0@g2"
        assert msg.header(HEADER_SEQ) == 1


class TestGroupConsumer:
    def test_reconnect_keeps_member_id(self):
        broker = Broker()
        consumer = GroupConsumer(broker, "loaders", partitions=2)
        member_id = consumer.member.member_id
        consumer.member.disconnect()
        assert not consumer.connected
        consumer.reconnect()
        assert consumer.connected
        assert consumer.member.member_id == member_id
        assert consumer.reconnects == 1
        consumer.cancel()

    def test_drain_yields_events(self):
        broker = Broker()
        consumer = GroupConsumer(broker, "loaders", partitions=2)
        EventPublisher(broker).publish_all(diamond_events())
        events = consumer.drain()
        assert len(events) == len(diamond_events())
        group = broker.group("loaders")
        assert all(
            group.committed(p) == group.published_seq(p) for p in range(2)
        )


class TestTwoMemberIngestIdentity:
    """The distributed-ingest acceptance claim, in-process.

    Three workflows interleaved onto one group; two concurrent
    ``load_from_bus`` members split them by root workflow id.  The
    canonical merge of both archives must be row-identical to a single
    sequential loader over the same stream — any double-commit, lost
    event, or cross-member leak shows up as a diff.
    """

    WFS = ("wf-aaaa", "wf-bbbb", "wf-cccc")

    def _events(self):
        streams = [diamond_events(xwf=x) for x in self.WFS]
        out = []
        for batch in zip(*streams):  # interleave the three workflows
            out.extend(batch)
        return out

    def test_merged_archives_match_sequential_baseline(self):
        events = self._events()

        baseline = load_events(events, loader=make_loader(batch_size=10))
        want = canonical_dump(baseline.archive)

        broker = Broker()
        broker.declare_group("loaders", partitions=4)
        loaders = [make_loader(batch_size=7) for _ in range(2)]
        done = threading.Event()

        def run(i):
            load_from_bus(
                broker,
                group="loaders",
                member_id=f"m{i}",
                partitions=4,
                loader=loaders[i],
                poll_timeout=0.05,
                until=lambda _ld: done.is_set(),
            )

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        EventPublisher(broker).publish_all(events)
        group = broker.group("loaders")
        for _ in range(400):
            if all(
                group.committed(p) == group.published_seq(p)
                for p in range(4)
            ):
                break
            done.wait(0.05)
        done.set()
        for t in threads:
            t.join(timeout=15)
            assert not t.is_alive()

        # every partition fully committed: nothing lost, nothing stuck
        assert all(
            group.committed(p) == group.published_seq(p) for p in range(4)
        )
        merged = merge_canonical(
            canonical_dump(loaders[0].archive),
            canonical_dump(loaders[1].archive),
        )
        assert diff_canonical(want, merged) == []
        # both members actually archived something (3 roots over 2 members)
        assert all(
            ld.stats.events_processed > 0 for ld in loaders
        )
