"""Timeout semantics of every ``get`` in the bus API.

One convention, everywhere: ``timeout=0`` polls and returns
immediately, a positive timeout is a bounded block honored as a
deadline, ``timeout=None`` blocks until a message arrives, and the
*default* is :data:`~repro.bus.broker.DEFAULT_POLL_TIMEOUT` — a short
bounded wait.  The default used to be ``None`` on some paths, which
turned "drain whatever is there" call sites into indefinite hangs the
moment a stream went quiet; these tests pin the contract.
"""
import threading
import time

from repro.bus.broker import DEFAULT_POLL_TIMEOUT, Broker
from repro.bus.client import EventConsumer, EventPublisher
from repro.bus.groups import GroupConsumer
from repro.faults import ChaosBroker, FaultPlan

from tests.helpers import diamond_events


def elapsed(fn):
    start = time.monotonic()
    out = fn()
    return out, time.monotonic() - start


class TestDefaultIsBoundedPoll:
    def test_default_constant_is_short(self):
        assert 0 < DEFAULT_POLL_TIMEOUT <= 0.1

    def test_empty_get_returns_none_quickly_on_every_consumer(self):
        broker = Broker()
        chaos = ChaosBroker(FaultPlan.from_dict({"seed": 1}))
        consumers = [
            broker.subscribe("stampede.#"),
            EventConsumer(broker),
            GroupConsumer(broker, "g", partitions=2),
            chaos.subscribe("stampede.#"),
        ]
        for consumer in consumers:
            out, took = elapsed(lambda c=consumer: c.get())
            assert out is None
            # bounded: strictly more than a poll would allow to prove it
            # blocked at all is NOT required; what matters is it returned
            # well before anything resembling "forever"
            assert took < 10 * DEFAULT_POLL_TIMEOUT + 0.5

    def test_zero_polls_immediately(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        out, took = elapsed(lambda: consumer.get(timeout=0.0))
        assert out is None and took < 0.05

    def test_positive_timeout_is_a_deadline(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        out, took = elapsed(lambda: consumer.get(timeout=0.3))
        assert out is None
        assert 0.25 <= took < 2.0  # waited the window, not forever

    def test_none_blocks_until_delivery(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        publisher = EventPublisher(broker)

        def later():
            time.sleep(0.2)
            publisher.publish(diamond_events()[0])

        t = threading.Thread(target=later)
        t.start()
        out, took = elapsed(lambda: consumer.get(timeout=None))
        t.join()
        assert out is not None
        assert took >= 0.15  # actually parked for the publish

    def test_group_member_honors_deadline_across_partitions(self):
        broker = Broker()
        member = broker.join_group("g", partitions=8)
        out, took = elapsed(lambda: member.get(timeout=0.3))
        assert out is None
        # the sliced multi-queue wait must still respect the total
        # deadline instead of paying the slice once per partition
        assert 0.25 <= took < 2.0
