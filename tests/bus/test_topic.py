import pytest

from repro.bus.topic import topic_matches, validate_pattern


class TestTopicMatches:
    @pytest.mark.parametrize(
        "pattern,key,expected",
        [
            # exact
            ("stampede.xwf.start", "stampede.xwf.start", True),
            ("stampede.xwf.start", "stampede.xwf.end", False),
            # single-word wildcard
            ("stampede.*.start", "stampede.xwf.start", True),
            ("stampede.*.start", "stampede.job_inst.main.start", False),
            ("*", "stampede", True),
            ("*", "stampede.xwf", False),
            # multi-word wildcard
            ("#", "anything.at.all", True),
            ("#", "", True),
            ("stampede.#", "stampede.xwf.start", True),
            ("stampede.#", "stampede", True),  # '#' matches zero words
            ("stampede.#", "other.xwf.start", False),
            ("stampede.job_inst.#", "stampede.job_inst.main.start", True),
            ("stampede.job_inst.#", "stampede.job.info", False),
            # the paper's examples: "stampede.job" prefix vs mainjob subset
            ("stampede.job.#", "stampede.job.info", True),
            ("stampede.job.#", "stampede.job_inst.main.start", False),
            # '#' in the middle
            ("a.#.z", "a.z", True),
            ("a.#.z", "a.b.c.z", True),
            ("a.#.z", "a.b.c", False),
            # combined
            ("a.*.#", "a.b", True),
            ("a.*.#", "a", False),
            ("#.end", "stampede.inv.end", True),
            ("#.end", "end", True),
        ],
    )
    def test_matching(self, pattern, key, expected):
        assert topic_matches(pattern, key) is expected

    def test_word_boundary_not_prefix(self):
        # 'stampede.job' must not match 'stampede.job_inst...' keys
        assert not topic_matches("stampede.job.#", "stampede.job_inst.main.start")


class TestValidatePattern:
    def test_valid(self):
        for p in ("a.b.c", "#", "*", "a.*.#", "stampede.#"):
            validate_pattern(p)

    def test_empty(self):
        with pytest.raises(ValueError):
            validate_pattern("")

    def test_empty_word(self):
        with pytest.raises(ValueError):
            validate_pattern("a..b")

    def test_embedded_wildcard(self):
        with pytest.raises(ValueError):
            validate_pattern("stampede.job*")
        with pytest.raises(ValueError):
            validate_pattern("a.b#")
