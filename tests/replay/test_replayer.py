"""Recorder tap + replayer: record→replay must be lossless end-to-end."""
import io

from repro.archive.merge import canonical_dump, diff_canonical
from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.bus.groups import HEADER_PART_KEY
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ
from repro.loader import load_events, load_from_bus
from repro.obs.spans import HEADER_PUB_TS, HEADER_TRACE
from repro.replay.recorder import BusRecorder
from repro.replay.replayer import Replayer, replay
from repro.replay.trace import TraceRecord, read_trace

from tests.helpers import XWF, diamond_events


def record_diamond():
    """Publish the diamond stream on a tapped broker; return the records."""
    broker = Broker()
    broker.declare_queue("sink")  # so publishes route somewhere
    broker.bind_queue("sink", "#")
    buf = io.StringIO()
    with BusRecorder(broker, buf) as recorder:
        publisher = EventPublisher(broker, publisher_id="orig")
        for event in diamond_events():
            publisher.publish(event)
        assert recorder.records == len(diamond_events())
    buf.seek(0)
    return list(read_trace(buf))


class TestBusRecorder:
    def test_captures_keys_bodies_and_headers(self):
        records = record_diamond()
        events = diamond_events()
        assert [r.routing_key for r in records] == [e.event for e in events]
        assert [r.as_event().to_bp() for r in records] == [e.to_bp() for e in events]
        # publisher stamps arrive intact: identity, gapless seq, clocks
        assert all(r.headers[HEADER_PUBLISHER] == "orig" for r in records)
        assert [r.headers[HEADER_SEQ] for r in records] == list(
            range(1, len(records) + 1)
        )
        assert all(HEADER_PUB_TS in r.headers for r in records)

    def test_timeline_is_relative_and_monotonic(self):
        records = record_diamond()
        assert records[0].t == 0.0
        times = [r.t for r in records]
        assert times == sorted(times)

    def test_stop_detaches_the_tap(self):
        broker = Broker()
        buf = io.StringIO()
        recorder = BusRecorder(broker, buf).start()
        broker.publish("stampede.x", "a")
        recorder.stop()
        broker.publish("stampede.x", "b")
        assert recorder.records == 1


class TestReplayer:
    def test_restamps_fresh_identity(self):
        records = record_diamond()
        broker = Broker()
        broker.declare_queue("q")
        broker.bind_queue("q", "#")
        replayer = Replayer(broker, publisher_id="replay-1")
        replayer.run(records)
        queue = broker.queue("q")
        seqs = []
        while True:
            msg = queue.get(timeout=0)
            if msg is None:
                break
            assert msg.headers[HEADER_PUBLISHER] == "replay-1"  # not "orig"
            assert msg.headers[HEADER_TRACE] != records[0].headers.get(HEADER_TRACE)
            assert msg.headers[HEADER_PART_KEY] == XWF
            seqs.append(msg.headers[HEADER_SEQ])
            queue.ack(msg.delivery_tag)
        assert seqs == list(range(1, len(records) + 1))  # fresh gapless 1..N

    def test_marks_fire_once_at_fractions(self):
        records = [TraceRecord(0.0, "stampede.x", "e", {}) for _ in range(10)]
        broker = Broker()
        fired = []
        stats = replay(
            records,
            broker,
            marks=[(0.5, lambda n: fired.append(("half", n))),
                   (1.0, lambda n: fired.append(("end", n)))],
        )
        assert fired == [("half", 5), ("end", 10)]
        assert stats.marks_fired == [0.5, 1.0]
        assert stats.records == 10

    def test_marks_past_stream_end_still_fire(self):
        records = [TraceRecord(0.0, "stampede.x", "e", {}) for _ in range(3)]
        fired = []
        replay(records, Broker(), marks=[(0.99, lambda n: fired.append(n))])
        assert fired == [3]

    def test_record_replay_roundtrip_is_lossless(self):
        """The acceptance check: x1 replay archives exactly the original."""
        baseline_loader = load_events(diamond_events())
        baseline = canonical_dump(baseline_loader.archive)
        baseline_loader.archive.close()

        records = record_diamond()
        broker = Broker()
        broker.declare_queue("ingest", durable=True)
        broker.bind_queue("ingest", "stampede.#")
        replay(records, broker)
        loader = load_from_bus(
            broker,
            queue_name="ingest",
            durable=True,
            until=lambda _ld: len(broker.queue("ingest")) == 0,
            poll_timeout=0.01,
        )
        diff = diff_canonical(baseline, canonical_dump(loader.archive))
        loader.archive.close()
        assert diff == []
