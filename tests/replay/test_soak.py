"""The soak driver: storm + chaos + kill/resume, and its gates."""
import pytest

from repro.archive.merge import canonical_dump, diff_canonical
from repro.archive.store import StampedeArchive
from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.faults.plan import FaultPlan
from repro.loader import load_events, load_from_bus
from repro.loader.checkpoint import CheckpointManager
from repro.loader.stampede_loader import StampedeLoader
from repro.replay.shape import ConstantRate
from repro.replay.soak import run_soak, storm_stream
from repro.replay.trace import repeat_trace, trace_from_events

from tests.helpers import diamond_events

CHAOS = {
    "seed": 4321,
    "bus": {"drop": 0.08, "duplicate": 0.08, "reorder": 0.08, "reorder_depth": 4},
}


def small_storm(copies=40):
    return repeat_trace(trace_from_events(diamond_events()), copies, salt="soak-test")


class TestRunSoak:
    def test_chaos_kill_resume_storm_passes_all_gates(self, tmp_path):
        storm = small_storm()
        report = run_soak(
            storm,
            str(tmp_path),
            plan=FaultPlan.from_dict(CHAOS),
            shape=ConstantRate(20_000),
            batch_size=50,
            queue_max=500,
            min_throughput=10.0,
        )
        assert report.killed and report.resumed
        assert report.faults["total_injected"] > 0  # chaos actually armed
        assert report.row_diff == []
        assert report.dlq_events == 0 and report.broker_dlq_depth == 0
        assert report.stranded_messages == 0
        assert report.events == len(storm)
        assert report.passed, [g.to_dict() for g in report.gates if not g.ok]

    def test_clean_run_without_kill(self, tmp_path):
        report = run_soak(
            small_storm(copies=10),
            str(tmp_path),
            plan=None,
            kill=False,
            batch_size=50,
            min_throughput=10.0,
        )
        assert not report.killed and not report.resumed
        assert report.faults == {}
        assert "kill_resume" not in {g.name for g in report.gates}
        assert report.passed

    def test_trace_factory_streams_and_counts(self, tmp_path):
        base = trace_from_events(diamond_events())
        report = run_soak(
            lambda: storm_stream(base, 5, salt="factory"),
            str(tmp_path),
            kill=False,
            batch_size=50,
            min_throughput=10.0,
        )
        assert report.events == 5 * len(base)
        assert report.row_diff == []
        assert report.passed

    def test_failed_gate_fails_the_report(self, tmp_path):
        report = run_soak(
            small_storm(copies=5),
            str(tmp_path),
            kill=False,
            batch_size=50,
            min_throughput=1e12,  # unreachable on purpose
        )
        assert not report.passed
        failed = {g.name for g in report.gates if not g.ok}
        assert failed == {"throughput_ev_s"}
        assert report.to_dict()["passed"] is False

    def test_report_serializes(self, tmp_path):
        report = run_soak(
            small_storm(copies=3),
            str(tmp_path),
            kill=False,
            batch_size=50,
            min_throughput=1.0,
        )
        data = report.to_dict()
        assert data["row_identical"] is True
        assert {g["name"] for g in data["gates"]} >= {"row_diff", "dlq_leakage"}
        assert isinstance(report.to_json(), str)


class TestResequencerFloorCheckpoint:
    """The loader change the soak leans on: per-publisher sequence floors
    survive a kill, so the resumed resequencer never treats the tail of
    the stream as a giant gap (and never discards chaos-delayed
    redeliveries as stale)."""

    def test_floor_is_checkpointed_and_restored(self, tmp_path):
        events = diamond_events()
        broker = Broker()
        broker.declare_queue("q", durable=True)
        broker.bind_queue("q", "stampede.#")
        publisher = EventPublisher(broker, publisher_id="pub-A")
        for event in events:
            publisher.publish(event)

        db = f"sqlite:///{tmp_path}/resume.db"
        archive = StampedeArchive.open(db)
        loader = StampedeLoader(
            archive, batch_size=5, checkpoint=CheckpointManager(archive, "q")
        )
        original, seen = loader.process, []

        def dying(event):
            if len(seen) >= 12:
                raise RuntimeError("killed mid-stream")
            seen.append(event)
            original(event)

        loader.process = dying
        with pytest.raises(RuntimeError):
            load_from_bus(
                broker,
                queue_name="q",
                durable=True,
                loader=loader,
                until=lambda _ld: len(broker.queue("q")) == 0,
                poll_timeout=0.01,
            )
        archive.close()

        archive2 = StampedeArchive.open(db)
        loader2 = StampedeLoader(
            archive2, batch_size=5, checkpoint=CheckpointManager(archive2, "q")
        )
        loader2.resume()
        # the committed prefix's sequences are behind us: floor > 1
        assert loader2.resumed_reseq.get("pub-A", 1) > 1

    def test_resumed_load_is_lossless(self, tmp_path):
        events = diamond_events()
        baseline_loader = load_events(events)
        baseline = canonical_dump(baseline_loader.archive)
        baseline_loader.archive.close()

        broker = Broker()
        broker.declare_queue("q", durable=True)
        broker.bind_queue("q", "stampede.#")
        publisher = EventPublisher(broker, publisher_id="pub-A")
        for event in events:
            publisher.publish(event)

        db = f"sqlite:///{tmp_path}/resume.db"
        archive = StampedeArchive.open(db)
        loader = StampedeLoader(
            archive, batch_size=5, checkpoint=CheckpointManager(archive, "q")
        )
        original, seen = loader.process, []

        def dying(event):
            if len(seen) >= 12:
                raise RuntimeError("killed mid-stream")
            seen.append(event)
            original(event)

        loader.process = dying
        with pytest.raises(RuntimeError):
            load_from_bus(
                broker,
                queue_name="q",
                durable=True,
                loader=loader,
                until=lambda _ld: len(broker.queue("q")) == 0,
                poll_timeout=0.01,
            )
        archive.close()

        archive2 = StampedeArchive.open(db)
        loader2 = StampedeLoader(
            archive2, batch_size=5, checkpoint=CheckpointManager(archive2, "q")
        )
        load_from_bus(
            broker,
            queue_name="q",
            durable=True,
            loader=loader2,
            resume=True,
            until=lambda _ld: len(broker.queue("q")) == 0,
            poll_timeout=0.01,
        )
        diff = diff_canonical(baseline, canonical_dump(archive2))
        archive2.close()
        assert diff == []
