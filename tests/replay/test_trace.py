"""The JSONL trace format: roundtrip, identity remapping, composition."""
import io

import pytest

from repro.replay.trace import (
    TRACE_VERSION,
    TraceError,
    TraceRecord,
    compose_traces,
    read_trace,
    remap_workflow_ids,
    repeat_trace,
    trace_from_events,
    trace_meta,
    write_trace,
)

from tests.helpers import XWF, diamond_events


def diamond_trace(compress: float = 0.0):
    return trace_from_events(diamond_events(), compress=compress)


class TestRoundTrip:
    def test_write_read_identity(self, tmp_path):
        records = diamond_trace()
        path = str(tmp_path / "trace.jsonl")
        assert write_trace(path, records) == len(records)
        back = list(read_trace(path))
        assert [(r.t, r.routing_key, r.body, r.headers) for r in back] == [
            (r.t, r.routing_key, r.body, r.headers) for r in records
        ]

    def test_meta_line_first_and_preserved(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, diamond_trace(), meta={"source": "test", "n": 3})
        meta = trace_meta(path)
        assert meta["stampede_trace"] == TRACE_VERSION
        assert meta["source"] == "test"
        assert meta["n"] == 3

    def test_headers_survive(self):
        buf = io.StringIO()
        record = TraceRecord(
            0.5,
            "stampede.job.mainjob.start",
            diamond_events()[0].to_bp(),
            {"x-publisher": "p1", "x-seq": 7, "x-part-key": XWF},
        )
        write_trace(buf, [record])
        buf.seek(0)
        (back,) = list(read_trace(buf))
        assert back.headers == {"x-publisher": "p1", "x-seq": 7, "x-part-key": XWF}
        assert back.t == 0.5

    def test_bodies_parse_back_to_events(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, diamond_trace())
        events = [r.as_event() for r in read_trace(path)]
        assert [e.to_bp() for e in events] == [
            e.to_bp() for e in diamond_events()
        ]

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text('{"something": "else"}\n', encoding="utf-8")
        with pytest.raises(TraceError):
            trace_meta(str(path))
        with pytest.raises(TraceError):
            list(read_trace(str(path)))

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TraceError):
            trace_meta(str(path))


class TestTraceFromEvents:
    def test_compress_zero_packs_at_origin(self):
        records = diamond_trace()
        assert all(r.t == 0.0 for r in records)

    def test_compress_scales_and_never_regresses(self):
        records = diamond_trace(compress=0.01)
        assert records[0].t == 0.0
        times = [r.t for r in records]
        assert times == sorted(times)
        assert times[-1] > 0.0

    def test_preserves_emission_order(self):
        records = diamond_trace(compress=0.01)
        assert [r.as_event().to_bp() for r in records] == [
            e.to_bp() for e in diamond_events()
        ]


class TestRemap:
    def test_total_and_consistent(self):
        remapped = remap_workflow_ids(diamond_trace(), "salt-a")
        ids = {r.as_event().attrs.get("xwf.id") for r in remapped}
        assert ids == {next(iter(ids))}  # still one workflow
        assert XWF not in ids

    def test_deterministic_per_salt(self):
        a1 = remap_workflow_ids(diamond_trace(), "salt-a")
        a2 = remap_workflow_ids(diamond_trace(), "salt-a")
        b = remap_workflow_ids(diamond_trace(), "salt-b")
        assert [r.body for r in a1] == [r.body for r in a2]
        assert [r.body for r in a1] != [r.body for r in b]

    def test_rewrites_uuid_headers(self):
        record = TraceRecord(
            0.0,
            "stampede.xwf.start",
            diamond_events()[0].to_bp(),
            {"x-part-key": XWF, "x-publisher": "p1"},
        )
        (out,) = remap_workflow_ids([record], "salt")
        assert out.headers["x-part-key"] != XWF
        assert out.headers["x-publisher"] == "p1"  # non-uuid headers untouched


class TestCompose:
    def test_interleaves_by_time(self):
        a = [TraceRecord(t, "k.a", "e", {}) for t in (0.0, 1.0, 2.0)]
        b = [TraceRecord(t, "k.b", "e", {}) for t in (0.5, 1.5)]
        merged = compose_traces(a, b, remap=False)
        assert [r.routing_key for r in merged] == ["k.a", "k.b", "k.a", "k.b", "k.a"]

    def test_remap_keeps_inputs_distinct(self):
        merged = compose_traces(diamond_trace(), diamond_trace())
        ids = {r.as_event().attrs.get("xwf.id") for r in merged}
        assert len(ids) == 2  # two copies, two distinct workflow trees

    def test_repeat_multiplies_identities(self):
        storm = repeat_trace(diamond_trace(), times=3)
        ids = {r.as_event().attrs.get("xwf.id") for r in storm}
        assert len(ids) == 3
        assert len(storm) == 3 * len(diamond_trace())

    def test_repeat_stagger_shifts_timelines(self):
        storm = repeat_trace(diamond_trace(compress=0.01), times=2, stagger=10.0)
        times = [r.t for r in storm]
        assert times == sorted(times)
        assert max(times) >= 10.0

    def test_repeat_rejects_zero(self):
        with pytest.raises(ValueError):
            repeat_trace(diamond_trace(), times=0)
