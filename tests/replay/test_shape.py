"""Pacing schedules and the drift-free pacer."""
import time

import pytest

from repro.replay.shape import (
    BurstTrain,
    ConstantRate,
    Diurnal,
    Pacer,
    TraceTiming,
    parse_shape,
)


class TestPacer:
    def test_wait_until_hits_absolute_deadline(self):
        pacer = Pacer()
        pacer.wait_until(0.05)
        assert pacer.elapsed() >= 0.05

    def test_past_deadlines_do_not_sleep(self):
        pacer = Pacer()
        start = time.monotonic()
        for _ in range(100):
            pacer.wait_until(0.0)
        assert time.monotonic() - start < 0.05

    def test_behind_measures_lag(self):
        pacer = Pacer()
        time.sleep(0.02)
        assert pacer.behind(0.0) >= 0.02
        assert pacer.behind(100.0) < 0.0  # early, not behind


class TestShapes:
    def test_trace_timing_scales_recorded_time(self):
        assert TraceTiming(1.0).offset(5, 3.0) == 3.0
        assert TraceTiming(2.0).offset(5, 3.0) == 1.5  # x2 speed halves waits

    def test_trace_timing_zero_is_flat_out(self):
        shape = TraceTiming(0.0)
        assert shape.offset(999, 123.0) == 0.0

    def test_constant_rate(self):
        shape = ConstantRate(10.0)
        assert shape.offset(0, 99.0) == 0.0
        assert shape.offset(5, 99.0) == pytest.approx(0.5)

    def test_burst_train_monotonic_and_faster_in_bursts(self):
        shape = BurstTrain(base_rate=10.0, burst_rate=100.0, period=1.0,
                           burst_fraction=0.5)
        offsets = [shape.offset(i, 0.0) for i in range(200)]
        assert offsets == sorted(offsets)
        # mean rate is between base and burst: 200 events take less time
        # than pure base rate, more than pure burst rate
        assert 200 / 100.0 < offsets[-1] < 200 / 10.0

    def test_burst_train_restarts_cleanly(self):
        shape = BurstTrain(base_rate=10.0, burst_rate=100.0)
        first = [shape.offset(i, 0.0) for i in range(10)]
        again = [shape.offset(i, 0.0) for i in range(10)]  # index reset
        assert again == first

    def test_diurnal_monotonic(self):
        shape = Diurnal(mean_rate=50.0, period=2.0, amplitude=0.8)
        offsets = [shape.offset(i, 0.0) for i in range(300)]
        assert offsets == sorted(offsets)

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            BurstTrain(base_rate=-1.0, burst_rate=10.0)


class TestParseShape:
    def test_trace_spec_uses_speed(self):
        shape = parse_shape("trace", speed=4.0)
        assert isinstance(shape, TraceTiming)
        assert shape.offset(0, 8.0) == 2.0

    def test_constant_spec(self):
        shape = parse_shape("constant:250")
        assert isinstance(shape, ConstantRate)
        assert shape.offset(250, 0.0) == pytest.approx(1.0)

    def test_burst_spec_with_defaults(self):
        shape = parse_shape("burst:100,1000")
        assert isinstance(shape, BurstTrain)

    def test_diurnal_spec(self):
        shape = parse_shape("diurnal:500,30,0.5")
        assert isinstance(shape, Diurnal)

    def test_empty_spec_defaults_to_trace(self):
        assert isinstance(parse_shape("", speed=1.0), TraceTiming)

    @pytest.mark.parametrize(
        "spec", ["unknown", "constant:", "constant:abc", "burst:5"]
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_shape(spec)
