"""Loader coverage for the less-travelled event types: pre-scripts, held
states, abort, image info, and tolerant-mode behaviours."""
import pytest

from repro.loader import LoaderError, load_events, make_loader
from repro.model.entities import (
    HostRow,
    JobInstanceRow,
    WorkflowRow,
)
from repro.netlogger.events import NLEvent
from repro.query import StampedeQuery
from repro.schema.stampede import Events

from tests.helpers import XWF, diamond_events


def _prefix_events():
    """The static prefix (plan + static section) plus one submit."""
    events = diamond_events()
    end_idx = next(
        i for i, e in enumerate(events) if e.event == Events.STATIC_END
    )
    return events[: end_idx + 1]


def ev(name, ts, **attrs):
    attrs.setdefault("xwf.id", XWF)
    return NLEvent(name, ts, attrs)


def ji(name, ts, job="a", seq=1, **attrs):
    return ev(name, ts, **{"job.id": job, "job_inst.id": seq}, **attrs)


class TestPreScriptEvents:
    def test_pre_script_states_recorded(self):
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.JOB_INST_PRE_START, 11.1),
            ji(Events.JOB_INST_PRE_TERM, 11.5, status=0),
            ji(Events.JOB_INST_PRE_END, 11.6, status=0, exitcode=0),
        ]
        loader = load_events(events)
        q = StampedeQuery(loader.archive)
        states = [s.state for s in q.job_states(1)]
        assert states == [
            "SUBMIT",
            "PRE_SCRIPT_STARTED",
            "PRE_SCRIPT_TERMINATED",
            "PRE_SCRIPT_SUCCESS",
        ]

    def test_pre_script_failure(self):
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.JOB_INST_PRE_END, 11.6, status=-1, exitcode=2),
        ]
        loader = load_events(events)
        q = StampedeQuery(loader.archive)
        assert q.last_job_state(1).state == "PRE_SCRIPT_FAILURE"


class TestHeldAndAbort:
    def test_held_cycle(self):
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.JOB_INST_HELD_START, 12.0, reason="user paused"),
            ji(Events.JOB_INST_HELD_END, 15.0, status=0),
        ]
        loader = load_events(events)
        states = [
            s.state
            for s in StampedeQuery(loader.archive).job_states(1)
        ]
        assert "JOB_HELD" in states and "JOB_RELEASED" in states
        assert states.index("JOB_HELD") < states.index("JOB_RELEASED")

    def test_abort_recorded(self):
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.JOB_INST_ABORT_INFO, 12.0, reason="stop button"),
            ev(Events.XWF_END, 13.0, restart_count=0, status=-1),
        ]
        loader = load_events(events)
        q = StampedeQuery(loader.archive)
        assert q.last_job_state(1).state == "JOB_ABORTED"
        assert q.workflow_status(1) == -1

    def test_image_info_accepted_noop(self):
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.JOB_INST_IMAGE_INFO, 12.0, size=123456),
        ]
        loader = load_events(events)
        assert loader.stats.events_by_type[Events.JOB_INST_IMAGE_INFO] == 1


class TestPostScriptFailure:
    def test_post_failure_state(self):
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.JOB_INST_POST_START, 12.0),
            ji(Events.JOB_INST_POST_END, 12.5, status=-1, exitcode=1),
        ]
        loader = load_events(events)
        q = StampedeQuery(loader.archive)
        assert q.last_job_state(1).state == "POST_SCRIPT_FAILURE"


class TestTolerantMode:
    def test_all_execution_no_static(self):
        """A stream with nothing but execution events still loads."""
        events = [
            ji(Events.JOB_INST_SUBMIT_START, 1.0),
            ji(Events.JOB_INST_MAIN_START, 2.0),
            ji(Events.JOB_INST_MAIN_END, 5.0, site="s", status=0, exitcode=0,
               **{"local.dur": 3.0}),
        ]
        loader = load_events(events, strict=False)
        assert loader.archive.count(WorkflowRow) == 1
        assert loader.archive.count(JobInstanceRow) == 1
        (inst,) = loader.archive.query(JobInstanceRow).all()
        assert inst.local_duration == 3.0

    def test_host_info_before_submit_tolerant(self):
        events = [
            ji(Events.JOB_INST_HOST_INFO, 1.0, site="s", hostname="h"),
        ]
        loader = load_events(events, strict=False)
        assert loader.archive.count(HostRow) == 1
        assert loader.archive.count(JobInstanceRow) == 1

    def test_strict_rejects_same_stream(self):
        events = [ji(Events.JOB_INST_HOST_INFO, 1.0, site="s", hostname="h")]
        with pytest.raises(LoaderError):
            load_events(events, strict=True)

    def test_subwf_map_before_child_plan_resolves_later(self):
        """MAP_SUBWF_JOB arriving before the child's wf.plan is deferred
        and applied once the child appears."""
        child = "deadbeef-0000-4111-8222-333333333333"
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.MAP_SUBWF_JOB, 12.0, **{"subwf.id": child}),
        ]
        # child plan arrives afterwards
        child_plan = NLEvent(
            Events.WF_PLAN,
            13.0,
            {
                "xwf.id": child,
                "submit.hostname": "h",
                "dag.file.name": "c.dag",
                "planner.version": "t",
                "submit_dir": "/x",
                "root.xwf.id": XWF,
                "parent.xwf.id": XWF,
            },
        )
        loader = load_events(events + [child_plan])
        q = StampedeQuery(loader.archive)
        (inst,) = q.job_instances(1)
        child_wf = q.workflow_by_uuid(child)
        assert inst.subwf_id == child_wf.wf_id
        assert child_wf.parent_wf_id == 1

    def test_subwf_map_tolerant_synthesizes_parent(self):
        """In tolerant mode a MAP_SUBWF_JOB for a never-seen parent must
        not crash: the parent is synthesized and the map stays deferred
        until (if ever) the child's plan and job instance both exist."""
        child = "deadbeef-0000-4111-8222-333333333333"
        loader = make_loader(strict=False)
        loader.process(
            ji(Events.MAP_SUBWF_JOB, 1.0, **{"subwf.id": child})
        )
        loader.flush()
        # parent placeholder exists; the map is parked, not dropped
        assert loader.archive.count(WorkflowRow) == 1
        assert loader._deferred_subwf == [(child, "a", 1, 1)]

        # the child plan alone is not enough (no job instance yet) ...
        loader.process(
            NLEvent(
                Events.WF_PLAN,
                2.0,
                {
                    "xwf.id": child,
                    "submit.hostname": "h",
                    "dag.file.name": "c.dag",
                    "planner.version": "t",
                    "submit_dir": "/x",
                    "root.xwf.id": XWF,
                    "parent.xwf.id": XWF,
                },
            )
        )
        loader.flush()
        assert loader._deferred_subwf  # still pending

        # ... until the parent's job instance appears
        loader.process(ji(Events.JOB_INST_SUBMIT_START, 3.0))
        loader.flush()
        assert loader._deferred_subwf == []
        q = StampedeQuery(loader.archive)
        (inst,) = q.job_instances(1)
        assert inst.subwf_id == q.workflow_by_uuid(child).wf_id

    def test_unresolvable_subwf_map_survives_flushes(self):
        """A map whose child never planned keeps riding along without
        being re-applied or lost across repeated flushes."""
        events = _prefix_events() + [
            ev(Events.XWF_START, 10.0, restart_count=0),
            ji(Events.JOB_INST_SUBMIT_START, 11.0),
            ji(Events.MAP_SUBWF_JOB, 12.0, **{"subwf.id": "never-planned"}),
        ]
        loader = load_events(events)
        pending = list(loader._deferred_subwf)
        assert len(pending) == 1
        loader.flush()
        loader.flush()
        assert loader._deferred_subwf == pending
        (inst,) = StampedeQuery(loader.archive).job_instances(1)
        assert inst.subwf_id is None


class TestStatsEdgeCases:
    def test_events_per_second_zero_wall_seconds(self):
        """A loader that never ran process_all (wall clock unset) reports
        a 0 rate instead of dividing by zero."""
        loader = make_loader()
        loader.process(
            ev(
                Events.WF_PLAN,
                0.0,
                **{
                    "submit.hostname": "s",
                    "dag.file.name": "d",
                    "planner.version": "1",
                    "submit_dir": "/",
                    "root.xwf.id": XWF,
                },
            )
        )
        assert loader.stats.events_processed == 1
        assert loader.stats.wall_seconds == 0.0
        assert loader.stats.events_per_second == 0.0

    def test_events_per_second_normal(self):
        loader = make_loader()
        loader.stats.events_processed = 100
        loader.stats.wall_seconds = 0.5
        assert loader.stats.events_per_second == 200.0
