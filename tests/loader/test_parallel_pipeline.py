"""The parallel ingest pipeline: ordering, error policy, end-to-end
row identity, and the insert-path caches it leans on.

The contract under test is the tentpole invariant: ``--workers N`` may
only change *how fast* events reach the archive, never *what* reaches
it.  Every worker/parse-mode combination must produce an archive
row-for-row identical (surrogate keys included) to the sequential
loader's — including under a seeded fault plan.
"""
import random

import pytest

from repro.archive.store import StampedeArchive
from repro.bus.client import EventPublisher
from repro.faults import ChaosBroker, FaultPlan
from repro.loader import (
    ParsePool,
    StampedeLoader,
    load_file,
    load_from_bus,
    make_loader,
    process_pool_available,
)
from repro.loader.nl_load import main as nl_load_main
from repro.netlogger.bp import BPParseError
from repro.netlogger.stream import write_events
from repro.orm import (
    Column,
    Integer,
    MemoryDatabase,
    SqliteDatabase,
    Table,
    Text,
)
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.triana.appender import MemoryAppender
from repro.workloads import cybershake

from tests.helpers import diamond_events
from tests.integration.test_chaos_pipeline import (
    CHAOS_SPEC,
    QUEUE,
    baseline_run,
    bind_queue,
    publish_stream,
)
from tests.loader.test_checkpoint_resume import dump_archive


def cybershake_events(n_ruptures: int = 5, seed: int = 0):
    sink = MemoryAppender()
    catalog = SiteCatalog(
        [Site("pool", slots=64, mean_queue_delay=2.0, hosts_per_site=16)]
    )
    run_pegasus_workflow(
        cybershake(n_ruptures=n_ruptures),
        sink,
        catalog=catalog,
        planner_config=PlannerConfig(cluster_size=8),
        seed=seed,
    )
    return list(sink.events)


@pytest.fixture(scope="module")
def cybershake_bp(tmp_path_factory):
    path = tmp_path_factory.mktemp("bp") / "cybershake.bp"
    events = cybershake_events()
    write_events(str(path), events)
    return path, len(events)


def _load(path, **kwargs):
    loader = StampedeLoader(StampedeArchive.open("sqlite:///:memory:"))
    load_file(str(path), loader, **kwargs)
    return loader


# ---------------------------------------------------------------------------
# ParsePool unit behavior
# ---------------------------------------------------------------------------

class TestParsePool:
    def test_pooled_results_preserve_input_order(self):
        lines = [
            (f"ts={i}.5 event=order.test n={i}", i) for i in range(2000)
        ]
        with ParsePool(workers=4, chunk_size=16) as pool:
            out = list(pool.results(lines))
        assert len(out) == 2000
        for i, (outcome, line, meta) in enumerate(out):
            assert meta == i
            assert line == lines[i][0]
            assert outcome.attrs["n"] == str(i)
        assert pool.lines_parsed == 2000
        assert pool.chunks_parsed == 125

    def test_inline_pool_matches_pooled(self):
        lines = [(f"ts={i} event=a.b x={i}", i) for i in range(500)]
        with ParsePool(workers=0) as inline, ParsePool(workers=3) as pooled:
            a = [(o.event, o.ts, o.attrs) for o, _, _ in inline.results(lines)]
            b = [(o.event, o.ts, o.attrs) for o, _, _ in pooled.results(lines)]
        assert a == b

    def test_bad_lines_surface_per_line(self):
        lines = [
            ("ts=1 event=good.one", 0),
            ("this is not bp", 1),
            ("ts=3 event=good.two", 2),
        ]
        with ParsePool(workers=2, chunk_size=1) as pool:
            out = list(pool.results(lines))
        assert out[0][0].event == "good.one"
        assert isinstance(out[1][0], Exception)
        assert out[2][0].event == "good.two"

    def test_events_error_policies(self):
        lines = [("ts=1 event=ok", 1), ("garbage", 2), ("ts=3 event=ok2", 3)]
        with ParsePool(workers=2, chunk_size=1) as pool:
            with pytest.raises(BPParseError):
                list(pool.events(iter(lines), on_error="raise"))
            good = list(pool.events(iter(lines), on_error="skip"))
            assert [meta for _, meta in good] == [1, 3]
            seen = []
            list(pool.events(iter(lines), on_error=lambda m, l, e: seen.append(m)))
            assert seen == [2]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParsePool(workers=-1)
        with pytest.raises(ValueError):
            ParsePool(mode="fiber")
        with pytest.raises(ValueError):
            ParsePool(parse_mode="sloppy")
        with pytest.raises(ValueError):
            ParsePool(chunk_size=0)


# ---------------------------------------------------------------------------
# end-to-end row identity: workers/parse-mode must not change the archive
# ---------------------------------------------------------------------------

class TestRowIdentity:
    def test_workers4_identical_to_workers1_on_cybershake(self, cybershake_bp):
        path, n_events = cybershake_bp
        sequential = _load(path, workers=1)
        parallel = _load(path, workers=4)
        assert sequential.stats.events_processed == n_events
        assert parallel.stats.events_processed == n_events
        assert dump_archive(parallel.archive) == dump_archive(sequential.archive)

    def test_workers0_and_strict_identical(self, cybershake_bp):
        path, _ = cybershake_bp
        dumps = [
            dump_archive(_load(path, workers=w, parse_mode=m).archive)
            for w, m in [(0, "fast"), (0, "strict"), (4, "strict")]
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    @pytest.mark.skipif(
        not process_pool_available(), reason="no process pool on this platform"
    )
    def test_process_mode_identical(self, cybershake_bp):
        path, _ = cybershake_bp
        thread = _load(path, workers=2, worker_mode="thread")
        process = _load(path, workers=2, worker_mode="process")
        assert dump_archive(process.archive) == dump_archive(thread.archive)

    def test_chaos_run_with_workers4_is_row_identical(self):
        baseline = dump_archive(baseline_run().archive)
        plan = FaultPlan.from_dict(CHAOS_SPEC)
        broker = ChaosBroker(plan)
        bind_queue(broker)
        publish_stream(broker, poison=True)
        loader = make_loader(batch_size=10)
        loader.archive.db = plan.wrap_database(loader.archive.db)
        load_from_bus(
            broker,
            queue_name=QUEUE,
            durable=True,
            loader=loader,
            dead_letter=True,
            workers=4,
        )
        assert plan.stats.total_injected > 0
        assert loader.stats.dlq_events == 2
        assert dump_archive(loader.archive) == baseline

    def test_bus_chaos_with_string_bodies_and_workers(self):
        """Raw BP strings on the wire (not NLEvent objects) exercise the
        pool on the bus path; the archive must still match the baseline."""
        baseline = dump_archive(baseline_run().archive)
        plan = FaultPlan.from_dict({"seed": 9, "bus": {"drop": 0.1, "duplicate": 0.1}})
        broker = ChaosBroker(plan)
        bind_queue(broker)
        publisher = EventPublisher(broker)
        for event in diamond_events():
            publisher.publish(event)
        loader = make_loader(batch_size=10)
        load_from_bus(
            broker, queue_name=QUEUE, durable=True, loader=loader, workers=2
        )
        assert dump_archive(loader.archive) == baseline


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_workers_flag(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        db = tmp_path / "out.db"
        rc = nl_load_main(
            [str(bp), "stampede_loader", f"connString=sqlite:///{db}", "-w", "4"]
        )
        assert rc == 0
        parallel = StampedeArchive.open(f"sqlite:///{db}")
        db2 = tmp_path / "seq.db"
        assert (
            nl_load_main([str(bp), "stampede_loader", f"connString=sqlite:///{db2}"])
            == 0
        )
        sequential = StampedeArchive.open(f"sqlite:///{db2}")
        assert dump_archive(parallel) == dump_archive(sequential)

    def test_parse_mode_strict_flag(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        rc = nl_load_main(
            [
                str(bp),
                "stampede_loader",
                "connString=sqlite:///:memory:",
                "--parse-mode",
                "strict",
            ]
        )
        assert rc == 0

    def test_profile_flag_writes_pstats(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        out = tmp_path / "load.pstats"
        rc = nl_load_main(
            [
                str(bp),
                "stampede_loader",
                "connString=sqlite:///:memory:",
                "--profile",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists() and out.stat().st_size > 0
        assert "profile written to" in capsys.readouterr().err

    def test_workers_with_lint_rejected(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        with pytest.raises(SystemExit):
            nl_load_main([str(bp), "--lint", "-w", "2"])

    def test_negative_workers_rejected(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(str(bp), diamond_events())
        with pytest.raises(SystemExit):
            nl_load_main([str(bp), "-w", "-1"])


# ---------------------------------------------------------------------------
# insert-path caches: max-id cache + memory pk index
# ---------------------------------------------------------------------------

def _table():
    return Table(
        "things",
        [
            Column("id", Integer(), primary_key=True),
            Column("name", Text(), nullable=False),
        ],
    )


@pytest.fixture(params=["sqlite", "memory"])
def cache_db(request):
    if request.param == "sqlite":
        database = SqliteDatabase(":memory:")
        yield database
        database.close()
    else:
        yield MemoryDatabase()


class TestInsertPathCaches:
    def test_max_value_tracks_inserts(self, cache_db):
        table = _table()
        cache_db.create_tables([table])
        assert cache_db.max_value(table, "id") is None
        cache_db.insert(table, {"id": 7, "name": "a"})
        assert cache_db.max_value(table, "id") == 7
        cache_db.insert_many(table, [{"id": 9, "name": "b"}, {"id": 3, "name": "c"}])
        # cached max must have been bumped, not stale-served
        assert cache_db.max_value(table, "id") == 9

    def test_max_cache_survives_interleaved_updates(self, cache_db):
        table = _table()
        cache_db.create_tables([table])
        cache_db.insert(table, {"id": 1, "name": "a"})
        assert cache_db.max_value(table, "id") == 1
        # rewriting the cached column must invalidate, not stale-serve
        cache_db.update(table, {"id": 5}, {"name": "a"})
        assert cache_db.max_value(table, "id") == 5

    def test_max_cache_dropped_on_rollback(self):
        database = SqliteDatabase(":memory:")
        table = _table()
        database.create_tables([table])
        database.insert(table, {"id": 1, "name": "a"})
        assert database.max_value(table, "id") == 1
        with pytest.raises(RuntimeError):
            with database.transaction():
                database.insert(table, {"id": 50, "name": "doomed"})
                raise RuntimeError("boom")
        # the rolled-back row must not linger in the cache
        assert database.max_value(table, "id") == 1
        database.close()

    def test_memory_update_by_pk_uses_index(self, cache_db):
        table = _table()
        cache_db.create_tables([table])
        rows = [{"id": i, "name": f"n{i}"} for i in range(200)]
        random.Random(3).shuffle(rows)
        cache_db.insert_many(table, rows)
        assert cache_db.update(table, {"name": "hit"}, {"id": 137}) == 1
        assert cache_db.update(table, {"name": "miss"}, {"id": 9999}) == 0
        from repro.orm import Query

        got = cache_db.select(Query(table).eq("id", 137))
        assert got[0]["name"] == "hit"

    def test_memory_pk_rewrite_degrades_safely(self):
        database = MemoryDatabase()
        table = _table()
        database.create_tables([table])
        database.insert_many(table, [{"id": i, "name": f"n{i}"} for i in range(10)])
        # move a row to a new pk — the index can no longer be trusted
        assert database.update(table, {"id": 100}, {"id": 4}) == 1
        from repro.orm import Query

        assert database.select(Query(table).eq("id", 100))[0]["name"] == "n4"
        assert database.select(Query(table).eq("id", 4)) == []
        # updates by pk still correct after degradation
        assert database.update(table, {"name": "moved"}, {"id": 100}) == 1
        assert database.select(Query(table).eq("id", 100))[0]["name"] == "moved"

    def test_memory_duplicate_pk_degrades_safely(self):
        database = MemoryDatabase()
        table = _table()
        database.create_tables([table])
        database.insert(table, {"id": 1, "name": "first"})
        database.insert(table, {"id": 1, "name": "second"})  # no constraint check
        # both rows must be visible to a pk-filtered update (scan semantics)
        assert database.update(table, {"name": "both"}, {"id": 1}) == 2
