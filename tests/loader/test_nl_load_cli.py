"""nl-load CLI flags: tolerant mode, validation, stdin, errors."""
import io

import pytest

from repro.archive import StampedeArchive
from repro.loader.nl_load import main
from repro.model.entities import InvocationRow
from repro.netlogger.stream import write_events

from tests.helpers import diamond_events


class TestNlLoadCli:
    def test_verbose_stats(self, tmp_path, capsys):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        rc = main([str(bp), "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events processed" in out
        assert "events/second" in out

    def test_stdin_input(self, tmp_path, monkeypatch, capsys):
        text = "\n".join(e.to_bp() for e in diamond_events()) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        db = tmp_path / "out.db"
        rc = main(["-", "stampede_loader", f"connString=sqlite:///{db}"])
        assert rc == 0
        archive = StampedeArchive.open(f"sqlite:///{db}")
        assert archive.count(InvocationRow) == 4

    def test_unknown_module_rejected(self, tmp_path, capsys):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        with pytest.raises(SystemExit):
            main([str(bp), "other_loader"])

    def test_tolerant_flag(self, tmp_path):
        # out-of-order stream: fails strict, loads tolerantly
        events = diamond_events()
        reordered = events[-10:] + events[:-10]
        bp = tmp_path / "weird.bp"
        write_events(bp, reordered)
        with pytest.raises(Exception):
            main([str(bp)])
        rc = main([str(bp), "--tolerant"])
        assert rc == 0

    def test_validate_flag(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        assert main([str(bp), "--validate"]) == 0

    def test_batch_size_flag(self, tmp_path, capsys):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        rc = main([str(bp), "-b", "1", "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        flushes = int(next(l for l in out.splitlines() if "flushes" in l)
                      .split(":")[1])
        assert flushes > 10  # row-at-a-time flushing
