import pytest

from repro.archive import StampedeArchive
from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.loader import (
    LoaderError,
    LoaderStats,
    StampedeLoader,
    load_events,
    load_file,
    load_from_bus,
    make_loader,
)
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.netlogger.events import NLEvent
from repro.netlogger.stream import write_events
from repro.query import StampedeQuery
from repro.schema.stampede import Events

from tests.helpers import XWF, diamond_events


class TestLoaderBasics:
    def test_loads_diamond(self):
        loader = load_events(diamond_events())
        a = loader.archive
        assert a.count(WorkflowRow) == 1
        assert a.count(TaskRow) == 4
        assert a.count(JobRow) == 4
        assert a.count(JobInstanceRow) == 4
        assert a.count(InvocationRow) == 4
        assert a.count(HostRow) == 1
        assert a.count(WorkflowStateRow) == 2

    def test_workflow_row_fields(self):
        loader = load_events(diamond_events())
        wf = loader.archive.query(WorkflowRow).first()
        assert wf.wf_uuid == XWF
        assert wf.dag_file_name == "diamond.dag"
        assert wf.submit_hostname == "submit01"
        assert wf.root_wf_id == wf.wf_id
        assert wf.parent_wf_id is None

    def test_task_job_mapping_applied(self):
        loader = load_events(diamond_events())
        tasks = loader.archive.query(TaskRow).all()
        jobs = {j.exec_job_id: j.job_id for j in loader.archive.query(JobRow).all()}
        for task in tasks:
            assert task.job_id == jobs[task.abs_task_id]

    def test_job_instance_finalized(self):
        loader = load_events(diamond_events())
        for inst in loader.archive.query(JobInstanceRow).all():
            assert inst.exitcode == 0
            assert inst.local_duration == 4.0
            assert inst.site == "local"
            assert inst.host_id is not None

    def test_jobstates_ordered(self):
        loader = load_events(diamond_events())
        states = loader.archive.query(JobStateRow).eq("job_instance_id", 1).all()
        names = [s.state for s in states]
        assert names == [
            "SUBMIT",
            "EXECUTE",
            "JOB_TERMINATED",
            "JOB_SUCCESS",
        ]

    def test_host_deduplicated(self):
        loader = load_events(diamond_events())
        assert loader.archive.count(HostRow) == 1

    def test_failure_recorded(self):
        loader = load_events(diamond_events(fail_job="c"))
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        failed = q.failed_job_instances(wf.wf_id)
        assert [j.exec_job_id for j, _ in failed] == ["c"]
        assert q.workflow_status(wf.wf_id) == -1

    def test_retries_create_instances(self):
        loader = load_events(diamond_events(retries={"b": 2}))
        insts = loader.archive.query(JobInstanceRow).all()
        assert len(insts) == 6  # 4 jobs + 2 extra attempts for b

    def test_stats(self):
        loader = load_events(diamond_events())
        stats = loader.stats
        assert stats.events_processed == len(diamond_events())
        assert stats.rows_inserted > 0
        assert stats.events_by_type[Events.INV_END] == 4

    def test_validation_mode(self):
        loader = load_events(diamond_events(), validate=True)
        assert loader.stats.validation_failures == 0


class TestLoaderStrictness:
    def test_unknown_workflow_strict(self):
        loader = make_loader()
        with pytest.raises(LoaderError):
            loader.process(
                NLEvent(Events.XWF_START, 1.0, {"xwf.id": XWF, "restart_count": 0})
            )

    def test_unknown_workflow_tolerant(self):
        loader = make_loader(strict=False)
        loader.process(
            NLEvent(Events.XWF_START, 1.0, {"xwf.id": XWF, "restart_count": 0})
        )
        loader.flush()
        assert loader.archive.count(WorkflowRow) == 1

    def test_execution_before_static_strict(self):
        events = diamond_events()
        plan = events[0]
        submit = next(e for e in events if e.event == Events.JOB_INST_SUBMIT_START)
        loader = make_loader()
        loader.process(plan)
        with pytest.raises(LoaderError):
            loader.process(submit)

    def test_execution_before_static_tolerant(self):
        events = diamond_events()
        plan = events[0]
        submit = next(e for e in events if e.event == Events.JOB_INST_SUBMIT_START)
        loader = make_loader(strict=False)
        loader.process(plan)
        loader.process(submit)
        loader.flush()
        assert loader.archive.count(JobRow) == 1  # placeholder synthesized

    def test_duplicate_task_info(self):
        loader = make_loader()
        events = diamond_events()
        task_info = next(e for e in events if e.event == Events.TASK_INFO)
        loader.process(events[0])
        loader.process(task_info)
        with pytest.raises(LoaderError):
            loader.process(task_info)

    def test_unknown_event_type(self):
        loader = make_loader()
        with pytest.raises(LoaderError):
            loader.process(NLEvent("stampede.bogus", 0.0, {"xwf.id": XWF}))
        tolerant = make_loader(strict=False)
        tolerant.process(NLEvent("stampede.bogus", 0.0, {"xwf.id": XWF}))

    def test_inv_end_unknown_task(self):
        loader = make_loader()
        events = diamond_events()
        for event in events:
            if event.event == Events.INV_END:
                bad = event.copy()
                bad.attrs["task.id"] = "ghost"
                with pytest.raises(LoaderError):
                    loader.process(bad)
                break
            loader.process(event)


class TestBatching:
    @pytest.mark.parametrize("batch_size", [1, 7, 500])
    def test_batch_sizes_equivalent(self, batch_size):
        loader = load_events(diamond_events(), batch_size=batch_size)
        assert loader.archive.count(InvocationRow) == 4
        assert loader.archive.count(JobStateRow) == 16

    def test_small_batches_flush_more(self):
        big = load_events(diamond_events(), batch_size=1000)
        small = load_events(diamond_events(), batch_size=1)
        assert small.stats.flushes > big.stats.flushes


class TestFileAndBus:
    def test_load_file(self, tmp_path):
        path = tmp_path / "run.bp"
        write_events(path, diamond_events())
        loader = load_file(path)
        assert loader.archive.count(InvocationRow) == 4

    def test_load_from_bus(self):
        broker = Broker()
        # Subscribe BEFORE publishing (queues only receive post-binding).
        loader = make_loader()
        publisher = EventPublisher(broker)
        consumer_loader_started = []

        from repro.bus.client import EventConsumer

        consumer = EventConsumer(broker, "stampede.#", queue_name="stampede")
        consumer.cancel()  # just verifying explicit naming works

        # Re-subscribe through load_from_bus's own consumer:
        # publish first into a durable queue, then drain.
        queue_consumer = broker.subscribe("stampede.#", queue_name="q1", durable=True, auto_delete=False)
        publisher.publish_all(diamond_events())
        # hand the pre-filled queue to the loader by draining it
        for msg in queue_consumer:
            loader.process(msg.body)
        loader.flush()
        assert loader.archive.count(InvocationRow) == 4

    def test_load_from_bus_api(self):
        broker = Broker()
        # establish the subscription first so published events are captured
        archive = StampedeArchive.open("sqlite:///:memory:")
        loader = StampedeLoader(archive)

        import threading

        result = {}

        def consume():
            result["loader"] = load_from_bus(
                broker,
                queue_name="stampede",
                loader=loader,
                durable=True,
                until=lambda ld: ld.archive.count(WorkflowStateRow) >= 2,
            )

        t = threading.Thread(target=consume)
        # pre-declare the queue so no events are lost before the thread binds
        broker.declare_queue("stampede", durable=True)
        broker.bind_queue("stampede", "stampede.#")
        t.start()
        EventPublisher(broker).publish_all(diamond_events())
        t.join(timeout=10)
        assert not t.is_alive()
        assert archive.count(InvocationRow) == 4

    def test_nl_load_cli(self, tmp_path):
        from repro.loader.nl_load import main

        bp = tmp_path / "run.bp"
        db = tmp_path / "run.db"
        write_events(bp, diamond_events())
        rc = main([str(bp), "stampede_loader", f"connString=sqlite:///{db}", "-v"])
        assert rc == 0
        archive = StampedeArchive.open(f"sqlite:///{db}")
        assert archive.count(InvocationRow) == 4


class TestLoaderStatsSnapshot:
    def test_snapshot_is_self_consistent(self):
        stats = LoaderStats()
        stats.events_processed = 10
        stats.rows_inserted = 12
        stats.flushes = 3
        stats.wall_seconds = 2.0
        stats.record_flush_latency(0.5)
        stats.record_queue_depth(4)
        stats.record_queue_depth(8)
        snap = stats.snapshot()
        assert snap["events_processed"] == 10
        assert snap["events_per_second"] == pytest.approx(5.0)
        assert snap["queue_depth_max"] == 8
        assert snap["queue_depth_avg"] == pytest.approx(6.0)
        assert snap["latency_percentiles"]["p50"] == pytest.approx(0.5)
        # the snapshot is detached: later mutations don't leak into it
        stats.events_by_type["x"] = 99
        assert "x" not in snap["events_by_type"]

    def test_snapshot_atomic_under_concurrent_mutation(self):
        """snapshot() must never observe a half-updated latency window or
        a depth sum/samples pair from two different batches while the
        parallel pipeline mutates the stats from another thread."""
        import threading

        stats = LoaderStats()
        rounds = 2000
        stop = threading.Event()
        errors = []

        def writer():
            for i in range(rounds):
                stats.record_flush_latency(0.001 * (i % 50))
                stats.record_queue_depth(i % 32)
                with stats.lock:
                    stats.flushes += 1
                    stats.rows_inserted += 3
            stop.set()

        def reader():
            while not stop.is_set():
                snap = stats.snapshot()
                try:
                    # rows are only ever added 3-per-flush under the lock,
                    # so any torn read shows up as a broken ratio
                    assert snap["rows_inserted"] == snap["flushes"] * 3
                    pcts = snap["latency_percentiles"]
                    assert 0.0 <= pcts["p50"] <= pcts["p99"] <= 0.05
                    if snap["queue_depth_samples"]:
                        assert 0.0 <= snap["queue_depth_avg"] <= snap["queue_depth_max"]
                except AssertionError as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert stats.snapshot()["flushes"] == rounds
