"""Loader resilience: dead-lettering, spill-to-disk degradation, and
redelivery accounting on the bus-consumption path.
"""
import os
import sqlite3

import pytest

from repro.archive.store import StampedeArchive
from repro.bus.broker import DEAD_LETTER_QUEUE, Broker
from repro.bus.client import EventPublisher
from repro.faults import FaultPlan
from repro.loader import (
    DeadLetterQueue,
    SpillBuffer,
    SpillOverflowError,
    load_events,
    load_from_bus,
    make_loader,
)
from repro.loader.dlq import DLQ_TABLE
from repro.loader.stampede_loader import StampedeLoader
from repro.util.retry import RetryPolicy

from tests.helpers import diamond_events
from tests.loader.test_checkpoint_resume import dump_archive

QUEUE = "stampede"


def bound_broker():
    """A broker with the loader queue declared and bound up front, so
    publishes made before the loader attaches are never unroutable."""
    broker = Broker()
    broker.declare_queue(QUEUE, durable=True)
    broker.bind_queue(QUEUE, "stampede.#")
    return broker


def publish_diamond(broker, poison_at=()):
    """Publish the diamond stream, injecting poison bodies at the given
    event indexes."""
    publisher = EventPublisher(broker)
    for i, event in enumerate(diamond_events()):
        if i in poison_at:
            broker.publish("stampede.inv.end", "ts=garbage not a BP line")
        publisher.publish(event)
    return publisher


def baseline_dump():
    loader = load_events(diamond_events())
    return dump_archive(loader.archive)


class TestSpillBuffer:
    def test_append_lines_clear_roundtrip(self, tmp_path):
        buf = SpillBuffer(tmp_path / "spill.bp")
        assert not buf and len(buf) == 0
        buf.append("line one")
        buf.append("line two\n")
        assert list(buf) == ["line one", "line two"]
        assert len(buf) == 2 and buf
        buf.clear()
        assert len(buf) == 0
        assert not os.path.exists(buf.path)
        assert buf.appended == 2  # lifetime counter survives clear

    def test_existing_file_is_counted_on_open(self, tmp_path):
        path = tmp_path / "spill.bp"
        path.write_text("a\nb\n\n")
        buf = SpillBuffer(path)
        assert len(buf) == 2  # blank lines don't count

    def test_overflow_raises(self, tmp_path):
        buf = SpillBuffer(tmp_path / "spill.bp", max_events=2)
        buf.append("a")
        buf.append("b")
        with pytest.raises(SpillOverflowError):
            buf.append("c")


class TestDeadLetterQueue:
    def test_quarantine_records_and_republishes(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        broker = Broker()
        dlq = DeadLetterQueue(archive, source="test-q", broker=broker)
        dlq_id = dlq.quarantine("bad body", "BPParseError: no ts", "stampede.x")
        assert dlq_id == 1
        assert dlq.count() == 1
        (entry,) = dlq.entries()
        assert entry.body == "bad body"
        assert entry.error == "BPParseError: no ts"
        assert entry.routing_key == "stampede.x"
        assert entry.source == "test-q"
        dead = broker.queue(DEAD_LETTER_QUEUE).get()
        assert dead.body == "bad body"
        assert dead.header("x-death") == "poison"
        assert "no ts" in dead.header("x-error")

    def test_ids_continue_across_instances(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        DeadLetterQueue(archive).quarantine("a", "e1")
        dlq = DeadLetterQueue(archive)  # a restarted loader re-attaches
        assert dlq.quarantine("b", "e2") == 2
        assert [e.body for e in dlq.entries()] == ["a", "b"]

    def test_broker_is_optional(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        dlq = DeadLetterQueue(archive)
        dlq.quarantine("x", "err")
        assert dlq.count() == 1


class TestPoisonEvents:
    def test_poison_event_is_quarantined_not_fatal(self):
        broker = bound_broker()
        publish_diamond(broker, poison_at=(5, 40))
        loader = load_from_bus(
            broker, queue_name=QUEUE, durable=True, dead_letter=True
        )
        assert loader.stats.dlq_events == 2
        # the batch survived: the archive matches a clean file load
        assert dump_archive(loader.archive) == baseline_dump()
        # quarantined rows are recoverable from the ancillary table
        assert loader.archive.db.count(DLQ_TABLE) == 2
        # and the poison stream is observable on the broker DLQ
        dead = broker.queue(DEAD_LETTER_QUEUE).drain()
        assert len(dead) == 2
        assert all(m.header("x-death") == "poison" for m in dead)
        assert all("BPParseError" in m.header("x-error") for m in dead)

    def test_without_dead_letter_poison_raises(self):
        broker = bound_broker()
        publish_diamond(broker, poison_at=(5,))
        with pytest.raises(ValueError):
            load_from_bus(broker, queue_name=QUEUE, durable=True)

    def test_prebuilt_dead_letter_queue_is_used(self):
        broker = bound_broker()
        loader = make_loader()
        dlq = DeadLetterQueue(loader.archive, source="custom")
        publish_diamond(broker, poison_at=(3,))
        load_from_bus(
            broker, queue_name=QUEUE, durable=True, loader=loader,
            dead_letter=dlq,
        )
        assert dlq.quarantined == 1
        assert dlq.entries()[0].source == "custom"


class TestRedeliveryStats:
    def test_crash_redelivery_is_visible_in_stats(self):
        # a consumer "crashes" holding unacked messages; the resumed
        # loader must see them redelivered, count them, and still build
        # the exact archive
        broker = bound_broker()
        crashed = broker.subscribe(
            "stampede.#", queue_name=QUEUE, durable=True, auto_delete=False
        )
        publish_diamond(broker)
        taken = [crashed.get(timeout=0.0, auto_ack=False) for _ in range(7)]
        assert all(m is not None for m in taken)
        crashed.disconnect()  # requeues all 7, flagged redelivered

        loader = load_from_bus(broker, queue_name=QUEUE, durable=True)
        assert loader.stats.redelivered_events == 7
        assert loader.stats.duplicates_skipped == 0  # requeue, not copies
        assert dump_archive(loader.archive) == baseline_dump()


class TestDegradedMode:
    def chaos_loader(self, fail_transactions, batch_size=25):
        plan = FaultPlan.from_dict(
            {"archive": {"fail_transactions": list(fail_transactions)}}
        )
        archive = StampedeArchive.open("sqlite:///:memory:")
        archive.db = plan.wrap_database(archive.db)
        loader = StampedeLoader(
            archive,
            batch_size=batch_size,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0),
        )
        return loader, plan

    def test_outage_spills_then_drains_on_recovery(self, tmp_path):
        # attempts 1-3 fail: the first flush exhausts its whole retry
        # ladder, so the loop degrades to spilling; attempt 4 (recovery
        # probe) succeeds and drains the spill back
        loader, plan = self.chaos_loader([1, 2, 3])
        spill_path = tmp_path / "spill.bp"
        broker = bound_broker()
        publish_diamond(broker)
        result = load_from_bus(
            broker,
            queue_name=QUEUE,
            durable=True,
            loader=loader,
            spill=str(spill_path),
        )
        assert plan.stats.archive_faults == 3
        assert result.stats.archive_outages == 1
        assert result.stats.spilled_events > 0
        assert result.stats.spill_drains == 1
        assert not os.path.exists(spill_path)  # cleared after the drain
        assert dump_archive(result.archive) == baseline_dump()

    def test_outage_without_spill_is_fatal(self):
        loader, _ = self.chaos_loader([1, 2, 3])
        broker = bound_broker()
        publish_diamond(broker)
        with pytest.raises(sqlite3.OperationalError):
            load_from_bus(broker, queue_name=QUEUE, durable=True, loader=loader)

    def test_spill_overflow_propagates(self, tmp_path):
        loader, _ = self.chaos_loader(range(1, 50))
        spill = SpillBuffer(tmp_path / "tiny.bp", max_events=3)
        broker = bound_broker()
        publish_diamond(broker)
        with pytest.raises(SpillOverflowError):
            load_from_bus(
                broker, queue_name=QUEUE, durable=True, loader=loader,
                spill=spill,
            )
