"""nl-load --lint: strict loading with event quarantine."""
import os

from repro.archive import StampedeArchive
from repro.lint import Severity
from repro.loader.nl_load import load_file_linted, main
from repro.model.entities import InvocationRow, JobInstanceRow, WorkflowRow
from repro.netlogger.stream import write_events

from tests.helpers import diamond_events

FIXTURES = os.path.join(
    os.path.dirname(__file__), "..", "lint", "fixtures"
)
CORRUPTED_BP = os.path.join(FIXTURES, "corrupted.bp")


class TestLoadFileLinted:
    def test_clean_stream_loads_everything(self, tmp_path):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        loader, findings, quarantined = load_file_linted(str(bp))
        assert findings == []
        assert quarantined == 0
        archive = loader.archive
        assert archive.count(InvocationRow) == 4

    def test_corrupted_stream_quarantines_bad_lines(self, tmp_path):
        q = tmp_path / "bad.bp"
        loader, findings, quarantined = load_file_linted(
            CORRUPTED_BP, quarantine=str(q)
        )
        assert quarantined > 0
        assert any(f.severity >= Severity.ERROR for f in findings)
        # quarantine file holds the rejected lines verbatim
        lines = q.read_text().splitlines()
        assert len(lines) == quarantined
        assert "this line is not best-practices format at all" in lines

    def test_good_events_still_load(self):
        loader, findings, quarantined = load_file_linted(CORRUPTED_BP)
        archive = loader.archive
        # the clean prefix (wf.plan, job infos, ...) made it into the archive
        assert archive.count(WorkflowRow) >= 1
        assert archive.count(JobInstanceRow) >= 1

    def test_quarantined_plus_loaded_covers_stream(self, tmp_path):
        events = diamond_events()
        bp = tmp_path / "run.bp"
        # corrupt one event: drop xwf.start's mandatory restart_count
        lines = []
        for e in events:
            line = e.to_bp()
            if e.event == "stampede.xwf.start":
                line = line.replace(" restart_count=0", "")
            lines.append(line)
        bp.write_text("\n".join(lines) + "\n")
        loader, findings, quarantined = load_file_linted(str(bp))
        assert quarantined == 1
        assert {f.rule_id for f in findings} >= {"STL103"}


class TestNlLoadLintCli:
    def test_clean_input_exits_zero(self, tmp_path, capsys):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        assert main([str(bp), "--lint"]) == 0
        assert capsys.readouterr().err == ""

    def test_corrupted_input_exits_one_and_reports(self, tmp_path, capsys):
        q = tmp_path / "quarantine.bp"
        rc = main([CORRUPTED_BP, "--lint", "--quarantine", str(q)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "STL" in err
        assert "quarantined" in err
        assert q.exists() and q.read_text().strip()

    def test_quarantine_requires_lint(self, tmp_path, capsys):
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        import pytest
        with pytest.raises(SystemExit):
            main([str(bp), "--quarantine", str(tmp_path / "q.bp")])

    def test_lint_mode_archives_good_events(self, tmp_path, capsys):
        db = tmp_path / "out.db"
        bp = tmp_path / "run.bp"
        write_events(bp, diamond_events())
        rc = main([str(bp), "stampede_loader",
                   f"connString=sqlite:///{db}", "--lint"])
        assert rc == 0
        archive = StampedeArchive.open(f"sqlite:///{db}")
        assert archive.count(InvocationRow) == 4
