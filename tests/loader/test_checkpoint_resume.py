"""Checkpoint/resume: a loader killed mid-run continues without duplicates.

The contract under test is exactly-once archiving: the checkpoint row
commits in the same transaction as the batch it describes, so after a
crash the archive and the recorded source position can never disagree.
A resumed run must therefore produce an archive byte-for-byte equivalent
(row counts AND surrogate keys) to an uninterrupted one.
"""
import dataclasses

import pytest

from repro.archive.store import StampedeArchive
from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.loader import load_file, load_from_bus, make_loader
from repro.loader.checkpoint import CheckpointManager
from repro.loader.monitord import Monitord
from repro.loader.stampede_loader import LoaderError, StampedeLoader
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.netlogger.stream import read_events_with_offsets, write_events

from tests.helpers import diamond_events

ALL_ROWS = [
    WorkflowRow,
    WorkflowStateRow,
    TaskRow,
    TaskEdgeRow,
    JobRow,
    JobEdgeRow,
    JobInstanceRow,
    JobStateRow,
    InvocationRow,
    HostRow,
]


def dump_archive(archive: StampedeArchive):
    """Every row of every Fig. 3 table, surrogate keys included."""
    return {
        row_type.__name__: sorted(
            dataclasses.astuple(r) for r in archive.query(row_type).all()
        )
        for row_type in ALL_ROWS
    }


class TestCheckpointManager:
    def test_save_load_roundtrip(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        ckpt = CheckpointManager(archive, "run.bp")
        assert ckpt.load() is None
        ckpt.save(123, {"workflows": {}})
        loaded = ckpt.load()
        assert loaded.position == 123
        assert loaded.state == {"workflows": {}}
        ckpt.save(456, {"k": "v"})  # upsert, not a second row
        assert ckpt.load().position == 456

    def test_sources_are_independent(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        a = CheckpointManager(archive, "a.bp")
        b = CheckpointManager(archive, "b.bp")
        a.save(10, {})
        assert b.load() is None
        b.save(20, {})
        assert a.load().position == 10

    def test_resume_without_manager_raises(self):
        loader = make_loader()
        with pytest.raises(LoaderError):
            loader.resume()


class TestFileKillAndResume:
    def _bp_file(self, tmp_path):
        path = tmp_path / "diamond.bp"
        write_events(str(path), diamond_events(retries={"b": 1}))
        return str(path)

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        """Kill the loader mid-run (unflushed batch lost, as in kill -9),
        resume, and compare the full archive against a clean run."""
        path = self._bp_file(tmp_path)

        clean = make_loader(f"sqlite:///{tmp_path/'clean.db'}", batch_size=7)
        load_file(path, clean)
        expected = dump_archive(clean.archive)

        # -- run 1: crash partway through ---------------------------------
        crash_db = f"sqlite:///{tmp_path/'crash.db'}"
        loader = make_loader(crash_db, batch_size=7, checkpoint_source=path)
        events = list(read_events_with_offsets(path))
        for event, offset in events[: len(events) * 2 // 3]:
            loader.position = offset
            loader.process(event)
        committed = loader.checkpoint.load()
        assert committed is not None and committed.position > 0
        flushes_before_crash = loader.stats.flushes
        assert flushes_before_crash > 1
        loader.archive.close()  # die without flushing the partial batch

        # -- run 2: fresh process resumes from the checkpoint --------------
        resumed = make_loader(crash_db, batch_size=7, checkpoint_source=path)
        start = resumed.resume()
        assert start == committed.position
        assert resumed.stats.resumes == 1
        load_file(path, resumed, resume=True)

        assert dump_archive(resumed.archive) == expected
        assert resumed.stats.events_processed == len(events)

    def test_resume_on_complete_run_is_a_noop(self, tmp_path):
        path = self._bp_file(tmp_path)
        db = f"sqlite:///{tmp_path/'done.db'}"
        loader = make_loader(db, checkpoint_source=path)
        load_file(path, loader)
        expected = dump_archive(loader.archive)
        events_loaded = loader.stats.events_processed
        loader.archive.close()

        again = make_loader(db, checkpoint_source=path)
        load_file(path, again, resume=True)
        assert dump_archive(again.archive) == expected
        # counters restored from checkpoint; nothing re-processed
        assert again.stats.events_processed == events_loaded

    def test_resume_without_prior_checkpoint_loads_everything(self, tmp_path):
        path = self._bp_file(tmp_path)
        loader = make_loader(
            f"sqlite:///{tmp_path/'fresh.db'}", checkpoint_source=path
        )
        load_file(path, loader, resume=True)
        assert loader.archive.count(InvocationRow) == 5
        assert loader.stats.resumes == 0  # nothing to resume from

    def test_cli_resume_roundtrip(self, tmp_path, capsys):
        from repro.loader.nl_load import main

        path = self._bp_file(tmp_path)
        db = tmp_path / "cli.db"
        conn = f"connString=sqlite:///{db}"
        assert main([path, "stampede_loader", conn, "--checkpoint"]) == 0
        assert main([path, "stampede_loader", conn, "--resume", "-v"]) == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out
        archive = StampedeArchive.open(f"sqlite:///{db}")
        assert archive.count(InvocationRow) == 5  # not doubled

    def test_cli_checkpoint_rejects_stdin(self):
        from repro.loader.nl_load import main

        with pytest.raises(SystemExit):
            main(["-", "stampede_loader", "--checkpoint"])


class TestMonitordResume:
    def test_monitord_resumes_after_kill(self, tmp_path):
        events = diamond_events()
        path = tmp_path / "run.bp"
        write_events(str(path), events)
        db = f"sqlite:///{tmp_path/'mon.db'}"

        clean = make_loader(f"sqlite:///{tmp_path/'mclean.db'}")
        load_file(str(path), clean)
        expected = dump_archive(clean.archive)

        # first follower dies after a few committed batches
        loader = make_loader(db, batch_size=5, checkpoint_source=str(path))
        offsets = list(read_events_with_offsets(str(path)))
        for event, offset in offsets[:20]:
            loader.position = offset
            loader.process(event)
        assert loader.checkpoint.load() is not None
        loader.archive.close()

        loader2 = make_loader(db, batch_size=5, checkpoint_source=str(path))
        with Monitord(str(path), loader2, resume=True):
            pass  # context exit stops after the terminal state lands
        assert dump_archive(loader2.archive) == expected

    def test_monitord_resume_requires_checkpoint(self, tmp_path):
        loader = make_loader()
        with pytest.raises(ValueError):
            Monitord(str(tmp_path / "x.bp"), loader, resume=True)


class TestBusKillAndResume:
    def test_redelivered_messages_skip_committed_prefix(self, tmp_path):
        """Crash a bus consumer mid-stream; the requeued messages plus a
        resumed consumer must yield the uninterrupted archive."""
        events = diamond_events()

        clean = make_loader(f"sqlite:///{tmp_path/'bclean.db'}")
        for e in events:
            clean.process(e)
        clean.flush()
        expected = dump_archive(clean.archive)

        broker = Broker()
        broker.declare_queue("stampede", durable=True)
        broker.bind_queue("stampede", "stampede.#")
        EventPublisher(broker).publish_all(events)

        db = f"sqlite:///{tmp_path/'bus.db'}"
        archive = StampedeArchive.open(db)
        loader = StampedeLoader(
            archive,
            batch_size=8,
            checkpoint=CheckpointManager(archive, "stampede"),
        )
        boom = {"left": 30}
        original_process = loader.process

        def dying_process(event):
            if boom["left"] <= 0:
                raise RuntimeError("simulated crash")
            boom["left"] -= 1
            original_process(event)

        loader.process = dying_process
        with pytest.raises(RuntimeError):
            load_from_bus(
                broker, queue_name="stampede", loader=loader, durable=True,
                poll_timeout=0.01,
            )
        committed = loader.checkpoint.load()
        assert committed is not None and 0 < committed.position < len(events)
        archive.close()

        # unacked messages were requeued by the finally-cancel; a resumed
        # consumer skips tags at or below the checkpoint and loads the rest
        archive2 = StampedeArchive.open(db)
        loader2 = StampedeLoader(
            archive2,
            batch_size=8,
            checkpoint=CheckpointManager(archive2, "stampede"),
        )
        load_from_bus(
            broker, queue_name="stampede", loader=loader2, durable=True,
            poll_timeout=0.01, resume=True,
        )
        assert dump_archive(archive2) == expected
        assert loader2.stats.events_processed == len(events)
