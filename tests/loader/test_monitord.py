import threading
import time

import pytest

from repro.loader import Monitord, follow_file, make_loader
from repro.model.entities import InvocationRow, WorkflowRow
from repro.netlogger.stream import BPWriter
from repro.query import StampedeQuery

from tests.helpers import diamond_events


class TestFollowFile:
    def test_loads_growing_file(self, tmp_path):
        path = tmp_path / "run.bp"
        events = diamond_events()
        writer = BPWriter(path)
        loader = make_loader()
        remaining = iter(events)

        def poll():
            # append a few more events per poll; stop when drained
            wrote = 0
            for event in remaining:
                writer.write(event)
                wrote += 1
                if wrote >= 10:
                    return True
            if wrote:
                return True
            writer.close()
            return False

        loaded = follow_file(path, loader, poll)
        assert loaded == len(events)
        assert loader.archive.count(InvocationRow) == 4

    def test_flushes_incrementally(self, tmp_path):
        path = tmp_path / "run.bp"
        events = diamond_events()
        with BPWriter(path) as writer:
            writer.write_all(events)
        loader = make_loader(batch_size=10_000)  # rely on follow's flushes
        counts = []

        state = {"polls": 0}

        def poll():
            counts.append(loader.archive.count(WorkflowRow))
            return False

        follow_file(path, loader, poll, flush_every=5)
        assert loader.archive.count(InvocationRow) == 4


class TestMonitordThread:
    def test_follows_live_run_until_termination(self, tmp_path):
        path = tmp_path / "live.bp"
        loader = make_loader()
        monitord = Monitord(path, loader, poll_interval=0.005)
        monitord.start()
        # engine writes slowly on another thread
        events = diamond_events()

        def produce():
            with BPWriter(path) as writer:
                for event in events:
                    writer.write(event)
                    time.sleep(0.001)

        producer = threading.Thread(target=produce)
        producer.start()
        producer.join()
        monitord.join(timeout=10)
        assert not monitord.running
        assert monitord.events_loaded == len(events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        assert q.workflow_status(wf.wf_id) == 0

    def test_waits_for_file_creation(self, tmp_path):
        path = tmp_path / "late.bp"
        loader = make_loader()
        with Monitord(path, loader, poll_interval=0.005) as monitord:
            time.sleep(0.02)  # file does not exist yet
            with BPWriter(path) as writer:
                writer.write_all(diamond_events())
            deadline = time.time() + 10
            while monitord.running and time.time() < deadline:
                time.sleep(0.01)
        assert loader.archive.count(InvocationRow) == 4

    def test_explicit_stop(self, tmp_path):
        path = tmp_path / "stop.bp"
        events = diamond_events()[:10]  # no termination event
        with BPWriter(path) as writer:
            writer.write_all(events)
        loader = make_loader()
        monitord = Monitord(path, loader, poll_interval=0.005).start()
        time.sleep(0.05)
        assert monitord.running  # still tailing: no termination seen
        monitord.stop()
        monitord.join(timeout=10)
        assert not monitord.running
        assert monitord.events_loaded == 10

    def test_double_start_rejected(self, tmp_path):
        path = tmp_path / "x.bp"
        BPWriter(path).close()
        monitord = Monitord(path, make_loader()).start()
        with pytest.raises(RuntimeError):
            monitord.start()
        monitord.stop()
        monitord.join()

    def test_multi_workflow_termination_count(self, tmp_path):
        """With sub-workflows, monitord stops after ALL terminations."""
        from tests.helpers import diamond_events as mk

        path = tmp_path / "multi.bp"
        uuid2 = "22222222-3333-4333-8444-555555555555"
        events = mk() + mk(xwf=uuid2)
        with BPWriter(path) as writer:
            writer.write_all(events)
        loader = make_loader()
        monitord = Monitord(
            path, loader, poll_interval=0.005, expected_terminations=2
        ).start()
        monitord.join(timeout=10)
        assert not monitord.running
        q = StampedeQuery(loader.archive)
        assert len(q.workflows()) == 2
