"""Backpressure-aware bus consumption: no busy-poll, bounded flushes,
ack-only-after-commit."""
import threading
import time

from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.loader import load_from_bus, make_loader
from repro.model.entities import InvocationRow, WorkflowStateRow

from tests.helpers import diamond_events


class TestBoundedFlushes:
    def test_flush_count_bounded_during_live_run(self):
        """Regression for the busy-poll bug: a trickling producer used to
        force one flush per empty poll (flushes ~ events); now flushes
        happen only on batch-full or idle boundaries."""
        broker = Broker()
        broker.declare_queue("stampede", durable=True)
        broker.bind_queue("stampede", "stampede.#")
        events = diamond_events()
        loader = make_loader(batch_size=10_000)  # never batch-full here
        result = {}

        def consume():
            result["loader"] = load_from_bus(
                broker,
                queue_name="stampede",
                loader=loader,
                durable=True,
                poll_timeout=0.2,
                until=lambda ld: ld.archive.count(WorkflowStateRow) >= 2,
            )

        t = threading.Thread(target=consume)
        t.start()
        publisher = EventPublisher(broker)
        for event in events:  # trickle: each gap would have been a flush
            publisher.publish(event)
            time.sleep(0.001)
        t.join(timeout=15)
        assert not t.is_alive()
        assert loader.archive.count(InvocationRow) == 4
        assert loader.stats.events_processed == len(events)
        # one batch ever filled? no — so only idle/final flushes remain
        assert loader.stats.flushes <= 5

    def test_drain_without_until_stops_on_idle(self):
        broker = Broker()
        broker.declare_queue("q", durable=True)
        broker.bind_queue("q", "stampede.#")
        EventPublisher(broker).publish_all(diamond_events())
        loader = load_from_bus(
            broker, queue_name="q", durable=True, poll_timeout=0.01
        )
        assert loader.archive.count(InvocationRow) == 4

    def test_queue_depth_recorded(self):
        broker = Broker()
        broker.declare_queue("q", durable=True)
        broker.bind_queue("q", "stampede.#")
        EventPublisher(broker).publish_all(diamond_events())
        loader = load_from_bus(
            broker, queue_name="q", durable=True, poll_timeout=0.01
        )
        assert loader.stats.queue_depth_samples == len(diamond_events())
        assert loader.stats.queue_depth_max > 0


class TestAckOnFlush:
    def test_messages_settle_only_after_commit(self):
        broker = Broker()
        queue = broker.declare_queue("q", durable=True)
        broker.bind_queue("q", "stampede.#")
        EventPublisher(broker).publish_all(diamond_events())
        published = queue.stats.published
        loader = load_from_bus(
            broker, queue_name="q", durable=True, poll_timeout=0.01
        )
        assert loader.archive.count(InvocationRow) == 4
        assert queue.stats.acked == published  # everything settled
        assert queue.unacked_count == 0

    def test_on_flush_restored_after_return(self):
        broker = Broker()
        broker.declare_queue("q", durable=True)
        broker.bind_queue("q", "stampede.#")
        loader = make_loader()
        sentinel = []
        loader.on_flush = lambda ld: sentinel.append(1)
        load_from_bus(
            broker, queue_name="q", durable=True, loader=loader, poll_timeout=0.01
        )
        assert loader.on_flush is not None
        loader.flush()  # no pending work; original callback still wired
        assert sentinel
