import re
import uuid as uuid_mod

from repro.util.uuidgen import UUIDFactory, derive_uuid

UUID_RE = re.compile(
    r"^[0-9a-f]{8}-[0-9a-f]{4}-4[0-9a-f]{3}-[89ab][0-9a-f]{3}-[0-9a-f]{12}$"
)


class TestUUIDFactory:
    def test_shape_is_rfc4122_v4(self):
        factory = UUIDFactory(seed=7)
        for _ in range(50):
            value = factory.new()
            assert UUID_RE.match(value), value
            parsed = uuid_mod.UUID(value)
            assert parsed.version == 4

    def test_deterministic_per_seed(self):
        a = [UUIDFactory(seed=3)() for _ in range(10)]
        b = [UUIDFactory(seed=3)() for _ in range(10)]
        assert a == b

    def test_different_seeds_differ(self):
        assert UUIDFactory(seed=1).new() != UUIDFactory(seed=2).new()

    def test_no_collisions_within_run(self):
        factory = UUIDFactory(seed=0)
        values = [factory.new() for _ in range(1000)]
        assert len(set(values)) == 1000


class TestDeriveUuid:
    def test_deterministic(self):
        assert derive_uuid("ns", "x") == derive_uuid("ns", "x")

    def test_namespace_separates(self):
        assert derive_uuid("ns1", "x") != derive_uuid("ns2", "x")

    def test_name_separates(self):
        assert derive_uuid("ns", "x") != derive_uuid("ns", "y")

    def test_no_concat_ambiguity(self):
        assert derive_uuid("ab", "c") != derive_uuid("a", "bc")

    def test_valid_uuid_shape(self):
        assert UUID_RE.match(derive_uuid("ns", "name"))
