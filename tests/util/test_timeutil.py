import math

import pytest

from repro.util.timeutil import (
    format_duration,
    format_hms,
    format_iso,
    parse_iso,
    parse_ts,
)


class TestFormatIso:
    def test_epoch(self):
        assert format_iso(0.0) == "1970-01-01T00:00:00.000000Z"

    def test_paper_example(self):
        ts = parse_iso("2012-03-13T12:35:38.000000Z")
        assert format_iso(ts) == "2012-03-13T12:35:38.000000Z"

    def test_fractional_seconds(self):
        assert format_iso(1.5) == "1970-01-01T00:00:01.500000Z"

    def test_precision_zero_rounds(self):
        assert format_iso(1.7, precision=0) == "1970-01-01T00:00:02Z"
        assert format_iso(1.2, precision=0) == "1970-01-01T00:00:01Z"

    def test_fraction_carry(self):
        # 1.9999995 must round up to 2.000000, not truncate to 1.000000
        assert format_iso(1.9999995) == "1970-01-01T00:00:02.000000Z"

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            format_iso(float("nan"))
        with pytest.raises(ValueError):
            format_iso(math.inf)


class TestParseIso:
    def test_zulu(self):
        assert parse_iso("1970-01-01T00:00:00Z") == 0.0

    def test_space_separator(self):
        assert parse_iso("1970-01-01 00:00:10Z") == 10.0

    def test_lowercase_t_and_z(self):
        assert parse_iso("1970-01-01t00:00:10z") == 10.0

    def test_offset_positive(self):
        # 01:00:00+01:00 is midnight UTC
        assert parse_iso("1970-01-01T01:00:00+01:00") == 0.0

    def test_offset_negative(self):
        assert parse_iso("1969-12-31T23:00:00-01:00") == 0.0

    def test_offset_without_colon(self):
        assert parse_iso("1970-01-01T01:00:00+0100") == 0.0

    def test_naive_assumed_utc(self):
        assert parse_iso("1970-01-01T00:00:05") == 5.0

    def test_microseconds(self):
        assert parse_iso("1970-01-01T00:00:00.250000Z") == 0.25

    def test_nanoseconds_kept(self):
        assert parse_iso("1970-01-01T00:00:00.123456789Z") == pytest.approx(
            0.123456789, abs=1e-9
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_iso("not-a-date")
        with pytest.raises(ValueError):
            parse_iso("1970-13-01T00:00:00Z")

    def test_roundtrip(self):
        for ts in (0.0, 1331642138.0, 86399.999999, 1e9 + 0.5):
            assert parse_iso(format_iso(ts)) == pytest.approx(ts, abs=1e-6)


class TestParseTs:
    def test_float_passthrough(self):
        assert parse_ts(12.5) == 12.5

    def test_int(self):
        assert parse_ts(12) == 12.0

    def test_numeric_string(self):
        assert parse_ts("1331642138.75") == 1331642138.75

    def test_iso_string(self):
        assert parse_ts("2012-03-13T12:35:38.000000Z") == parse_iso(
            "2012-03-13T12:35:38.000000Z"
        )


class TestFormatDuration:
    def test_paper_wall_time(self):
        # Table I: "11 mins, 1 sec, (661 seconds)"
        assert format_duration(661) == "11 mins, 1 sec"

    def test_paper_cumulative(self):
        # Table I: "11 hrs, 10 mins, (40224 seconds)"
        assert format_duration(40224) == "11 hrs, 10 mins"

    def test_seconds_only(self):
        assert format_duration(1) == "1 sec"
        assert format_duration(45) == "45 secs"

    def test_minutes(self):
        assert format_duration(120) == "2 mins"

    def test_days(self):
        assert format_duration(90000) == "1 day, 1 hr"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestFormatHms:
    def test_basic(self):
        assert format_hms(661) == "0:11:01"
        assert format_hms(40224) == "11:10:24"
        assert format_hms(0) == "0:00:00"
