"""repro.util.retry: the shared retry policy and circuit breaker.

Everything runs on fake sleep/clock hooks — no real time passes, so the
schedules (including deadlines and breaker reset timeouts) are asserted
exactly.
"""
import random

import pytest

from repro.util.retry import CircuitBreaker, CircuitOpenError, RetryPolicy


class Boom(RuntimeError):
    pass


class OtherBoom(RuntimeError):
    pass


class Flaky:
    """Callable failing its first ``fail_times`` calls."""

    def __init__(self, fail_times, exc=Boom):
        self.fail_times = fail_times
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc(f"call {self.calls}")
        return "ok"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class TestRetryPolicySchedule:
    def test_plain_exponential_ladder(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.05, max_delay=100.0, multiplier=2.0
        )
        assert list(policy.delays()) == [0.05, 0.1, 0.2, 0.4]

    def test_ladder_capped_at_max_delay(self):
        policy = RetryPolicy(max_retries=5, base_delay=1.0, max_delay=3.0)
        assert list(policy.delays()) == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_decorrelated_jitter_bounds(self):
        policy = RetryPolicy(
            max_retries=50, base_delay=0.1, max_delay=5.0, jitter="decorrelated"
        )
        prev = policy.base_delay
        for delay in policy.delays(rng=random.Random(7)):
            assert policy.base_delay <= delay <= min(policy.max_delay, prev * 3)
            prev = delay

    def test_decorrelated_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(max_retries=10, jitter="decorrelated")
        a = list(policy.delays(rng=random.Random(3)))
        b = list(policy.delays(rng=random.Random(3)))
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"multiplier": 0.5},
            {"jitter": "full"},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryPolicyCall:
    def test_success_after_failures(self):
        clock = FakeClock()
        fn = Flaky(2)
        policy = RetryPolicy(max_retries=3, base_delay=1.0, max_delay=10.0)
        result = policy.call(fn, retry_on=(Boom,), sleep=clock.sleep, clock=clock)
        assert result == "ok"
        assert fn.calls == 3
        assert clock.now == 1.0 + 2.0  # the two backoff sleeps

    def test_exhaustion_raises_the_original_exception(self):
        clock = FakeClock()
        fn = Flaky(99)
        policy = RetryPolicy(max_retries=2, base_delay=1.0)
        with pytest.raises(Boom, match="call 3"):
            policy.call(fn, retry_on=(Boom,), sleep=clock.sleep, clock=clock)
        assert fn.calls == 3  # 1 initial + 2 retries

    def test_non_retryable_exception_propagates_immediately(self):
        fn = Flaky(99, exc=OtherBoom)
        policy = RetryPolicy(max_retries=5)
        with pytest.raises(OtherBoom):
            policy.call(fn, retry_on=(Boom,), sleep=lambda s: None)
        assert fn.calls == 1

    def test_zero_retries_means_one_attempt(self):
        fn = Flaky(1)
        policy = RetryPolicy(max_retries=0)
        with pytest.raises(Boom):
            policy.call(fn, retry_on=(Boom,), sleep=lambda s: None)
        assert fn.calls == 1

    def test_on_retry_sees_one_based_attempts_and_the_error(self):
        clock = FakeClock()
        seen = []
        policy = RetryPolicy(max_retries=3, base_delay=1.0)
        policy.call(
            Flaky(2),
            retry_on=(Boom,),
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
            sleep=clock.sleep,
            clock=clock,
        )
        assert seen == [(1, "call 1"), (2, "call 2")]

    def test_deadline_stops_the_ladder_early(self):
        clock = FakeClock()
        fn = Flaky(99)
        # delays 1, 2, 4...: the third sleep would cross the 4s budget
        policy = RetryPolicy(max_retries=10, base_delay=1.0, max_delay=100.0,
                             deadline=4.0)
        with pytest.raises(Boom):
            policy.call(fn, retry_on=(Boom,), sleep=clock.sleep, clock=clock)
        assert fn.calls == 3
        assert clock.now == 3.0  # slept 1 + 2, then gave up


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=30.0,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # a second caller is still blocked

    def test_successful_probe_closes_the_circuit(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_another_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now += 10.0
        assert breaker.allow()

    def test_policy_raises_circuit_open_without_calling(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                                 clock=clock)
        fn = Flaky(99)
        policy = RetryPolicy(max_retries=1, base_delay=1.0)
        with pytest.raises(Boom):
            policy.call(fn, retry_on=(Boom,), sleep=clock.sleep, clock=clock,
                        breaker=breaker)
        assert breaker.state == "open"
        calls_before = fn.calls
        with pytest.raises(CircuitOpenError):
            policy.call(fn, retry_on=(Boom,), sleep=clock.sleep, clock=clock,
                        breaker=breaker)
        assert fn.calls == calls_before  # failed fast, fn never ran

    def test_breaker_recovers_through_policy_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        policy = RetryPolicy(max_retries=0)
        with pytest.raises(Boom):
            policy.call(Flaky(1), retry_on=(Boom,), sleep=clock.sleep,
                        clock=clock, breaker=breaker)
        clock.now += 5.0
        result = policy.call(Flaky(0), retry_on=(Boom,), sleep=clock.sleep,
                             clock=clock, breaker=breaker)
        assert result == "ok"
        assert breaker.state == "closed"
