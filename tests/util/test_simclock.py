import pytest

from repro.util.simclock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now == 100.0

    def test_events_run_in_time_order(self):
        clock = SimClock()
        order = []
        clock.schedule(5.0, lambda: order.append("b"))
        clock.schedule(1.0, lambda: order.append("a"))
        clock.schedule(9.0, lambda: order.append("c"))
        clock.run()
        assert order == ["a", "b", "c"]
        assert clock.now == 9.0

    def test_equal_times_fifo(self):
        clock = SimClock()
        order = []
        for name in "abc":
            clock.schedule(1.0, lambda n=name: order.append(n))
        clock.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        clock = SimClock()
        seen = []

        def first():
            seen.append(clock.now)
            clock.schedule(2.0, lambda: seen.append(clock.now))

        clock.schedule(1.0, first)
        clock.run()
        assert seen == [1.0, 3.0]

    def test_cancellation(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        clock.run()
        assert fired == []
        # cancelled events do not advance the clock
        assert clock.now == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule(-1.0, lambda: None)

    def test_run_until(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        clock.schedule(10.0, lambda: fired.append(2))
        clock.run(until=5.0)
        assert fired == [1]
        assert clock.now == 5.0
        clock.run()
        assert fired == [1, 2]

    def test_schedule_at(self):
        clock = SimClock(10.0)
        fired = []
        clock.schedule_at(15.0, lambda: fired.append(clock.now))
        clock.run()
        assert fired == [15.0]

    def test_peek_and_pending(self):
        clock = SimClock()
        assert clock.peek() is None
        assert clock.pending() == 0
        h = clock.schedule(2.0, lambda: None)
        clock.schedule(5.0, lambda: None)
        assert clock.peek() == 2.0
        assert clock.pending() == 2
        h.cancel()
        assert clock.peek() == 5.0
        assert clock.pending() == 1

    def test_max_events_guard(self):
        clock = SimClock()

        def loop():
            clock.schedule(1.0, loop)

        clock.schedule(1.0, loop)
        with pytest.raises(RuntimeError):
            clock.run(max_events=100)

    def test_step(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        assert clock.step() is True
        assert fired == [1]
        assert clock.step() is False
