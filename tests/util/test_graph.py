import pytest

from repro.util.graph import CycleError, DiGraph, has_cycle, topological_sort


def diamond() -> DiGraph:
    g = DiGraph()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


class TestDiGraph:
    def test_nodes_and_edges(self):
        g = diamond()
        assert set(g.nodes()) == {"a", "b", "c", "d"}
        assert ("a", "b") in g.edges()
        assert len(g) == 4

    def test_duplicate_edge_ignored(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.edges() == [("a", "b")]

    def test_degrees(self):
        g = diamond()
        assert g.in_degree("a") == 0
        assert g.in_degree("d") == 2
        assert g.out_degree("a") == 2

    def test_roots_and_leaves(self):
        g = diamond()
        assert g.roots() == ["a"]
        assert g.leaves() == ["d"]

    def test_remove_node(self):
        g = diamond()
        g.remove_node("b")
        assert "b" not in g
        assert g.in_degree("d") == 1

    def test_topological_order(self):
        order = diamond().topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detection(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert not g.is_dag()
        cycle = g.find_cycle()
        assert len(cycle) >= 3
        with pytest.raises(CycleError):
            g.topological_order()

    def test_self_loop_is_cycle(self):
        g = DiGraph()
        g.add_edge("a", "a")
        assert not g.is_dag()

    def test_acyclic_has_no_cycle(self):
        assert diamond().find_cycle() == []
        assert diamond().is_dag()

    def test_levels(self):
        levels = diamond().levels()
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_levels_longest_path(self):
        g = DiGraph()
        g.add_edge("a", "d")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        assert g.levels()["d"] == 3

    def test_ancestors_descendants(self):
        g = diamond()
        assert g.ancestors("d") == {"a", "b", "c"}
        assert g.descendants("a") == {"b", "c", "d"}
        assert g.ancestors("a") == set()
        assert g.descendants("d") == set()

    def test_critical_path_unit_weights(self):
        assert diamond().critical_path_length() == 3.0

    def test_critical_path_weighted(self):
        weights = {"a": 1.0, "b": 10.0, "c": 1.0, "d": 1.0}
        assert diamond().critical_path_length(lambda n: weights[n]) == 12.0

    def test_subgraph(self):
        g = diamond().subgraph(["a", "b", "d"])
        assert set(g.nodes()) == {"a", "b", "d"}
        assert ("a", "b") in g.edges()
        assert ("c", "d") not in g.edges()

    def test_copy_is_independent(self):
        g = diamond()
        h = g.copy()
        h.add_edge("d", "e")
        assert "e" not in g

    def test_isolated_node(self):
        g = DiGraph()
        g.add_node("x")
        assert g.roots() == ["x"]
        assert g.leaves() == ["x"]
        assert g.topological_order() == ["x"]


class TestFunctions:
    def test_topological_sort(self):
        order = topological_sort(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert order == ["a", "b", "c"]

    def test_has_cycle(self):
        assert has_cycle(["a", "b"], [("a", "b"), ("b", "a")])
        assert not has_cycle(["a", "b"], [("a", "b")])
