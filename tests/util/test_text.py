import pytest

from repro.util.text import indent, render_table


class TestRenderTable:
    def test_alignment_inferred(self):
        text = render_table(["Name", "N"], [["abc", 1], ["d", 22]])
        lines = text.splitlines()
        # numeric column right-aligned: '22' ends at the same column as header
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")
        assert lines[2].startswith("abc")

    def test_explicit_alignment(self):
        text = render_table(["A"], [["x"], ["yy"]], aligns=["r"])
        lines = text.splitlines()
        assert lines[2] == " x"
        assert lines[3] == "yy"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert len(text.splitlines()) == 2  # header + rule only

    def test_float_formatting(self):
        text = render_table(["V"], [[1.0], [2.5], [3.25]])
        assert "1.0" in text
        assert "2.5" in text
        assert "3.25" in text

    def test_separator_column_spacing(self):
        text = render_table(["A", "B"], [["x", "y"]], sep=" | ")
        assert "A | B" in text

    def test_header_wider_than_cells(self):
        text = render_table(["LongHeader"], [["x"]])
        rule = text.splitlines()[1]
        assert len(rule) == len("LongHeader")


class TestIndent:
    def test_basic(self):
        assert indent("a\nb", "  ") == "  a\n  b"

    def test_empty_lines_not_padded(self):
        assert indent("a\n\nb", "  ") == "  a\n\n  b"
