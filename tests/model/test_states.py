"""The explicit job/workflow lifecycle state machine."""
import pytest

from repro.model import (
    ALLOWED_TRANSITIONS,
    ALLOWED_WORKFLOW_TRANSITIONS,
    END_JOB_STATES,
    INITIAL_JOB_STATES,
    TERMINAL_JOB_STATES,
    JobState,
    WorkflowState,
    allowed_successors,
    is_valid_transition,
)


class TestTransitionTable:
    def test_every_state_has_an_entry(self):
        assert set(ALLOWED_TRANSITIONS) == set(JobState)

    def test_successors_are_jobstates(self):
        for nxt in ALLOWED_TRANSITIONS.values():
            assert all(isinstance(s, JobState) for s in nxt)

    def test_end_states_have_no_successors(self):
        for state in END_JOB_STATES:
            assert ALLOWED_TRANSITIONS[state] == frozenset()

    def test_non_end_states_have_successors(self):
        for state in set(JobState) - END_JOB_STATES:
            assert ALLOWED_TRANSITIONS[state]

    def test_terminal_outcomes_may_still_run_post_script(self):
        # JOB_SUCCESS / JOB_FAILURE are *outcome* states, not end states:
        # DAGMan may still run a post script afterwards.
        assert JobState.JOB_SUCCESS in TERMINAL_JOB_STATES
        assert is_valid_transition(JobState.JOB_SUCCESS,
                                   JobState.POST_SCRIPT_STARTED)
        assert is_valid_transition(JobState.JOB_FAILURE,
                                   JobState.POST_SCRIPT_STARTED)

    def test_allowed_successors(self):
        assert allowed_successors(JobState.SUBMIT) == ALLOWED_TRANSITIONS[
            JobState.SUBMIT
        ]


class TestIsValidTransition:
    @pytest.mark.parametrize("current,nxt", [
        (JobState.SUBMIT, JobState.EXECUTE),
        (JobState.EXECUTE, JobState.JOB_TERMINATED),
        (JobState.JOB_TERMINATED, JobState.JOB_SUCCESS),
        (JobState.JOB_TERMINATED, JobState.JOB_FAILURE),
        (JobState.EXECUTE, JobState.JOB_HELD),
        (JobState.JOB_HELD, JobState.JOB_RELEASED),
        (JobState.JOB_RELEASED, JobState.EXECUTE),
        (JobState.EXECUTE, JobState.JOB_EVICTED),
        (JobState.PRE_SCRIPT_STARTED, JobState.PRE_SCRIPT_TERMINATED),
        (JobState.PRE_SCRIPT_SUCCESS, JobState.SUBMIT),
        (JobState.PRE_SCRIPT_FAILURE, JobState.JOB_FAILURE),
        (JobState.POST_SCRIPT_STARTED, JobState.POST_SCRIPT_TERMINATED),
    ])
    def test_legal(self, current, nxt):
        assert is_valid_transition(current, nxt)

    @pytest.mark.parametrize("current,nxt", [
        (JobState.SUBMIT, JobState.SUBMIT),
        (JobState.SUBMIT, JobState.JOB_SUCCESS),
        (JobState.EXECUTE, JobState.JOB_SUCCESS),  # must pass JOB_TERMINATED
        (JobState.JOB_SUCCESS, JobState.EXECUTE),
        (JobState.JOB_ABORTED, JobState.SUBMIT),
        (JobState.POST_SCRIPT_SUCCESS, JobState.SUBMIT),
        (JobState.JOB_TERMINATED, JobState.EXECUTE),
    ])
    def test_illegal(self, current, nxt):
        assert not is_valid_transition(current, nxt)

    def test_initial_states(self):
        assert is_valid_transition(None, JobState.SUBMIT)
        assert is_valid_transition(None, JobState.PRE_SCRIPT_STARTED)
        assert not is_valid_transition(None, JobState.EXECUTE)
        assert INITIAL_JOB_STATES == frozenset(
            {JobState.PRE_SCRIPT_STARTED, JobState.SUBMIT}
        )

    def test_mixed_vocabularies_rejected(self):
        with pytest.raises(TypeError):
            is_valid_transition(JobState.SUBMIT, WorkflowState.WORKFLOW_STARTED)


class TestWorkflowTransitions:
    def test_start_end_cycle(self):
        assert is_valid_transition(None, WorkflowState.WORKFLOW_STARTED)
        assert is_valid_transition(WorkflowState.WORKFLOW_STARTED,
                                   WorkflowState.WORKFLOW_TERMINATED)
        # restarts re-enter WORKFLOW_STARTED
        assert is_valid_transition(WorkflowState.WORKFLOW_TERMINATED,
                                   WorkflowState.WORKFLOW_STARTED)

    def test_double_start_illegal(self):
        assert not is_valid_transition(WorkflowState.WORKFLOW_STARTED,
                                       WorkflowState.WORKFLOW_STARTED)

    def test_end_before_start_illegal(self):
        assert not is_valid_transition(None, WorkflowState.WORKFLOW_TERMINATED)

    def test_table_covers_all_workflow_states(self):
        assert set(ALLOWED_WORKFLOW_TRANSITIONS) == set(WorkflowState)
