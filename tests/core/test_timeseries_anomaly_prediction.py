import numpy as np
import pytest

from repro.core.anomaly import (
    EwmaDetector,
    RobustRuntimeDetector,
    detector_from_events,
    scan_archive,
)
from repro.core.prediction import (
    estimate_remaining_runtime,
    failure_score,
    failure_signals,
)
from repro.core.timeseries import bundle_progress, throughput_series
from repro.dart.sweep import sweep_grid
from repro.dart.workflow import run_dart_experiment
from repro.loader import load_events
from repro.netlogger.events import NLEvent
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender

from tests.helpers import diamond_events


@pytest.fixture(scope="module")
def dart_loaded():
    sink = MemoryAppender()
    commands = [c.line for c in sweep_grid()[:24]]
    res = run_dart_experiment(sink, seed=5, n_nodes=3, chunk_size=8,
                              commands=commands)
    loader = load_events(sink.events)
    q = StampedeQuery(loader.archive)
    root = q.workflow_by_uuid(res.root_xwf_id)
    return q, root, res


class TestBundleProgress:
    def test_one_series_per_bundle(self, dart_loaded):
        q, root, res = dart_loaded
        series = bundle_progress(q, root.wf_id)
        assert len(series) == 3

    def test_monotone_cumulative(self, dart_loaded):
        q, root, _ = dart_loaded
        for s in bundle_progress(q, root.wf_id):
            values = [p[1] for p in s.points]
            assert values == sorted(values)
            assert s.final_cumulative_runtime > 0
            assert s.completion_time > 0

    def test_final_matches_invocation_sum(self, dart_loaded):
        q, root, _ = dart_loaded
        for s in bundle_progress(q, root.wf_id):
            total = sum(i.remote_duration for i in q.invocations(s.wf_id))
            assert s.final_cumulative_runtime == pytest.approx(total)

    def test_sampling(self, dart_loaded):
        q, root, _ = dart_loaded
        (s, *_) = bundle_progress(q, root.wf_id)
        times = np.linspace(0, s.completion_time, 50)
        sampled = s.sample(times)
        assert sampled[0] <= sampled[-1]
        assert sampled[-1] == pytest.approx(s.final_cumulative_runtime)
        # before anything completed: zero
        assert s.sample(np.array([-1.0]))[0] == 0.0

    def test_throughput_series(self, dart_loaded):
        q, root, _ = dart_loaded
        times, counts = throughput_series(q, root.wf_id, bin_seconds=30.0)
        assert counts.sum() == 24 + 3 * 3 + 1  # execs + aux + monitor
        assert len(times) == len(counts)

    def test_empty_throughput(self):
        loader = load_events([])
        q = StampedeQuery(loader.archive)
        times, counts = throughput_series(q, wf_id=1)
        assert len(times) == 0


class TestRobustDetector:
    def test_flags_slow_outlier(self):
        det = RobustRuntimeDetector(threshold=4.0, min_samples=5)
        for _ in range(30):
            det.observe("t", 10.0 + np.random.default_rng(1).normal(0, 0.1))
        anomaly = det.observe("t", 100.0)
        assert anomaly is not None
        assert anomaly.kind == "slow"
        assert anomaly.score > 4.0

    def test_cold_start_suppression(self):
        det = RobustRuntimeDetector(min_samples=5)
        for value in (1.0, 100.0, 1.0, 100.0):
            assert det.observe("t", value) is None

    def test_normal_variation_not_flagged(self):
        rng = np.random.default_rng(2)
        det = RobustRuntimeDetector(threshold=5.0)
        anomalies = [
            det.observe("t", float(rng.normal(60, 5))) for _ in range(500)
        ]
        flagged = [a for a in anomalies if a is not None]
        assert len(flagged) < 5  # << 1% false positive rate

    def test_failures_flagged(self):
        det = RobustRuntimeDetector()
        anomaly = det.observe("t", 5.0, exitcode=1)
        assert anomaly is not None and anomaly.kind == "failure"

    def test_constant_runtimes_degenerate_window(self):
        det = RobustRuntimeDetector(min_samples=3)
        for _ in range(10):
            det.observe("t", 10.0)
        anomaly = det.observe("t", 20.0)
        assert anomaly is not None and anomaly.kind == "slow"

    def test_per_type_isolation(self):
        det = RobustRuntimeDetector(min_samples=3)
        for _ in range(10):
            det.observe("fast", 1.0)
            det.observe("slow", 100.0)
        assert det.observe("slow", 100.0) is None  # normal for its type
        assert det.baseline("fast") == 1.0
        assert det.baseline("unseen") is None

    def test_observe_event(self):
        det = RobustRuntimeDetector(min_samples=2)
        for i in range(5):
            ev = NLEvent(
                "stampede.inv.end", float(i),
                {"transformation": "t", "dur": 10.0, "exitcode": 0,
                 "job.id": f"j{i}"},
            )
            det.observe_event(ev)
        assert det.observations == 5
        ignored = det.observe_event(NLEvent("stampede.xwf.start", 0.0))
        assert ignored is None

    def test_detector_from_events_stream(self):
        events = diamond_events(fail_job="c")
        det = detector_from_events(events)
        assert any(a.kind == "failure" for a in det.anomalies)

    def test_scan_archive(self, dart_loaded):
        q, root, _ = dart_loaded
        det = scan_archive(q, root.wf_id)
        assert det.observations == 24 + 3 * 3 + 1
        # clean run: no failures flagged
        assert not any(a.kind == "failure" for a in det.anomalies)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            RobustRuntimeDetector(threshold=0)


class TestEwmaDetector:
    def test_flags_outlier(self):
        det = EwmaDetector(alpha=0.2, threshold=4.0, min_samples=3)
        rng = np.random.default_rng(3)
        for _ in range(50):
            det.observe("t", float(rng.normal(10, 0.5)))
        anomaly = det.observe("t", 50.0)
        assert anomaly is not None and anomaly.kind == "slow"

    def test_adapts_to_drift(self):
        det = EwmaDetector(alpha=0.3, threshold=6.0)
        for i in range(200):
            det.observe("t", 10.0 + i * 0.05)  # slow drift
        assert det.mean("t") > 15.0
        assert len(det.anomalies) == 0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)


class TestPrediction:
    def test_remaining_zero_when_done(self, dart_loaded):
        q, root, _ = dart_loaded
        est = estimate_remaining_runtime(q, root.wf_id)
        assert est.pending_tasks == 0
        assert est.remaining_wall_seconds == 0.0
        assert est.observed_parallelism >= 1.0

    def test_remaining_for_partial_run(self):
        # replay only the first half of a diamond run
        events = diamond_events()
        half = events[: len(events) // 2 + 4]
        loader = load_events(half)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        est = estimate_remaining_runtime(q, wf.wf_id)
        assert est.pending_tasks > 0
        assert est.remaining_serial_seconds > 0

    def test_failure_signals_clean_run(self):
        loader = load_events(diamond_events())
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        signals = failure_signals(q, wf.wf_id)
        assert signals.failure_fraction == 0.0
        assert failure_score(signals) < 0.1

    def test_failure_signals_bad_run(self):
        loader = load_events(
            diamond_events(fail_job="c", retries={"b": 2, "d": 2})
        )
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        signals = failure_signals(q, wf.wf_id)
        assert signals.failure_fraction > 0.3
        assert failure_score(signals) > 0.5

    def test_score_monotone_in_recent_failures(self):
        from repro.core.prediction import FailureSignals

        low = FailureSignals(10, 0.1, 0.0, 0.0, 0.0)
        high = FailureSignals(10, 0.1, 0.0, 0.9, 0.0)
        assert failure_score(high) > failure_score(low)
