"""Materialized rollups (repro.core.rollup): incremental == full scan.

The tentpole invariant: the counters the loader maintains inside its
transactional commit path must equal what a full scan computes, for any
workflow shape — retries, failures, sub-workflow hierarchies — and the
commit sequence must advance exactly with applying flushes so read
caches invalidate correctly.
"""
import dataclasses

import pytest

from repro.archive.store import StampedeArchive
from repro.core.rollup import (
    RollupMaintainer,
    commit_seq,
    drop_rollups,
    last_commit_ts,
    main as rollup_main,
    rebuild_rollups,
    rollup_statistics,
    verify_rollups,
)
from repro.core.statistics import workflow_statistics
from repro.loader import load_events, make_loader
from repro.model.entities import (
    RollupHostBucketRow,
    RollupHostRow,
    RollupTypeRow,
    RollupWorkflowRow,
)
from repro.query.api import StampedeQuery

from tests.helpers import diamond_events


def _stats_equal(a, b):
    assert a.wall_time == pytest.approx(b.wall_time)
    assert a.cumulative_job_wall_time == pytest.approx(b.cumulative_job_wall_time)
    assert dataclasses.asdict(a.counts) == dataclasses.asdict(b.counts)
    assert len(a.breakdown) == len(b.breakdown)
    for ra, rb in zip(a.breakdown, b.breakdown):
        assert ra.type_name == rb.type_name
        assert ra.count == rb.count
        assert ra.succeeded == rb.succeeded
        assert ra.failed == rb.failed
        assert ra.total_runtime == pytest.approx(rb.total_runtime)
    hosts_a = {h.hostname: h for h in a.hosts}
    hosts_b = {h.hostname: h for h in b.hosts}
    assert set(hosts_a) == set(hosts_b)
    for name in hosts_a:
        assert hosts_a[name].jobs == hosts_b[name].jobs
        assert hosts_a[name].total_runtime == pytest.approx(
            hosts_b[name].total_runtime
        )
        assert sum(hosts_a[name].bins.values()) == pytest.approx(
            sum(hosts_b[name].bins.values())
        )


class TestIncrementalParity:
    @pytest.mark.parametrize("batch_size", [1, 7, 500])
    def test_diamond_matches_scan(self, batch_size):
        loader = load_events(
            diamond_events(fail_job="b", retries={"c": 2}), batch_size=batch_size
        )
        assert verify_rollups(loader.archive) == []

    def test_rollup_statistics_equals_scan_statistics(self):
        loader = load_events(diamond_events(retries={"b": 1}))
        rolled = workflow_statistics(loader.archive, wf_id=1)
        scanned = workflow_statistics(loader.archive, wf_id=1, prefer_rollup=False)
        _stats_equal(rolled, scanned)
        # the rollup path really was taken: it reports without job detail
        assert rollup_statistics(loader.archive, wf_id=1) is not None

    def test_interleaved_workflows_stay_independent(self):
        """Two workflows' event streams merged round-robin: per-workflow
        rollups must not bleed into each other."""
        a = diamond_events(fail_job="b")
        b = diamond_events(
            retries={"c": 1}, xwf="22222222-3333-4444-8555-666666666666"
        )
        merged = []
        ia = iter(a)
        ib = iter(b)
        while True:
            stopped = 0
            for it in (ia, ib):
                try:
                    merged.append(next(it))
                except StopIteration:
                    stopped += 1
            if stopped == 2:
                break
        loader = load_events(merged, batch_size=5)
        assert loader.archive.count(RollupWorkflowRow) == 2
        assert verify_rollups(loader.archive) == []


class TestCommitSequence:
    def test_bumps_once_per_applying_flush(self):
        loader = make_loader(batch_size=4)
        archive = loader.archive
        assert commit_seq(archive) == 0
        assert last_commit_ts(archive) is None
        loader.process_all(diamond_events())
        seq = commit_seq(archive)
        assert seq == loader.stats.flushes > 0
        assert last_commit_ts(archive) is not None
        # idle flush: nothing buffered, sequence must not move
        loader.flush()
        assert commit_seq(archive) == seq

    def test_advances_across_runs(self):
        loader = make_loader(batch_size=500)
        loader.process_all(diamond_events())
        first = commit_seq(loader.archive)
        loader.process_all(
            diamond_events(xwf="22222222-3333-4444-8555-666666666666")
        )
        assert commit_seq(loader.archive) > first


class TestRebuildAndVerify:
    def test_rebuild_backfills_norollup_archive(self):
        loader = load_events(diamond_events(fail_job="b"), rollup=False)
        archive = loader.archive
        assert archive.count(RollupWorkflowRow) == 0
        assert rollup_statistics(archive, wf_id=1) is None
        # scan fallback keeps workflow_statistics working meanwhile
        scanned = workflow_statistics(archive, wf_id=1)
        assert scanned.counts.jobs_failed == 1
        rebuild_rollups(archive)
        assert archive.count(RollupWorkflowRow) == 1
        assert commit_seq(archive) > 0
        assert verify_rollups(archive) == []
        _stats_equal(workflow_statistics(archive, wf_id=1), scanned)

    def test_rebuild_is_idempotent(self):
        loader = load_events(diamond_events(retries={"b": 1, "c": 1}))
        rows_before = sorted(
            dataclasses.astuple(r)[:-1]  # strip updated_seq
            for r in loader.archive.query(RollupWorkflowRow).all()
        )
        rebuild_rollups(loader.archive)
        rows_after = sorted(
            dataclasses.astuple(r)[:-1]
            for r in loader.archive.query(RollupWorkflowRow).all()
        )
        assert rows_before == rows_after
        assert verify_rollups(loader.archive) == []

    def test_verify_catches_corruption(self):
        loader = load_events(diamond_events())
        archive = loader.archive
        assert verify_rollups(archive) == []
        archive.update(
            RollupWorkflowRow, {"tasks_succeeded": 99}, {"wf_id": 1}
        )
        mismatches = verify_rollups(archive)
        assert mismatches and any("tasks_succeeded" in m for m in mismatches)

    def test_drop_rollups_bumps_sequence(self):
        loader = load_events(diamond_events())
        archive = loader.archive
        seq = commit_seq(archive)
        assert drop_rollups(archive, [1]) > 0
        assert archive.count(RollupWorkflowRow) == 0
        assert archive.count(RollupTypeRow) == 0
        assert archive.count(RollupHostRow) == 0
        assert archive.count(RollupHostBucketRow) == 0
        assert commit_seq(archive) > seq


class TestKillResume:
    """Rollups commit in the checkpoint's transaction, so a killed and
    resumed load must land on the same rollup state as a clean one."""

    @pytest.mark.parametrize("cut", [0.25, 0.6, 0.9])
    def test_resume_matches_clean_run(self, tmp_path, cut):
        from repro.loader import load_file
        from repro.netlogger.stream import read_events_with_offsets, write_events

        path = str(tmp_path / "run.bp")
        write_events(path, diamond_events(fail_job="b", retries={"c": 2}))

        clean = make_loader(f"sqlite:///{tmp_path/'clean.db'}", batch_size=6)
        load_file(path, clean)
        assert verify_rollups(clean.archive) == []
        expected = _rollup_dump(clean.archive)

        crash_db = f"sqlite:///{tmp_path/'crash.db'}"
        loader = make_loader(crash_db, batch_size=6, checkpoint_source=path)
        events = list(read_events_with_offsets(path))
        for event, offset in events[: int(len(events) * cut)]:
            loader.position = offset
            loader.process(event)
        loader.archive.close()  # kill -9: the buffered batch is lost

        resumed = make_loader(crash_db, batch_size=6, checkpoint_source=path)
        resumed.resume()
        load_file(path, resumed, resume=True)
        assert verify_rollups(resumed.archive) == []
        assert _rollup_dump(resumed.archive) == expected


def _rollup_dump(archive):
    """Rollup rows modulo updated_seq (flush counts differ by run shape)."""
    wf = sorted(
        dataclasses.astuple(r)[:-1]
        for r in archive.query(RollupWorkflowRow).all()
    )
    rest = [
        sorted(dataclasses.astuple(r) for r in archive.query(t).all())
        for t in (RollupTypeRow, RollupHostRow, RollupHostBucketRow)
    ]
    return [wf] + rest


class TestInterleavingProperty:
    """Seeded random merges of several workflows' streams: per-stream
    order is preserved (the loader's input contract) but cross-stream
    interleaving and batch boundaries are arbitrary — the rollups must
    equal a full scan for every one of them."""

    XWFS = [
        None,  # helpers' default uuid
        "22222222-3333-4444-8555-666666666666",
        "33333333-4444-4555-8666-777777777777",
    ]

    @pytest.mark.parametrize("seed", range(6))
    def test_random_interleavings_match_scan(self, seed):
        import random

        rng = random.Random(seed)
        streams = []
        for i, xwf in enumerate(self.XWFS):
            kwargs = {}
            if xwf:
                kwargs["xwf"] = xwf
            if i % 2:
                kwargs["retries"] = {"c": 1 + i}
            else:
                kwargs["fail_job"] = "b"
            streams.append(list(diamond_events(**kwargs)))
        merged = []
        while any(streams):
            merged.append(rng.choice([s for s in streams if s]).pop(0))
        loader = load_events(merged, batch_size=rng.choice([1, 3, 7, 50]))
        assert loader.archive.count(RollupWorkflowRow) == len(self.XWFS)
        assert verify_rollups(loader.archive) == []


class TestChaos:
    def test_injected_faults_leave_rollups_consistent(self):
        """Transient archive failures mid-load: the loader retries the
        flush, and because rollup deltas apply inside the same
        transaction, the retried flush must not double-count them."""
        from repro.faults import FaultPlan
        from repro.loader import make_loader as _make_loader

        plan = FaultPlan.from_dict(
            {"seed": 3, "archive": {"fail_transactions": [1, 3]}}
        )
        archive = StampedeArchive.open("sqlite:///:memory:")
        archive.db = plan.wrap_database(archive.db)
        chaotic = _make_loader(archive=archive, batch_size=5)
        events = list(diamond_events(fail_job="b", retries={"c": 2}))
        load_events(events, chaotic)
        assert plan.stats.archive_faults == 2
        assert chaotic.stats.retries >= 2
        assert verify_rollups(archive) == []

        clean = load_events(list(events), batch_size=5)
        assert _rollup_dump(archive) == _rollup_dump(clean.archive)


class TestShardedAndTiered:
    ROOTS = [f"aaaa{i:04d}-bbbb-4ccc-8ddd-eeeeeeeeeeee" for i in range(5)]

    def _workload(self):
        events = []
        for i, xwf in enumerate(self.ROOTS):
            events.extend(
                diamond_events(
                    fail_job="b" if i % 3 == 0 else None,
                    retries={"c": 1} if i % 2 else None,
                    xwf=xwf,
                )
            )
        return events

    def test_sharded_load_verifies_per_shard(self):
        from repro.archive.shard import ShardSet, ShardedLoader

        shard_set = ShardSet.create(None, 4, backend="memory")
        loader = ShardedLoader(shard_set, batch_size=10)
        loader.process_all(self._workload())
        loader.close()
        total = 0
        for archive in shard_set.archives:
            assert verify_rollups(archive) == []
            total += archive.count(RollupWorkflowRow)
        assert total == len(self.ROOTS)
        # the federated commit sequence is the sum across shards, so it
        # stays monotone no matter which shard flushed
        fed = shard_set.federated()
        assert commit_seq(fed) == sum(
            commit_seq(a) for a in shard_set.archives
        )
        shard_set.close()

    def test_tiering_drops_rollups_and_bumps_seq(self, tmp_path):
        from repro.archive.shard import ShardSet, ShardedLoader
        from repro.archive.tier import tier_finished

        shard_set = ShardSet.create(tmp_path / "shards", 2)
        loader = ShardedLoader(shard_set, batch_size=10)
        loader.process_all(self._workload())
        loader.close()
        before = sum(commit_seq(a) for a in shard_set.archives)
        assert (
            sum(a.count(RollupWorkflowRow) for a in shard_set.archives)
            == len(self.ROOTS)
        )

        report = tier_finished(shard_set)
        assert report.tiered_roots == len(self.ROOTS)
        # the hierarchies' rollups left with them, atomically...
        for archive in shard_set.archives:
            assert archive.count(RollupWorkflowRow) == 0
            assert verify_rollups(archive) == []
        # ...and the commit sequence moved, so read caches invalidate
        assert sum(commit_seq(a) for a in shard_set.archives) > before

        # the long-term tier has no rollups; statistics still work there
        # through the scan fallback
        fed = shard_set.federated()
        root = StampedeQuery(fed).root_workflows()[0]
        assert rollup_statistics(fed, wf_id=root.wf_id) is None
        scanned = workflow_statistics(fed, wf_id=root.wf_id)
        assert scanned.counts.jobs_total > 0
        shard_set.close()


class TestHierarchy:
    def test_dart_subworkflows_match_scan(self):
        from repro.dart import run_dart_experiment
        from repro.dart.sweep import generate_commands
        from repro.triana.appender import MemoryAppender

        sink = MemoryAppender()
        run_dart_experiment(
            sink, seed=7, commands=generate_commands()[:48], chunk_size=16
        )
        loader = load_events(list(sink.events), batch_size=100)
        assert loader.archive.count(RollupWorkflowRow) > 1  # root + bundles
        assert verify_rollups(loader.archive) == []
        query = StampedeQuery(loader.archive)
        root = query.root_workflows()[0]
        _stats_equal(
            workflow_statistics(loader.archive, wf_id=root.wf_id),
            workflow_statistics(
                loader.archive, wf_id=root.wf_id, prefer_rollup=False
            ),
        )


class TestCli:
    def test_rebuild_verify_status(self, tmp_path, capsys):
        db = tmp_path / "run.db"
        loader = load_events(
            diamond_events(),
            conn_string=f"sqlite:///{db}",
            rollup=False,
        )
        loader.archive.close()
        conn = f"sqlite:///{db}"
        assert rollup_main(["rebuild", conn]) == 0
        assert rollup_main(["verify", conn]) == 0
        assert rollup_main(["status", conn]) == 0
        out = capsys.readouterr().out
        assert "commit_seq" in out

    def test_verify_fails_on_divergence(self, tmp_path):
        db = tmp_path / "bad.db"
        loader = load_events(diamond_events(), conn_string=f"sqlite:///{db}")
        loader.archive.update(
            RollupWorkflowRow, {"jobs_succeeded": 0}, {"wf_id": 1}
        )
        loader.archive.close()
        assert rollup_main(["verify", f"sqlite:///{db}"]) == 1
