import os

import pytest

from repro.core.reports import render_host_timeline, write_report_files
from repro.core.statistics import HostUsage, host_breakdown, workflow_statistics
from repro.loader import load_events
from repro.query import StampedeQuery

from tests.helpers import diamond_events


class TestHostTimeline:
    def test_renders_bins(self):
        hosts = [
            HostUsage("node1", jobs=3, total_runtime=30.0,
                      bins={0: 10.0, 2: 20.0}),
            HostUsage("node2", jobs=1, total_runtime=5.0, bins={1: 5.0}),
        ]
        text = render_host_timeline(hosts, bin_seconds=60.0)
        assert "t0" in text and "t60" in text and "t120" in text
        lines = text.splitlines()
        node1 = next(l for l in lines if l.startswith("node1"))
        assert node1.split() == ["node1", "10", "0", "20"]

    def test_empty(self):
        assert "no host usage" in render_host_timeline([])

    def test_from_real_run(self):
        loader = load_events(diamond_events())
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        hosts = host_breakdown(q, wf.wf_id, bin_seconds=5.0)
        text = render_host_timeline(hosts, bin_seconds=5.0)
        assert "node1" in text


class TestWriteReportFiles:
    def test_writes_all_files(self, tmp_path):
        loader = load_events(diamond_events())
        stats = workflow_statistics(loader.archive)
        paths = write_report_files(stats, tmp_path / "reports")
        names = sorted(os.path.basename(p) for p in paths)
        assert names == ["breakdown.txt", "hosts.txt", "jobs.txt", "summary.txt"]
        breakdown = (tmp_path / "reports" / "breakdown.txt").read_text()
        assert "tr_a" in breakdown
        jobs = (tmp_path / "reports" / "jobs.txt").read_text()
        assert "InvocationDuration" in jobs and "QueueTime" in jobs

    def test_cli_output_dir(self, tmp_path, capsys):
        from repro.core.statistics import main
        from repro.loader.nl_load import main as nl_main
        from repro.netlogger.stream import write_events

        bp = tmp_path / "run.bp"
        db = tmp_path / "run.db"
        write_events(bp, diamond_events())
        nl_main([str(bp), "stampede_loader", f"connString=sqlite:///{db}"])
        rc = main([f"sqlite:///{db}", "-o", str(tmp_path / "out")])
        assert rc == 0
        assert (tmp_path / "out" / "summary.txt").exists()


class TestDashboardExtraEndpoints:
    @pytest.fixture
    def dart_archive(self):
        from repro.dart.sweep import sweep_grid
        from repro.dart.workflow import run_dart_experiment
        from repro.triana.appender import MemoryAppender

        sink = MemoryAppender()
        commands = [c.line for c in sweep_grid()[:8]]
        res = run_dart_experiment(sink, seed=6, n_nodes=2, chunk_size=4,
                                  commands=commands)
        return load_events(sink.events).archive, res

    def test_progress_endpoint(self, dart_archive):
        from repro.core.dashboard import DashboardData
        from repro.query import StampedeQuery

        archive, res = dart_archive
        q = StampedeQuery(archive)
        root = q.workflow_by_uuid(res.root_xwf_id)
        payload = DashboardData(archive).progress_payload(root.wf_id)
        assert len(payload["series"]) == 2
        for series in payload["series"]:
            points = series["points"]
            assert points == sorted(points)

    def test_anomalies_endpoint(self, dart_archive):
        from repro.core.dashboard import DashboardData
        from repro.query import StampedeQuery

        archive, res = dart_archive
        q = StampedeQuery(archive)
        root = q.workflow_by_uuid(res.root_xwf_id)
        payload = DashboardData(archive).anomalies_payload(root.wf_id)
        assert payload["observations"] == 8 + 6 + 1

    def test_http_routes(self, dart_archive):
        import json
        import urllib.request

        from repro.core.dashboard import Dashboard

        archive, res = dart_archive
        with Dashboard(archive) as dash:
            with urllib.request.urlopen(
                dash.url + "/api/workflow/1/progress", timeout=5
            ) as resp:
                assert resp.status == 200
                json.loads(resp.read())
            with urllib.request.urlopen(
                dash.url + "/api/workflow/1/anomalies", timeout=5
            ) as resp:
                assert resp.status == 200
