import pytest

from repro.core.corpus import build_corpus_report, predict_workflow_runtime
from repro.loader import make_loader
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import diamond, fan, montage


@pytest.fixture(scope="module")
def corpus_query():
    """An archive holding several runs across two sites."""
    loader = make_loader()
    catalog = SiteCatalog(
        [
            Site("reliable", slots=16, mean_queue_delay=1.0),
            Site("flaky", slots=16, mean_queue_delay=6.0, failure_rate=0.25),
        ]
    )
    for seed in range(4):
        sink = MemoryAppender()
        run_pegasus_workflow(
            montage(n_images=8), sink, catalog=catalog,
            planner_config=PlannerConfig(cluster_size=2, max_retries=3),
            seed=seed,
        )
        loader.process_all(sink.events)
    for seed in range(2):
        sink = MemoryAppender()
        run_pegasus_workflow(
            fan(width=10, runtime=30.0), sink, catalog=catalog, seed=100 + seed
        )
        loader.process_all(sink.events)
    return StampedeQuery(loader.archive)


class TestCorpusReport:
    def test_counts(self, corpus_query):
        report = build_corpus_report(corpus_query)
        assert report.workflows == 6
        assert report.total_invocations > 100

    def test_transformation_profiles(self, corpus_query):
        report = build_corpus_report(corpus_query)
        proj = report.transformations["mProjectPP"]
        assert proj.invocations == 4 * 8  # 8 images x 4 montage runs
        assert 8 < proj.median < 16  # runtime_estimate 12 + noise
        assert proj.p95 >= proj.median
        work = report.transformations["work"]
        assert work.invocations == 2 * 10

    def test_site_profiles(self, corpus_query):
        report = build_corpus_report(corpus_query)
        assert set(report.sites) <= {"reliable", "flaky", "unknown"}
        flaky = report.sites.get("flaky")
        reliable = report.sites.get("reliable")
        if flaky and reliable and flaky.instances > 20:
            assert flaky.failure_rate >= reliable.failure_rate
        worst = report.least_reliable_sites(top=1)[0]
        assert worst.failure_rate >= 0.0

    def test_slowest_transformations_ranked(self, corpus_query):
        report = build_corpus_report(corpus_query)
        top = report.slowest_transformations(top=3)
        assert len(top) == 3
        assert top[0].mean >= top[1].mean >= top[2].mean


class TestRuntimePrediction:
    def test_prediction_from_history(self, corpus_query):
        report = build_corpus_report(corpus_query)
        # predict a NEW montage run (same transformations, bigger)
        aw = montage(n_images=20)
        pred = predict_workflow_runtime(aw, report, parallelism=8.0)
        assert pred["coverage"] == 1.0  # every transformation seen before
        assert pred["serial_seconds"] > 0
        assert pred["predicted_wall_seconds"] >= pred["critical_path_seconds"]
        assert pred["predicted_wall_seconds"] >= pred["serial_seconds"] / 8.0

    def test_unknown_transformations_use_fallback(self, corpus_query):
        report = build_corpus_report(corpus_query)
        aw = diamond()  # preprocess/analyze/combine: never seen
        pred = predict_workflow_runtime(aw, report, default_runtime=42.0)
        assert pred["coverage"] == 0.0
        assert pred["serial_seconds"] == pytest.approx(4 * 42.0)

    def test_invalid_parallelism(self, corpus_query):
        report = build_corpus_report(corpus_query)
        with pytest.raises(ValueError):
            predict_workflow_runtime(diamond(), report, parallelism=0)

    def test_prediction_accuracy_on_rerun(self, corpus_query):
        """The provisioning use case: prediction within 2x of a real run."""
        report = build_corpus_report(corpus_query)
        aw = montage(n_images=8)
        catalog = SiteCatalog([Site("reliable", slots=16, mean_queue_delay=1.0)])
        sink = MemoryAppender()
        run = run_pegasus_workflow(
            aw, sink, catalog=catalog,
            planner_config=PlannerConfig(cluster_size=2), seed=77,
        )
        pred = predict_workflow_runtime(aw, report, parallelism=16.0)
        assert (
            pred["predicted_wall_seconds"] * 0.3
            < run.report.wall_time
            < pred["predicted_wall_seconds"] * 3.0
        )
