from repro.core.reports import render_gantt
from repro.core.timeseries import GanttRow, gantt
from repro.loader import load_events
from repro.query import StampedeQuery

from tests.helpers import diamond_events


class TestRenderGantt:
    def test_real_run(self):
        loader = load_events(diamond_events())
        q = StampedeQuery(loader.archive)
        rows = gantt(q, 1)
        text = render_gantt(rows, width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 jobs
        assert "#" in text and "." in text
        assert "node1" in text

    def test_empty(self):
        assert "no timed job" in render_gantt([])

    def test_unfinished_instance_rendered_queued(self):
        rows = [
            GanttRow("a", 1, "h", submit=0.0, start=None, end=None),
            GanttRow("b", 1, "h", submit=0.0, start=5.0, end=10.0),
        ]
        text = render_gantt(rows, width=20)
        a_line = next(l for l in text.splitlines() if l.startswith("a"))
        assert "#" not in a_line  # never started: only queue dots
        assert "." in a_line

    def test_zero_span(self):
        rows = [GanttRow("a", 1, "h", submit=1.0, start=1.0, end=1.0)]
        text = render_gantt(rows)
        assert "a" in text  # degenerate span does not crash
