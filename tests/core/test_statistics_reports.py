import pytest

from repro.core.reports import (
    render_all,
    render_breakdown,
    render_jobs,
    render_jobs_timing,
    render_summary,
)
from repro.core.statistics import (
    host_breakdown,
    job_rows,
    job_type_breakdown,
    workflow_statistics,
)
from repro.loader import load_events
from repro.query import StampedeQuery

from tests.helpers import diamond_events


@pytest.fixture
def loaded():
    loader = load_events(diamond_events())
    return loader.archive, StampedeQuery(loader.archive)


@pytest.fixture
def loaded_with_failure():
    loader = load_events(diamond_events(fail_job="c", retries={"b": 1}))
    return loader.archive, StampedeQuery(loader.archive)


class TestWorkflowStatistics:
    def test_wall_time(self, loaded):
        archive, q = loaded
        stats = workflow_statistics(archive)
        # xwf.start at t=10, xwf.end after 4 jobs of ~5.5s + 1
        assert stats.wall_time == pytest.approx(23.0, abs=0.1)

    def test_cumulative_job_wall_time(self, loaded):
        archive, _ = loaded
        stats = workflow_statistics(archive)
        assert stats.cumulative_job_wall_time == pytest.approx(16.0)

    def test_counts(self, loaded):
        archive, _ = loaded
        counts = workflow_statistics(archive).counts
        assert counts.tasks_total == 4
        assert counts.tasks_succeeded == 4
        assert counts.jobs_total == 4
        assert counts.jobs_retries == 0
        assert counts.subwf_total == 0

    def test_counts_with_failure_and_retry(self, loaded_with_failure):
        archive, _ = loaded_with_failure
        counts = workflow_statistics(archive).counts
        assert counts.jobs_failed == 1
        assert counts.jobs_succeeded == 3
        assert counts.jobs_retries == 1
        assert counts.tasks_failed == 1

    def test_breakdown_by_transformation(self, loaded):
        archive, q = loaded
        wf = q.workflows()[0]
        breakdown = job_type_breakdown(q, wf.wf_id)
        assert [b.type_name for b in breakdown] == ["tr_a", "tr_b", "tr_c", "tr_d"]
        for b in breakdown:
            assert b.count == 1
            assert b.min_runtime == b.max_runtime == b.mean_runtime == 4.0

    def test_breakdown_aggregates_retries(self, loaded_with_failure):
        archive, q = loaded_with_failure
        wf = q.workflows()[0]
        breakdown = {b.type_name: b for b in job_type_breakdown(q, wf.wf_id)}
        assert breakdown["tr_b"].count == 2  # retry adds an invocation
        assert breakdown["tr_b"].failed == 1
        assert breakdown["tr_b"].succeeded == 1

    def test_job_rows(self, loaded):
        archive, q = loaded
        wf = q.workflows()[0]
        rows = job_rows(q, wf.wf_id)
        assert len(rows) == 4
        for row in rows:
            assert row.site == "local"
            assert row.hostname == "node1"
            assert row.queue_time == pytest.approx(0.5)
            assert row.runtime == 4.0
            assert row.invocation_duration == 4.0
            assert row.exitcode == 0

    def test_host_breakdown(self, loaded):
        archive, q = loaded
        wf = q.workflows()[0]
        (usage,) = host_breakdown(q, wf.wf_id)
        assert usage.hostname == "node1"
        assert usage.jobs == 4
        assert usage.total_runtime == pytest.approx(16.0)
        assert sum(usage.bins.values()) == pytest.approx(16.0)

    def test_workflow_selection_errors(self, loaded):
        archive, _ = loaded
        with pytest.raises(ValueError):
            workflow_statistics(archive, wf_id=999)
        with pytest.raises(ValueError):
            workflow_statistics(archive, wf_uuid="nope")


class TestRenderers:
    def test_summary_contains_table_one_fields(self, loaded):
        archive, _ = loaded
        text = render_summary(workflow_statistics(archive))
        assert "Tasks" in text and "Jobs" in text and "Sub Workflows" in text
        assert "Workflow wall time" in text
        assert "(23 seconds)" in text
        assert "Workflow cumulative job wall time" in text
        assert "(16 seconds)" in text

    def test_breakdown_render(self, loaded):
        archive, q = loaded
        wf = q.workflows()[0]
        text = render_breakdown(job_type_breakdown(q, wf.wf_id))
        assert "tr_a" in text
        assert "Mean" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 4  # header + rule + 4 types

    def test_jobs_render_both_sections(self, loaded):
        archive, q = loaded
        wf = q.workflows()[0]
        rows = job_rows(q, wf.wf_id)
        t3 = render_jobs(rows)
        t4 = render_jobs_timing(rows)
        assert "InvocationDuration" in t3
        assert "QueueTime" in t4 and "Host" in t4
        assert "node1" in t4

    def test_render_all(self, loaded):
        archive, _ = loaded
        text = render_all(workflow_statistics(archive))
        assert "breakdown.txt" in text
        assert "jobs.txt" in text

    def test_running_workflow_renders(self):
        # drop the final xwf.end: wall time unknown
        events = diamond_events()[:-1]
        loader = load_events(events)
        text = render_summary(workflow_statistics(loader.archive))
        assert "(still running)" in text


class TestCli:
    def test_statistics_main(self, tmp_path, capsys):
        from repro.core.statistics import main
        from repro.netlogger.stream import write_events
        from repro.loader.nl_load import main as nl_main

        bp = tmp_path / "run.bp"
        db = tmp_path / "run.db"
        write_events(bp, diamond_events())
        nl_main([str(bp), "stampede_loader", f"connString=sqlite:///{db}"])
        rc = main([f"sqlite:///{db}"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Workflow wall time" in out
        assert "tr_a" in out
