import pytest

from repro.core.analyzer import analyze, render_analysis
from repro.loader import load_events
from repro.triana.appender import MemoryAppender
from repro.dart.workflow import run_dart_experiment
from repro.dart.sweep import sweep_grid

from tests.helpers import diamond_events


class TestAnalyzeFlat:
    def test_success_analysis(self):
        loader = load_events(diamond_events())
        analysis = analyze(loader.archive)
        assert analysis.ok
        assert analysis.total_jobs == 4
        assert analysis.succeeded == 4
        assert analysis.failed == 0
        assert analysis.failed_jobs == []
        assert analysis.status == 0

    def test_failure_analysis(self):
        loader = load_events(diamond_events(fail_job="c"))
        analysis = analyze(loader.archive)
        assert not analysis.ok
        assert analysis.failed == 1
        (report,) = analysis.failed_jobs
        assert report.exec_job_id == "c"
        assert report.exitcode == 1
        assert report.last_state == "JOB_FAILURE"
        assert report.hostname == "node1"
        assert report.stderr_text == "boom"

    def test_retry_then_success_not_failed(self):
        loader = load_events(diamond_events(retries={"b": 2}))
        analysis = analyze(loader.archive)
        assert analysis.ok
        assert analysis.failed == 0

    def test_unknown_workflow(self):
        loader = load_events(diamond_events())
        with pytest.raises(ValueError):
            analyze(loader.archive, wf_uuid="missing")

    def test_render_contains_failure_details(self):
        loader = load_events(diamond_events(fail_job="c"))
        text = render_analysis(analyze(loader.archive))
        assert "failed job c" in text
        assert "boom" in text
        assert "FAILED" in text

    def test_render_success(self):
        loader = load_events(diamond_events())
        text = render_analysis(analyze(loader.archive))
        assert "succeeded: 4" in text
        assert "failed: 0" in text


class TestAnalyzeHierarchy:
    @pytest.fixture(scope="class")
    def dart_archive(self):
        sink = MemoryAppender()
        commands = [c.line for c in sweep_grid()[:12]]
        res = run_dart_experiment(sink, seed=2, n_nodes=2, chunk_size=4,
                                  commands=commands)
        loader = load_events(sink.events)
        return loader.archive, res

    def test_root_identified(self, dart_archive):
        archive, res = dart_archive
        analysis = analyze(archive)
        assert analysis.wf_uuid == res.root_xwf_id
        assert analysis.total_jobs == 1  # the meta monitor

    def test_successful_subs_not_recursed_by_default(self, dart_archive):
        archive, _ = dart_archive
        analysis = analyze(archive)
        assert analysis.sub_analyses == []

    def test_full_recursion_flag(self, dart_archive):
        archive, _ = dart_archive
        analysis = analyze(archive, recurse_into_successful=True)
        assert len(analysis.sub_analyses) == 3  # 12 commands / 4 per bundle
        for sub in analysis.sub_analyses:
            assert sub.ok
            assert sub.total_jobs == 4 + 3  # execs + unit/zipper/Output_0

    def test_analyzer_cli(self, tmp_path, capsys, dart_archive):
        # exercise main() against a file-backed archive
        from repro.core.analyzer import main
        from repro.netlogger.stream import write_events
        from repro.triana.appender import MemoryAppender as MA

        sink = MA()
        commands = [c.line for c in sweep_grid()[:4]]
        run_dart_experiment(sink, seed=3, n_nodes=1, chunk_size=4,
                            commands=commands)
        bp = tmp_path / "run.bp"
        write_events(bp, sink.events)
        from repro.loader.nl_load import main as nl_main

        db = tmp_path / "run.db"
        nl_main([str(bp), "stampede_loader", f"connString=sqlite:///{db}"])
        rc = main([f"sqlite:///{db}"])
        assert rc == 0
        assert "succeeded" in capsys.readouterr().out
