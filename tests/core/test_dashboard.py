import json
import urllib.error
import urllib.request

import pytest

from repro.core.dashboard import Dashboard, DashboardData
from repro.loader import load_events
from repro.obs.export import PROMETHEUS_CONTENT_TYPE
from repro.obs.metrics import MetricsRegistry

from tests.helpers import diamond_events


@pytest.fixture
def archive():
    return load_events(diamond_events()).archive


class TestDashboardData:
    def test_workflows_payload(self, archive):
        data = DashboardData(archive)
        payload = data.workflows_payload()
        assert len(payload["workflows"]) == 1
        wf = payload["workflows"][0]
        assert wf["state"] == "success"
        assert wf["dag_file_name"] == "diamond.dag"

    def test_workflow_payload(self, archive):
        data = DashboardData(archive)
        payload = data.workflow_payload(1)
        assert payload["counts"]["jobs_total"] == 4
        assert payload["wall_time"] == pytest.approx(23.0, abs=0.1)
        assert len(payload["breakdown"]) == 4

    def test_jobs_payload(self, archive):
        data = DashboardData(archive)
        payload = data.jobs_payload(1)
        assert len(payload["jobs"]) == 4
        assert payload["jobs"][0]["hostname"] == "node1"

    def test_failed_state(self):
        archive = load_events(diamond_events(fail_job="b")).archive
        data = DashboardData(archive)
        assert data.workflows_payload()["workflows"][0]["state"] == "failed"

    def test_running_state(self):
        events = diamond_events()[:-1]  # drop xwf.end
        archive = load_events(events).archive
        data = DashboardData(archive)
        assert data.workflows_payload()["workflows"][0]["state"] == "running"

    def test_index_html(self, archive):
        html = DashboardData(archive).index_html()
        assert "<table" in html
        assert "diamond.dag" in html


class TestDashboardHttp:
    def test_endpoints(self, archive):
        with Dashboard(archive) as dash:
            base = dash.url

            def get(path):
                with urllib.request.urlopen(base + path, timeout=5) as resp:
                    return resp.status, resp.read().decode()

            status, body = get("/")
            assert status == 200 and "Stampede Dashboard" in body

            status, body = get("/api/workflows")
            assert status == 200
            assert len(json.loads(body)["workflows"]) == 1

            status, body = get("/api/workflow/1")
            assert json.loads(body)["counts"]["jobs_total"] == 4

            status, body = get("/api/workflow/1/jobs")
            assert len(json.loads(body)["jobs"]) == 4

    def test_404(self, archive):
        with Dashboard(archive) as dash:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(dash.url + "/nope", timeout=5)
            assert err.value.code == 404

    def test_unknown_workflow_id_404(self, archive):
        with Dashboard(archive) as dash:
            for path in ("/api/workflow/999", "/api/workflow/999/jobs"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(dash.url + path, timeout=5)
                assert err.value.code == 404, path

    def test_malformed_api_path_400(self, archive):
        with Dashboard(archive) as dash:
            for path in ("/api/workflow/abc", "/api/workflow/1/bogus", "/api/"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(dash.url + path, timeout=5)
                assert err.value.code == 400, path

    def test_metrics_endpoint_content_type(self, archive):
        reg = MetricsRegistry()
        reg.counter("dash_test_total").inc(3)
        with Dashboard(archive, metrics=reg) as dash:
            with urllib.request.urlopen(dash.url + "/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                body = resp.read().decode()
        assert "dash_test_total 3" in body
