import json
import urllib.request

from repro.core.dashboard import Dashboard, main
from repro.loader import load_events
from repro.netlogger.stream import write_events

from tests.helpers import diamond_events


class TestGanttEndpoint:
    def test_payload(self):
        archive = load_events(diamond_events()).archive
        with Dashboard(archive) as dash:
            with urllib.request.urlopen(
                dash.url + "/api/workflow/1/gantt", timeout=5
            ) as resp:
                payload = json.loads(resp.read())
        assert len(payload["rows"]) == 4
        for row in payload["rows"]:
            assert row["host"] == "node1"
            assert row["submit"] <= row["start"] <= row["end"]


class TestDashboardCli:
    def test_once_mode(self, tmp_path, capsys):
        from repro.loader.nl_load import main as nl_main

        bp = tmp_path / "run.bp"
        db = tmp_path / "run.db"
        write_events(bp, diamond_events())
        nl_main([str(bp), "stampede_loader", f"connString=sqlite:///{db}"])
        rc = main([f"sqlite:///{db}", "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "http://127.0.0.1:" in out
