"""Streaming read layer (repro.core.live): single-flight cache + SSE.

The contract under test: N concurrent viewers cost one computation per
archive commit (the commit-sequence cache), and a streaming viewer sees
an immediate snapshot followed by monotone progress frames — counters
only grow, ``running`` only resolves forward — no matter when it
connects relative to the load.
"""
import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.dashboard import Dashboard, DashboardData
from repro.core.live import LiveFeed, ReadCache
from repro.loader import load_events, make_loader
from repro.obs.metrics import MetricsRegistry

from tests.helpers import diamond_events

XWF2 = "22222222-3333-4444-8555-666666666666"


def _parse_frame(raw):
    """One SSE frame -> (event name, id or None, decoded data payload)."""
    text = raw.decode() if isinstance(raw, bytes) else raw
    event = frame_id = data = None
    for line in text.strip().split("\n"):
        key, _, value = line.partition(": ")
        if key == "event":
            event = value
        elif key == "id":
            frame_id = int(value)
        elif key == "data":
            data = json.loads(value)
    return event, frame_id, data


def _split_frames(body: bytes):
    return [f for f in body.split(b"\n\n") if f.strip()]


@pytest.fixture
def loader():
    return load_events(diamond_events())


class TestReadCache:
    def test_hit_after_miss(self, loader):
        cache = ReadCache(loader.archive)
        calls = []

        def compute():
            calls.append(1)
            return {"n": len(calls)}

        assert cache.get("k", compute) == {"n": 1}
        assert cache.get("k", compute) == {"n": 1}
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_commit_invalidates_not_ttl(self, loader):
        """The entry lives exactly until the commit sequence moves: no
        recompute while the archive is quiet, one recompute after."""
        cache = ReadCache(loader.archive)
        calls = []
        for _ in range(5):
            cache.get("k", lambda: calls.append(1))
        assert len(calls) == 1
        loader.process_all(diamond_events(xwf=XWF2))
        cache.get("k", lambda: calls.append(1))
        cache.get("k", lambda: calls.append(1))
        assert len(calls) == 2

    def test_no_rollup_coverage_bypasses(self):
        # commit_seq == 0 means no invalidation signal exists; serving a
        # cached value would be stale forever, so every request computes
        norollup = load_events(diamond_events(), rollup=False)
        cache = ReadCache(norollup.archive)
        calls = []
        for _ in range(3):
            cache.get("k", lambda: calls.append(1))
        assert len(calls) == 3
        assert cache.stats()["hits"] == 0

    def test_single_flight_coalesces_concurrent_readers(self, loader):
        cache = ReadCache(loader.archive)
        release = threading.Event()
        computes = []

        def slow():
            computes.append(1)
            release.wait(5)
            return "value"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(cache.get("k", slow)))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)  # let every thread reach the flight
        release.set()
        for t in threads:
            t.join(5)
        assert results == ["value"] * 8
        assert len(computes) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 7

    def test_leader_failure_does_not_poison_key(self, loader):
        cache = ReadCache(loader.archive)
        attempts = []

        def compute():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("boom")
            return "ok"

        with pytest.raises(RuntimeError):
            cache.get("k", compute)
        assert cache.get("k", compute) == "ok"

    def test_waiters_retry_after_leader_failure(self, loader):
        """A leader that dies mid-compute wakes its waiters; one of them
        becomes the new leader and the rest share its result."""
        cache = ReadCache(loader.archive)
        entered = threading.Event()
        release = threading.Event()
        guard = threading.Lock()
        state = {"first": True}

        def compute():
            with guard:
                first = state["first"]
                state["first"] = False
            if first:
                entered.set()
                release.wait(5)
                raise RuntimeError("leader died")
            return "recovered"

        results, errors = [], []

        def worker():
            try:
                results.append(cache.get("k", compute))
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        threads[0].start()
        assert entered.wait(5)
        for t in threads[1:]:
            t.start()
        time.sleep(0.05)  # park the waiters on the doomed flight
        release.set()
        for t in threads:
            t.join(5)
        assert len(errors) == 1
        assert results == ["recovered"] * 3


class TestLiveFeed:
    def test_wait_for_change_immediate_on_stale_since(self, loader):
        feed = LiveFeed(loader.archive)
        start = time.monotonic()
        current = feed.wait_for_change(-1, timeout=5.0)
        assert time.monotonic() - start < 1.0
        assert current == feed.version() > 0

    def test_wait_for_change_times_out_unchanged(self, loader):
        feed = LiveFeed(loader.archive, poll_interval=0.01)
        seq = feed.version()
        start = time.monotonic()
        assert feed.wait_for_change(seq, timeout=0.15) == seq
        assert time.monotonic() - start >= 0.15

    def test_snapshot_unknown_workflow_raises(self, loader):
        with pytest.raises(KeyError):
            LiveFeed(loader.archive).snapshot(999)

    def test_snapshot_degrades_without_rollups(self):
        norollup = load_events(diamond_events(), rollup=False)
        snap = LiveFeed(norollup.archive).snapshot(1)
        assert snap["state"] == "success"
        assert snap["commit_seq"] == 0
        assert "events" not in snap  # state-only fallback

    def test_sse_snapshot_then_idle(self, loader):
        feed = LiveFeed(loader.archive, poll_interval=0.01)
        frames = list(feed.sse_events(wf_id=1, timeout=0.1))
        assert len(frames) == 2
        name, frame_id, data = _parse_frame(frames[0])
        assert name == "progress"
        assert frame_id == data["commit_seq"] > 0
        assert data["state"] == "success"
        assert data["jobs_succeeded"] == data["jobs_total"] > 0
        name, _, idle = _parse_frame(frames[1])
        assert name == "idle"
        assert idle["commit_seq"] == data["commit_seq"]

    def test_sse_limit_caps_progress_frames(self, loader):
        frames = list(
            LiveFeed(loader.archive).sse_events(wf_id=1, limit=1, timeout=5.0)
        )
        assert len(frames) == 1
        assert _parse_frame(frames[0])[0] == "progress"

    def test_sse_connect_mid_load_is_monotonic(self):
        """A viewer that connects halfway through ingest gets the current
        truth immediately, then frames whose counters only grow until the
        workflow resolves."""
        events = list(diamond_events(retries={"c": 2}))
        cut = len(events) // 2
        loader = make_loader(batch_size=5)
        loader.process_all(events[:cut])

        feed = LiveFeed(loader.archive, poll_interval=0.01)
        gen = feed.sse_events(wf_id=1, timeout=2.0)
        name, _, first = _parse_frame(next(gen))
        assert name == "progress"
        assert first["state"] == "running"  # mid-load truth, not zero

        loader.process_all(events[cut:])
        seen = [first]
        for _ in range(20):
            name, _, data = _parse_frame(next(gen))
            if name == "idle":
                break
            seen.append(data)
            if data["state"] == "success":
                break
        assert seen[-1]["state"] == "success"
        for prev, cur in zip(seen, seen[1:]):
            for field in (
                "events",
                "tasks_succeeded",
                "jobs_succeeded",
                "invocations",
                "commit_seq",
            ):
                assert cur[field] >= prev[field], field
            # running only resolves forward
            assert not (prev["state"] != "running" and cur["state"] == "running")


class TestDashboardStreamingHttp:
    def test_concurrent_identical_requests_one_computation(self, loader):
        """The regression the cache exists to prevent: N viewers of one
        endpoint must trigger exactly one computation, not N scans."""
        with Dashboard(loader.archive) as dash:
            url = dash.url + "/api/workflow/1"
            barrier = threading.Barrier(8)
            bodies = []
            errors = []

            def fetch():
                barrier.wait(5)
                try:
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        bodies.append(resp.read())
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=fetch) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            assert not errors
            assert len(set(bodies)) == 1  # every viewer saw the same payload
            stats = dash.data.cache.stats()
            assert stats["misses"] == 1
            assert stats["hits"] == 7

    def test_sse_over_http(self, loader):
        with Dashboard(loader.archive) as dash:
            with urllib.request.urlopen(
                dash.url + "/api/workflow/1/stream?timeout=0.1", timeout=10
            ) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == "text/event-stream"
                frames = _split_frames(resp.read())
            assert [_parse_frame(f)[0] for f in frames] == ["progress", "idle"]
            _, _, data = _parse_frame(frames[0])
            assert data["wf_id"] == 1

    def test_global_stream_lists_all_workflows(self, loader):
        loader.process_all(diamond_events(xwf=XWF2))
        with Dashboard(loader.archive) as dash:
            with urllib.request.urlopen(
                dash.url + "/api/stream?limit=1", timeout=10
            ) as resp:
                frames = _split_frames(resp.read())
            _, _, data = _parse_frame(frames[0])
            assert len(data["workflows"]) == 2

    def test_client_disconnect_leaves_server_healthy(self, loader):
        with Dashboard(loader.archive) as dash:
            host, port = dash.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/api/workflow/1/stream?timeout=1")
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.read(16)  # first frame started flowing
            conn.close()  # hang up mid-stream
            # the handler swallows the broken pipe; the server keeps serving
            with urllib.request.urlopen(
                dash.url + "/api/workflows", timeout=10
            ) as after:
                assert after.status == 200

    def test_long_poll(self, loader):
        with Dashboard(loader.archive) as dash:
            # since=-1: immediate snapshot
            with urllib.request.urlopen(
                dash.url + "/api/workflow/1/poll?since=-1", timeout=10
            ) as resp:
                data = json.loads(resp.read())
            assert data["state"] == "success"
            seq = data["commit_seq"]
            assert seq > 0
            # since=current: blocks for the timeout, then returns unchanged
            start = time.monotonic()
            with urllib.request.urlopen(
                dash.url + f"/api/poll?since={seq}&timeout=0.2", timeout=10
            ) as resp:
                data = json.loads(resp.read())
            assert time.monotonic() - start >= 0.2
            assert data["commit_seq"] == seq

    def test_stream_error_contract(self, loader):
        with Dashboard(loader.archive) as dash:
            for path, code in (
                ("/api/workflow/999/stream", 404),
                ("/api/workflow/999/poll", 404),
                ("/api/workflow/1/stream?limit=abc", 400),
            ):
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(dash.url + path, timeout=10)
                assert err.value.code == code, path

    def test_metrics_under_streaming_load(self, loader):
        registry = MetricsRegistry()
        with Dashboard(loader.archive, metrics=registry) as dash:
            for _ in range(3):
                urllib.request.urlopen(
                    dash.url + "/api/workflows", timeout=10
                ).read()
            for _ in range(2):
                urllib.request.urlopen(
                    dash.url + "/api/workflow/1/stream?limit=1", timeout=10
                ).read()
            with urllib.request.urlopen(dash.url + "/metrics", timeout=10) as resp:
                body = resp.read().decode()
        for name in (
            "stampede_dashboard_cache_hits_total",
            "stampede_dashboard_cache_misses_total",
            "stampede_dashboard_streams_total",
            "stampede_dashboard_stream_events_total",
            "stampede_rollup_commit_seq",
            "stampede_rollup_lag_seconds",
        ):
            assert name in body, name
        assert "stampede_dashboard_cache_hits_total 2" in body
        assert "stampede_dashboard_streams_total 2" in body


class TestDashboardDataCaching:
    def test_every_payload_routes_through_cache(self, loader):
        data = DashboardData(loader.archive)
        data.workflows_payload()
        data.workflow_payload(1)
        data.jobs_payload(1)
        data.progress_payload(1)
        data.gantt_payload(1)
        data.anomalies_payload(1)
        misses = data.cache.stats()["misses"]
        # a second identical round costs nothing new
        data.workflows_payload()
        data.workflow_payload(1)
        data.jobs_payload(1)
        data.progress_payload(1)
        data.gantt_payload(1)
        data.anomalies_payload(1)
        stats = data.cache.stats()
        assert stats["misses"] == misses == 6
        assert stats["hits"] == 6
