"""Remaining TrianaCloud broker behaviours: dispatch latency, pending
accounting, and per-node bundle concurrency limits."""
import pytest

from repro.triana.appender import MemoryAppender
from repro.triana.bundles import WorkflowBundle
from repro.triana.cloud import TrianaCloudBroker
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import ConstantUnit, ExecUnit
from repro.util.simclock import SimClock


def tiny_bundle(name):
    g = TaskGraph(name)
    src = g.add(ConstantUnit("src", 1))
    e = g.add(ExecUnit("e", ["run"], base_seconds=10.0))
    g.connect(src, e)
    return WorkflowBundle.from_graph(g)


class TestBrokerBehaviour:
    def test_dispatch_latency_delays_start(self):
        clock = SimClock()
        broker = TrianaCloudBroker(
            clock, MemoryAppender(), n_nodes=1, dispatch_latency=2.5
        )
        broker.submit(tiny_bundle("b0").to_json())
        clock.run()
        (run,) = broker.runs
        assert run.started_at >= run.submitted_at + 2.5

    def test_pending_count_tracks_lifecycle(self):
        clock = SimClock()
        broker = TrianaCloudBroker(clock, MemoryAppender(), n_nodes=1)
        broker.submit(tiny_bundle("b0").to_json())
        broker.submit(tiny_bundle("b1").to_json())
        assert broker.pending_count() == 2  # both queued, none started
        clock.run()
        assert broker.pending_count() == 0
        assert broker.all_done

    def test_all_done_false_before_submissions(self):
        broker = TrianaCloudBroker(SimClock(), MemoryAppender())
        assert not broker.all_done  # vacuous truth excluded

    def test_node_capacity_respected(self):
        clock = SimClock()
        broker = TrianaCloudBroker(
            clock, MemoryAppender(), n_nodes=2, bundles_per_node=2
        )
        for i in range(6):
            broker.submit(tiny_bundle(f"b{i}").to_json())
        # drive time forward step by step, checking the invariant
        while clock.peek() is not None:
            clock.step()
            for node in broker.nodes:
                assert node.active_bundles <= node.bundles_per_node
        assert sum(n.bundles_executed for n in broker.nodes) == 6

    def test_deterministic_assignment(self):
        def run_once():
            clock = SimClock()
            broker = TrianaCloudBroker(clock, MemoryAppender(), n_nodes=3,
                                       seed=5)
            for i in range(5):
                broker.submit(tiny_bundle(f"b{i}").to_json())
            clock.run()
            return [(r.bundle.name, r.node.name, r.finished_at)
                    for r in broker.runs]

        assert run_once() == run_once()
