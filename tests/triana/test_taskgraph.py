import pytest

from repro.triana.taskgraph import Cable, Task, TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, GatherUnit


def make_graph():
    g = TaskGraph("g")
    src = g.add(ConstantUnit("src", [1, 2, 3]))
    mid = g.add(CallableUnit("mid", lambda ins: sum(ins[0])))
    sink = g.add(GatherUnit("sink"))
    g.connect(src, mid)
    g.connect(mid, sink)
    return g, src, mid, sink


class TestTaskGraph:
    def test_add_and_lookup(self):
        g, src, mid, sink = make_graph()
        assert len(g) == 3
        assert "mid" in g
        assert g["mid"] is mid

    def test_duplicate_name_rejected(self):
        g = TaskGraph("g")
        g.add(ConstantUnit("x", 1))
        with pytest.raises(ValueError):
            g.add(ConstantUnit("x", 2))

    def test_connect_foreign_task_rejected(self):
        g1 = TaskGraph("g1")
        g2 = TaskGraph("g2")
        a = g1.add(ConstantUnit("a", 1))
        b = g2.add(GatherUnit("b"))
        with pytest.raises(ValueError):
            g1.connect(a, b)

    def test_edges(self):
        g, *_ = make_graph()
        assert g.edges() == [("src", "mid"), ("mid", "sink")]

    def test_sources_and_sinks(self):
        g, src, mid, sink = make_graph()
        assert g.sources() == [src]
        assert g.sinks() == [sink]

    def test_is_dag(self):
        g, src, mid, sink = make_graph()
        assert g.is_dag()
        g.connect(sink, src)
        assert not g.is_dag()

    def test_subgraph_nesting_walk(self):
        parent = TaskGraph("parent")
        child = TaskGraph("child")
        grandchild = TaskGraph("grandchild")
        child.add_subgraph(grandchild)
        parent.add_subgraph(child)
        names = [g.name for g in parent.walk()]
        assert names == ["parent", "child", "grandchild"]
        assert grandchild.parent is child

    def test_cable_fifo(self):
        g, src, mid, sink = make_graph()
        cable = src.out_cables[0]
        cable.send("a")
        cable.send("b")
        assert cable.has_data()
        assert len(cable) == 2
        assert cable.receive() == "a"
        assert cable.receive() == "b"
        assert not cable.has_data()

    def test_inputs_ready_and_take(self):
        g, src, mid, sink = make_graph()
        assert not mid.inputs_ready()
        src.broadcast([5])
        assert mid.inputs_ready()
        assert mid.take_inputs() == [[5]]
        assert not mid.inputs_ready()

    def test_multi_input_ports(self):
        g = TaskGraph("g")
        a = g.add(ConstantUnit("a", 1))
        b = g.add(ConstantUnit("b", 2))
        j = g.add(GatherUnit("j"))
        g.connect(a, j)
        g.connect(b, j)
        assert [c.sink_port for c in j.in_cables] == [0, 1]
        a.broadcast(1)
        assert not j.inputs_ready()  # b hasn't produced
        b.broadcast(2)
        assert j.inputs_ready()
        assert j.take_inputs() == [1, 2]
