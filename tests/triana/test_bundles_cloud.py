import pytest

from repro.triana.appender import MemoryAppender
from repro.triana.bundles import BundleError, WorkflowBundle
from repro.triana.cloud import TrianaCloudBroker
from repro.triana.scheduler import Scheduler
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, ExecUnit, GatherUnit, ZipperUnit
from repro.util.simclock import SimClock


def bundleable_graph(name="bg"):
    g = TaskGraph(name)
    src = g.add(ConstantUnit("src", [1, 2]))
    e0 = g.add(ExecUnit("e0", ["run", "--x", "1"], base_seconds=5.0))
    e1 = g.add(ExecUnit("e1", ["run", "--x", "2"], base_seconds=5.0))
    z = g.add(ZipperUnit("zip"))
    g.connect(src, e0)
    g.connect(src, e1)
    g.connect(e0, z)
    g.connect(e1, z)
    return g


class TestBundles:
    def test_roundtrip_structure(self):
        bundle = WorkflowBundle.from_graph(bundleable_graph())
        rebuilt = bundle.to_graph()
        assert rebuilt.name == "bg"
        assert len(rebuilt) == 4
        assert set(rebuilt.edges()) == set(bundleable_graph().edges())

    def test_json_roundtrip(self):
        bundle = WorkflowBundle.from_graph(
            bundleable_graph(), parent_xwf_id="p", root_xwf_id="r",
            params={"k": 1},
        )
        back = WorkflowBundle.from_json(bundle.to_json())
        assert back.name == bundle.name
        assert back.parent_xwf_id == "p"
        assert back.root_xwf_id == "r"
        assert back.params == {"k": 1}
        assert back.task_count == 4

    def test_rebuilt_graph_executes(self):
        bundle = WorkflowBundle.from_graph(bundleable_graph())
        report = Scheduler(bundle.to_graph(), seed=0).run()
        assert report.ok
        assert report.completed == 4

    def test_exec_unit_params_survive(self):
        bundle = WorkflowBundle.from_graph(bundleable_graph())
        rebuilt = bundle.to_graph()
        assert rebuilt["e0"].unit.argv == ["run", "--x", "1"]
        assert rebuilt["e0"].unit.base_seconds == 5.0

    def test_uncodeced_unit_rejected(self):
        g = TaskGraph("g")
        g.add(CallableUnit("fn", lambda ins: None))
        with pytest.raises(BundleError):
            WorkflowBundle.from_graph(g)

    def test_unknown_type_in_spec_rejected(self):
        bundle = WorkflowBundle.from_graph(bundleable_graph())
        bundle.graph_spec["tasks"][0]["type"] = "martian"
        with pytest.raises(BundleError):
            bundle.to_graph()


class TestCloudBroker:
    def test_bundles_distributed_across_nodes(self):
        clock = SimClock()
        sink = MemoryAppender()
        broker = TrianaCloudBroker(clock, sink, n_nodes=2, slots_per_bundle=2)
        for i in range(4):
            bundle = WorkflowBundle.from_graph(
                bundleable_graph(f"b{i}"), root_xwf_id="root"
            )
            broker.submit(bundle.to_json())
        clock.run()
        assert broker.all_done
        assert len(broker.runs) == 4
        assert all(r.report.ok for r in broker.runs)
        sites = {r.node.name for r in broker.runs}
        assert sites == {"trianaworker0", "trianaworker1"}

    def test_queueing_when_nodes_busy(self):
        clock = SimClock()
        broker = TrianaCloudBroker(
            clock, MemoryAppender(), n_nodes=1, bundles_per_node=1
        )
        for i in range(3):
            bundle = WorkflowBundle.from_graph(bundleable_graph(f"b{i}"))
            broker.submit(bundle.to_json())
        clock.run()
        starts = sorted(r.started_at for r in broker.runs)
        # serial execution on the single node: starts strictly increase
        assert starts[0] < starts[1] < starts[2]
        assert broker.nodes[0].bundles_executed == 3

    def test_bundles_per_node_concurrency(self):
        clock = SimClock()
        broker = TrianaCloudBroker(
            clock, MemoryAppender(), n_nodes=1, bundles_per_node=3
        )
        for i in range(3):
            broker.submit(WorkflowBundle.from_graph(bundleable_graph(f"b{i}")).to_json())
        clock.run()
        starts = [r.started_at for r in broker.runs]
        # all three run concurrently on the oversubscribed node
        assert max(starts) - min(starts) < 2.0

    def test_on_all_done_fires_once(self):
        clock = SimClock()
        broker = TrianaCloudBroker(clock, MemoryAppender(), n_nodes=2)
        calls = []
        broker.on_all_done(lambda: calls.append(clock.now))
        for i in range(2):
            broker.submit(WorkflowBundle.from_graph(bundleable_graph(f"b{i}")).to_json())
        clock.run()
        assert len(calls) == 1

    def test_events_carry_node_hostnames(self):
        clock = SimClock()
        sink = MemoryAppender()
        broker = TrianaCloudBroker(clock, sink, n_nodes=1)
        broker.submit(WorkflowBundle.from_graph(bundleable_graph()).to_json())
        clock.run()
        host_events = [
            e for e in sink.events if e.event == "stampede.job_inst.host.info"
        ]
        assert host_events
        assert all(str(e["hostname"]) == "trianaworker0" for e in host_events)

    def test_run_results_retained(self):
        clock = SimClock()
        broker = TrianaCloudBroker(clock, MemoryAppender(), n_nodes=1)
        broker.submit(WorkflowBundle.from_graph(bundleable_graph()).to_json())
        clock.run()
        (run,) = broker.runs
        assert "zip" in run.results
