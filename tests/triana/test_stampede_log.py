import pytest

from repro.loader import load_events
from repro.model.entities import InvocationRow, JobRow, TaskRow, WorkflowRow
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA, Events
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, FailingUnit, GatherUnit
from repro.util.uuidgen import derive_uuid

XWF = derive_uuid("tests", "triana-log")


def run_logged(graph, xwf=XWF, **log_kwargs):
    sink = MemoryAppender()
    sched = Scheduler(graph, seed=1)
    log = StampedeLog(sched, sink, xwf_id=xwf, **log_kwargs)
    report = sched.run()
    return sink.events, report, log


def small_graph():
    g = TaskGraph("small")
    a = g.add(ConstantUnit("a", [1]))
    b = g.add(CallableUnit("b", lambda ins: ins[0]))
    g.connect(a, b)
    return g


class TestStampedeLogStream:
    def test_all_events_schema_valid(self):
        events, _, _ = run_logged(small_graph())
        validator = EventValidator(STAMPEDE_SCHEMA)
        report = validator.validate(events)
        assert report.ok, report.violations[:5]

    def test_static_before_execution(self):
        events, _, _ = run_logged(small_graph())
        names = [e.event for e in events]
        static_end = names.index(Events.STATIC_END)
        first_exec = names.index(Events.JOB_INST_SUBMIT_START)
        assert static_end < first_exec
        assert names[0] == Events.WF_PLAN
        assert names[-1] == Events.XWF_END

    def test_one_to_one_task_job_mapping(self):
        events, _, _ = run_logged(small_graph())
        maps = [e for e in events if e.event == Events.MAP_TASK_JOB]
        assert {(str(e["task.id"]), str(e["job.id"])) for e in maps} == {
            ("a", "a"),
            ("b", "b"),
        }

    def test_invocation_per_task(self):
        events, _, _ = run_logged(small_graph())
        inv_ends = [e for e in events if e.event == Events.INV_END]
        assert len(inv_ends) == 2
        for e in inv_ends:
            assert float(e["dur"]) > 0
            assert int(e["exitcode"]) == 0

    def test_error_sets_minus_one_codes(self):
        g = TaskGraph("bad")
        src = g.add(ConstantUnit("src", 1))
        bad = g.add(FailingUnit("bad", message="kaboom"))
        g.connect(src, bad)
        events, report, _ = run_logged(g)
        assert not report.ok
        inv = next(
            e for e in events
            if e.event == Events.INV_END and str(e["job.id"]) == "bad"
        )
        assert int(e_status := inv["status"]) == -1
        main_end = next(
            e for e in events
            if e.event == Events.JOB_INST_MAIN_END and str(e["job.id"]) == "bad"
        )
        assert int(main_end["status"]) == -1
        assert "kaboom" in str(main_end.get("stderr.text", ""))
        xwf_end = next(e for e in events if e.event == Events.XWF_END)
        assert int(xwf_end["status"]) == -1

    def test_pause_emits_held_events(self):
        g = small_graph()
        sink = MemoryAppender()
        sched = Scheduler(g, seed=1)
        StampedeLog(sched, sink, xwf_id=XWF)
        sched.start()
        sched.pause()
        sched.resume()
        sched.clock.run()
        sched.finalize()
        names = [e.event for e in sink.events]
        assert Events.JOB_INST_HELD_START in names
        assert Events.JOB_INST_HELD_END in names
        assert names.index(Events.JOB_INST_HELD_START) < names.index(
            Events.JOB_INST_HELD_END
        )

    def test_stop_emits_abort(self):
        g = small_graph()
        sink = MemoryAppender()
        sched = Scheduler(g, seed=1)
        StampedeLog(sched, sink, xwf_id=XWF)
        sched.start()
        sched.stop()
        sched.clock.run()
        names = [e.event for e in sink.events]
        assert Events.JOB_INST_ABORT_INFO in names
        xwf_end = next(e for e in sink.events if e.event == Events.XWF_END)
        assert int(xwf_end["status"]) == -1

    def test_parent_uuid_recorded(self):
        events, _, _ = run_logged(
            small_graph(), parent_xwf_id=derive_uuid("tests", "parent")
        )
        plan = next(e for e in events if e.event == Events.WF_PLAN)
        assert str(plan["parent.xwf.id"]) == derive_uuid("tests", "parent")


class TestLoadability:
    def test_loads_into_archive(self):
        events, _, _ = run_logged(small_graph())
        loader = load_events(events)
        assert loader.archive.count(WorkflowRow) == 1
        assert loader.archive.count(TaskRow) == 2
        assert loader.archive.count(JobRow) == 2
        assert loader.archive.count(InvocationRow) == 2

    def test_query_metrics_after_run(self):
        events, report, _ = run_logged(small_graph())
        loader = load_events(events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        wall = q.workflow_wall_time(wf.wf_id)
        assert wall == pytest.approx(report.wall_time, abs=0.2)
        details = q.job_details(wf.wf_id)
        assert len(details) == 2
        for d in details:
            assert d.exitcode == 0
            assert d.runtime > 0
            assert d.hostname == "localhost"
            assert d.queue_time is not None and d.queue_time >= 0
