import pytest

from repro.triana.bundles import BundleError
from repro.triana.scheduler import Scheduler
from repro.triana.taskgraph import TaskGraph
from repro.triana.taskgraph_xml import (
    parse_taskgraph_xml,
    read_taskgraph,
    taskgraph_to_xml,
    write_taskgraph,
)
from repro.triana.unit import CallableUnit, ConstantUnit, ExecUnit, GatherUnit, ZipperUnit


def sample_graph():
    g = TaskGraph("xmlsample")
    src = g.add(ConstantUnit("src", [1, 2, {"nested": True}]))
    e0 = g.add(ExecUnit("e0", ["run", "--x=1"], base_seconds=7.5))
    z = g.add(ZipperUnit("zip"))
    g.connect(src, e0)
    g.connect(e0, z)
    return g


class TestTaskgraphXml:
    def test_roundtrip_structure(self):
        g = sample_graph()
        back = parse_taskgraph_xml(taskgraph_to_xml(g))
        assert back.name == g.name
        assert {t.name for t in back.tasks()} == {t.name for t in g.tasks()}
        assert set(back.edges()) == set(g.edges())

    def test_unit_parameters_roundtrip(self):
        back = parse_taskgraph_xml(taskgraph_to_xml(sample_graph()))
        assert back["src"].unit.value == [1, 2, {"nested": True}]
        assert back["e0"].unit.argv == ["run", "--x=1"]
        assert back["e0"].unit.base_seconds == 7.5

    def test_roundtripped_graph_executes(self):
        back = parse_taskgraph_xml(taskgraph_to_xml(sample_graph()))
        report = Scheduler(back, seed=0).run()
        assert report.ok
        assert report.completed == 3

    def test_nested_subgraphs(self):
        parent = sample_graph()
        child = TaskGraph("child")
        child.add(GatherUnit("g"))
        parent.add_subgraph(child)
        back = parse_taskgraph_xml(taskgraph_to_xml(parent))
        assert [s.name for s in back.subgraphs] == ["child"]
        assert "g" in back.subgraphs[0]
        assert back.subgraphs[0].parent is back

    def test_file_io(self, tmp_path):
        path = write_taskgraph(sample_graph(), tmp_path / "wf.xml")
        back = read_taskgraph(path)
        assert back.name == "xmlsample"
        assert (tmp_path / "wf.xml").read_text().startswith("<?xml")

    def test_uncodeced_unit_rejected(self):
        g = TaskGraph("bad")
        g.add(CallableUnit("fn", lambda ins: None))
        with pytest.raises(BundleError):
            taskgraph_to_xml(g)

    def test_non_taskgraph_rejected(self):
        with pytest.raises(BundleError):
            parse_taskgraph_xml("<other/>")

    def test_unknown_unit_type_rejected(self):
        xml = taskgraph_to_xml(sample_graph()).replace(
            'type="constant"', 'type="martian"'
        )
        with pytest.raises(BundleError):
            parse_taskgraph_xml(xml)
