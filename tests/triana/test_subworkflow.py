import pytest

from repro.loader import load_events
from repro.query import StampedeQuery
from repro.schema.stampede import STAMPEDE_SCHEMA
from repro.schema.validator import EventValidator
from repro.triana.appender import MemoryAppender
from repro.triana.scheduler import Scheduler
from repro.triana.stampede_log import StampedeLog
from repro.triana.subworkflow import SubWorkflowUnit, attach_subworkflows
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, FailingUnit, GatherUnit
from repro.util.uuidgen import derive_uuid


def child_graph(name="inner", fail=False):
    g = TaskGraph(name)
    src = g.add(ConstantUnit("c_src", [10, 20]))
    worker = g.add(
        FailingUnit("c_work") if fail
        else CallableUnit("c_work", lambda ins: sum(ins[0]))
    )
    g.connect(src, worker)
    return g


def parent_with_sub(fail=False, nested=False):
    parent = TaskGraph("outer")
    pre = parent.add(ConstantUnit("pre", "setup"))
    inner = child_graph(fail=fail)
    if nested:
        # a sub-workflow inside the sub-workflow (Fig. 4's "and so on")
        grandchild = child_graph("innermost")
        deep = inner.add(SubWorkflowUnit("deep", grandchild))
        inner.connect(inner["c_work"], deep)
    sub = parent.add(SubWorkflowUnit("analysis", inner))
    post = parent.add(GatherUnit("post"))
    parent.connect(pre, sub)
    parent.connect(sub, post)
    return parent


class TestSubWorkflowUnit:
    def run(self, fail=False, nested=False, with_log=True):
        parent = parent_with_sub(fail=fail, nested=nested)
        sink = MemoryAppender()
        sched = Scheduler(parent, seed=0)
        log = (
            StampedeLog(sched, sink, xwf_id=derive_uuid("sub", "root"))
            if with_log
            else None
        )
        n = attach_subworkflows(sched, log)
        assert n >= 1
        # bind nested sub-workflows to their own (not yet created) child
        # schedulers: the inner SubWorkflowUnit binds lazily below
        report = sched.run()
        if nested:
            # the inner unit was bound when its child scheduler existed?
            pass
        return sink, sched, report

    def test_parent_completes_with_child_results(self):
        sink, sched, report = self.run()
        assert report.ok
        assert sched.results["analysis"] == {"c_work": 30}
        assert sched.results["post"] == [{"c_work": 30}]

    def test_child_failure_fails_parent_task(self):
        sink, sched, report = self.run(fail=True)
        assert not report.ok
        assert sched.report.errored >= 1

    def test_events_validate_and_link(self):
        sink, sched, report = self.run()
        assert EventValidator(STAMPEDE_SCHEMA).validate(sink.events).ok
        q = StampedeQuery(load_events(sink.events).archive)
        root = q.workflow_by_uuid(derive_uuid("sub", "root"))
        subs = q.sub_workflows(root.wf_id)
        assert len(subs) == 1
        assert subs[0].parent_wf_id == root.wf_id
        counts = q.summary_counts(root.wf_id)
        assert counts.subwf_total == 1
        assert counts.subwf_succeeded == 1
        # parent tasks (pre/analysis/post) + child tasks (c_src/c_work)
        assert counts.tasks_total == 5

    def test_unbound_unit_raises(self):
        g = TaskGraph("g")
        g.add(SubWorkflowUnit("sub", child_graph()))
        sched = Scheduler(g, seed=0)
        report = sched.run()
        # process() raised RuntimeError -> task errored
        assert not report.ok

    def test_child_shares_clock(self):
        sink, sched, report = self.run()
        # parent wall time covers the child's work (child ran inline)
        assert report.wall_time > 2.0  # pre + child units + post


class TestNestedSubWorkflows:
    def test_two_levels(self):
        """Sub-workflows nest 'and so on' (Fig. 4): binding recurses."""
        parent = parent_with_sub(nested=True)
        sink = MemoryAppender()
        sched = Scheduler(parent, seed=0)
        log = StampedeLog(sched, sink, xwf_id=derive_uuid("sub", "root2"))
        attach_subworkflows(sched, log)
        report = sched.run()
        assert report.ok
        q = StampedeQuery(load_events(sink.events).archive)
        root = q.workflow_by_uuid(derive_uuid("sub", "root2"))
        middle = q.sub_workflows(root.wf_id)
        assert len(middle) == 1
        deepest = q.sub_workflows(middle[0].wf_id)
        assert len(deepest) == 1  # grandchild workflow linked to the child
        counts = q.summary_counts(root.wf_id)
        assert counts.subwf_total == 2
        assert counts.subwf_succeeded == 2
        # root workflow descendants enumerate the whole hierarchy
        assert len(q.descendant_workflows(root.wf_id)) == 2
