import numpy as np
import pytest

from repro.triana.execution import ExecutionState
from repro.triana.scheduler import Scheduler
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import (
    CallableUnit,
    ConstantUnit,
    FailingUnit,
    GatherUnit,
    StreamSourceUnit,
    ThresholdSinkUnit,
)


def pipeline_graph():
    g = TaskGraph("pipe")
    src = g.add(ConstantUnit("src", [1, 2, 3]))
    double = g.add(CallableUnit("double", lambda ins: [x * 2 for x in ins[0]]))
    total = g.add(CallableUnit("total", lambda ins: sum(ins[0])))
    g.connect(src, double)
    g.connect(double, total)
    return g


class TestSingleStep:
    def test_pipeline_result(self):
        sched = Scheduler(pipeline_graph())
        report = sched.run()
        assert report.ok
        assert report.completed == 3
        assert report.invocations == 3
        assert sched.results["total"] == 12
        assert report.final_state is ExecutionState.COMPLETE

    def test_deterministic_given_seed(self):
        r1 = Scheduler(pipeline_graph(), seed=5).run()
        r2 = Scheduler(pipeline_graph(), seed=5).run()
        assert r1.wall_time == r2.wall_time

    def test_wall_time_accounts_durations(self):
        sched = Scheduler(pipeline_graph())
        report = sched.run()
        # three 1-second units in sequence plus scheduling overheads
        assert 3.0 < report.wall_time < 4.0

    def test_diamond_parallelism(self):
        g = TaskGraph("d")
        a = g.add(ConstantUnit("a", 1))
        b = g.add(CallableUnit("b", lambda ins: ins[0], seconds=5.0))
        c = g.add(CallableUnit("c", lambda ins: ins[0], seconds=5.0))
        d = g.add(GatherUnit("d"))
        g.connect(a, b)
        g.connect(a, c)
        g.connect(b, d)
        g.connect(c, d)
        report = Scheduler(g).run()
        # b and c run in parallel: ~1 + 5 + 1, far less than serial 12
        assert report.wall_time < 8.5

    def test_max_concurrent_serializes(self):
        g = TaskGraph("f")
        src = g.add(ConstantUnit("src", 0))
        for i in range(4):
            w = g.add(CallableUnit(f"w{i}", lambda ins: None, seconds=10.0))
            g.connect(src, w)
        limited = Scheduler(g, max_concurrent=1).run()
        parallel = Scheduler(TaskGraph("f2"), max_concurrent=None)
        # rebuild for the parallel case
        g2 = TaskGraph("f2")
        src2 = g2.add(ConstantUnit("src", 0))
        for i in range(4):
            w = g2.add(CallableUnit(f"w{i}", lambda ins: None, seconds=10.0))
            g2.connect(src2, w)
        free = Scheduler(g2).run()
        assert limited.wall_time > 40.0
        assert free.wall_time < 13.0

    def test_loop_rejected_in_single_step(self):
        g = TaskGraph("loop")
        a = g.add(CallableUnit("a", lambda ins: 1))
        b = g.add(CallableUnit("b", lambda ins: 2))
        g.connect(a, b)
        g.connect(b, a)
        with pytest.raises(ValueError):
            Scheduler(g, mode="single-step")

    def test_failure_marks_error_and_deadlocks_downstream(self):
        g = TaskGraph("fail")
        src = g.add(ConstantUnit("src", 1))
        bad = g.add(FailingUnit("bad"))
        after = g.add(GatherUnit("after"))
        g.connect(src, bad)
        g.connect(bad, after)
        sched = Scheduler(g)
        report = sched.run()
        assert not report.ok
        assert report.errored == 1
        assert sched.instances["bad"].state is ExecutionState.ERROR
        assert sched.instances["after"].state is ExecutionState.SCHEDULED
        assert report.final_state is ExecutionState.ERROR

    def test_stop_button(self):
        g = pipeline_graph()
        sched = Scheduler(g)
        sched.start()
        sched.stop()
        sched.clock.run()
        sched.finalize()
        assert sched.report.aborted >= 1
        assert sched.graph_emitter.state is ExecutionState.SUSPENDED

    def test_pause_resume(self):
        g = pipeline_graph()
        sched = Scheduler(g)
        sched.start()
        sched.pause()
        # nothing not-yet-running proceeds while paused
        paused_states = [i.state for i in sched.instances.values()]
        assert ExecutionState.PAUSED in paused_states
        sched.resume()
        sched.clock.run()
        sched.finalize()
        assert sched.report.ok
        assert sched.results["total"] == 12

    def test_execution_event_stream(self):
        events = []
        sched = Scheduler(pipeline_graph())
        sched.add_execution_listener(events.append)
        sched.run()
        names = {e.task_name for e in events}
        assert names == {"pipe", "src", "double", "total"}
        graph_transitions = [
            (e.old_state, e.new_state) for e in events if e.task_name == "pipe"
        ]
        assert graph_transitions[0] == (
            ExecutionState.NOT_INITIALIZED,
            ExecutionState.SCHEDULED,
        )
        assert graph_transitions[-1][1] is ExecutionState.COMPLETE

    def test_invocation_records(self):
        records = []
        sched = Scheduler(pipeline_graph())
        sched.add_invocation_listener(records.append)
        sched.run()
        assert len(records) == 3
        assert all(r.exitcode == 0 for r in records)
        assert {r.task_name for r in records} == {"src", "double", "total"}
        for r in records:
            assert r.duration > 0
            assert r.inv_seq == 1


class TestContinuous:
    def test_stream_multiple_invocations(self):
        g = TaskGraph("stream")
        src = g.add(StreamSourceUnit("src", [1.0, 2.0, 3.0, 4.0]))
        sink = g.add(ThresholdSinkUnit("sink", threshold=100.0))
        g.connect(src, sink)
        sched = Scheduler(g, mode="continuous")
        records = []
        sched.add_invocation_listener(records.append)
        report = sched.run()
        assert report.ok
        sink_invocations = [r for r in records if r.task_name == "sink"]
        assert len(sink_invocations) == 4  # one invocation per chunk
        assert sched.results["sink"] == 10.0

    def test_threshold_releases_workflow(self):
        g = TaskGraph("released")
        src = g.add(StreamSourceUnit("src", [50.0] * 100))
        sink = g.add(ThresholdSinkUnit("sink", threshold=100.0))
        g.connect(src, sink)
        sched = Scheduler(g, mode="continuous")
        report = sched.run()
        assert report.ok
        # released once the threshold was reached: far fewer than 100 chunks
        assert sched.instances["sink"].invocations <= 4
        assert sched.results["sink"] >= 100.0

    def test_loop_allowed_in_continuous(self):
        g = TaskGraph("loop")
        a = g.add(StreamSourceUnit("a", [1]))
        b = g.add(CallableUnit("b", lambda ins: ins[0]))
        g.connect(a, b)
        g.connect(b, a)  # feedback cable
        # construction should not raise in continuous mode
        Scheduler(g, mode="continuous")

    def test_single_step_counts_one_invocation_per_task(self):
        sched = Scheduler(pipeline_graph())
        report = sched.run()
        assert report.invocations == report.completed
