import pytest

from repro.bus.broker import Broker
from repro.bus.client import EventConsumer
from repro.netlogger.events import NLEvent
from repro.netlogger.stream import read_events
from repro.triana.appender import (
    AppenderRegistry,
    LogFileAppender,
    MemoryAppender,
    RabbitAppender,
    default_registry,
)


class TestAppenders:
    def test_rabbit_appender_publishes(self):
        broker = Broker()
        consumer = EventConsumer(broker, "stampede.#")
        appender = RabbitAppender(broker)
        appender.emit(NLEvent("stampede.xwf.start", 1.0, {"restart_count": 0}))
        assert len(consumer.drain()) == 1
        assert appender.events_published == 1

    def test_logfile_appender(self, tmp_path):
        path = tmp_path / "triana.log"
        appender = LogFileAppender(path)
        appender.emit(NLEvent("stampede.xwf.start", 1.0, {"restart_count": 0}))
        appender.close()
        (event,) = read_events(path)
        assert event.event == "stampede.xwf.start"

    def test_memory_appender(self):
        appender = MemoryAppender()
        appender.emit(NLEvent("a.b", 1.0))
        appender.emit(NLEvent("c.d", 2.0))
        assert len(appender) == 2
        assert [e.event for e in appender] == ["a.b", "c.d"]


class TestRegistry:
    def test_default_registry_names(self):
        registry = default_registry()
        assert registry.names() == ["file", "memory", "multi", "rabbit"]

    def test_create_by_name(self, tmp_path):
        registry = default_registry()
        mem = registry.create("memory")
        assert isinstance(mem, MemoryAppender)
        rabbit = registry.create("rabbit", broker=Broker())
        assert isinstance(rabbit, RabbitAppender)
        file_app = registry.create("file", path=tmp_path / "x.log")
        assert isinstance(file_app, LogFileAppender)
        file_app.close()

    def test_multi_composes(self):
        registry = default_registry()
        a, b = MemoryAppender(), MemoryAppender()
        multi = registry.create("multi", sinks=[a, b])
        multi.emit(NLEvent("x.y", 0.0))
        assert len(a) == 1 and len(b) == 1

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            default_registry().create("syslog")

    def test_duplicate_registration(self):
        registry = AppenderRegistry()
        registry.register("m", MemoryAppender)
        with pytest.raises(ValueError):
            registry.register("m", MemoryAppender)
