"""Edge cases of the Triana scheduler: external units, multi-sink fan-out,
unit exceptions beyond UnitError, and deep graphs."""
import numpy as np
import pytest

from repro.triana.execution import ExecutionState
from repro.triana.scheduler import Scheduler
from repro.triana.taskgraph import TaskGraph
from repro.triana.unit import CallableUnit, ConstantUnit, GatherUnit, Unit


class ExternalUnit(Unit):
    """Minimal externally-completed unit for direct scheduler tests."""

    external = True

    def __init__(self, name):
        super().__init__(name)
        self.processed = False

    def process(self, inputs):
        self.processed = True
        return "partial"

    def duration(self, inputs, rng):  # pragma: no cover - external path
        return 0.0


class TestExternalUnits:
    def test_external_completion(self):
        g = TaskGraph("ext")
        unit = ExternalUnit("waiter")
        g.add(unit)
        sched = Scheduler(g, seed=0)
        sched.start()
        sched.clock.run()
        # process() ran but the task is still open
        assert unit.processed
        assert sched.instances["waiter"].state is ExecutionState.RUNNING
        sched.clock.schedule(30.0, lambda: sched.complete_external(
            "waiter", result="done"))
        sched.clock.run()
        sched.finalize()
        assert sched.report.ok
        assert sched.results["waiter"] == "done"
        assert sched.report.wall_time >= 30.0

    def test_external_failure(self):
        g = TaskGraph("ext")
        g.add(ExternalUnit("waiter"))
        sched = Scheduler(g, seed=0)
        sched.start()
        sched.clock.run()
        sched.complete_external("waiter", exitcode=1, error_text="broker died")
        sched.clock.run()
        sched.finalize()
        assert not sched.report.ok
        assert sched.instances["waiter"].state is ExecutionState.ERROR

    def test_unknown_external_task(self):
        g = TaskGraph("ext")
        g.add(ExternalUnit("waiter"))
        sched = Scheduler(g, seed=0)
        sched.start()
        sched.clock.run()
        with pytest.raises(KeyError):
            sched.complete_external("nope")


class TestRobustness:
    def test_non_uniterror_exception_is_error_state(self):
        g = TaskGraph("boom")
        src = g.add(ConstantUnit("src", [1]))
        bad = g.add(CallableUnit("bad", lambda ins: 1 / 0))
        g.connect(src, bad)
        sched = Scheduler(g, seed=0)
        records = []
        sched.add_invocation_listener(records.append)
        report = sched.run()
        assert not report.ok
        failure = next(r for r in records if r.task_name == "bad")
        assert "ZeroDivisionError" in failure.error_text

    def test_deep_chain(self):
        g = TaskGraph("deep")
        prev = g.add(ConstantUnit("t0", 0, seconds=0.1))
        for i in range(1, 200):
            cur = g.add(CallableUnit(f"t{i}", lambda ins: ins[0] + 1,
                                     seconds=0.1))
            g.connect(prev, cur)
            prev = cur
        report = Scheduler(g, seed=0).run()
        assert report.ok
        assert report.completed == 200

    def test_wide_fanout(self):
        g = TaskGraph("wide")
        src = g.add(ConstantUnit("src", 1, seconds=0.1))
        sink = g.add(GatherUnit("sink", seconds=0.1))
        for i in range(300):
            w = g.add(CallableUnit(f"w{i}", lambda ins: ins[0], seconds=0.1))
            g.connect(src, w)
            g.connect(w, sink)
        sched = Scheduler(g, seed=0)
        report = sched.run()
        assert report.ok
        assert len(sched.results["sink"]) == 300

    def test_independent_components(self):
        """Two disconnected pipelines in one graph both complete."""
        g = TaskGraph("two")
        a1 = g.add(ConstantUnit("a1", 1))
        a2 = g.add(CallableUnit("a2", lambda ins: ins[0]))
        b1 = g.add(ConstantUnit("b1", 2))
        b2 = g.add(CallableUnit("b2", lambda ins: ins[0]))
        g.connect(a1, a2)
        g.connect(b1, b2)
        report = Scheduler(g, seed=0).run()
        assert report.ok
        assert report.completed == 4

    def test_rng_isolation_between_schedulers(self):
        def build():
            g = TaskGraph("j")
            src = g.add(ConstantUnit("src", 1))
            w = g.add(CallableUnit("w", lambda ins: None, seconds=5.0,
                                   jitter=1.0))
            g.connect(src, w)
            return g

        r1 = Scheduler(build(), rng=np.random.Generator(np.random.PCG64(1))).run()
        r2 = Scheduler(build(), rng=np.random.Generator(np.random.PCG64(2))).run()
        assert r1.wall_time != r2.wall_time
