import pytest

from repro.loader import load_events
from repro.pegasus import PlannerConfig, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import (
    chain,
    cybershake,
    diamond,
    epigenomics,
    fan,
    ligo_inspiral,
    montage,
    random_layered_dag,
)


class TestShapes:
    def test_chain(self):
        aw = chain(5)
        assert len(aw) == 5
        assert len(aw.edges()) == 4
        assert aw.critical_path_seconds() == 50.0
        with pytest.raises(ValueError):
            chain(0)

    def test_diamond(self):
        aw = diamond()
        assert len(aw) == 4
        assert aw.levels()["d"] == 2

    def test_fan(self):
        aw = fan(width=7)
        assert len(aw) == 9
        assert aw.parents("join") == [f"work{i}" for i in range(7)]
        with pytest.raises(ValueError):
            fan(0)

    def test_random_layered_dag_connected_and_acyclic(self):
        aw = random_layered_dag(50, n_layers=6, seed=3)
        assert len(aw) == 50
        aw.topological_order()  # raises on cycles
        levels = aw.levels()
        # every task beyond the first layer has a parent
        for task in aw.tasks():
            if levels[task.task_id] > 0:
                assert aw.parents(task.task_id) or levels[task.task_id] == 0

    def test_random_dag_deterministic(self):
        a = random_layered_dag(30, seed=9)
        b = random_layered_dag(30, seed=9)
        assert a.edges() == b.edges()
        assert [t.runtime_estimate for t in a.tasks()] == [
            t.runtime_estimate for t in b.tasks()
        ]


class TestScienceShapes:
    def test_cybershake_structure(self):
        aw = cybershake(n_ruptures=10, variations_per_rupture=2)
        assert len(aw) == 2 + 2 * 10 * 2 + 1
        # SGTs fan into every synthesis task
        assert len(aw.children("sgt_x")) == 20
        assert aw.parents("hazard_curve")  # all peaks feed the curve
        assert len(aw.parents("hazard_curve")) == 20

    def test_montage_structure(self):
        aw = montage(n_images=8)
        aw.topological_order()
        levels = aw.levels()
        assert levels["mAdd"] > levels["mBgModel"] > levels["mProjectPP_0000"]
        assert aw.leaves() == ["mJPEG"]

    def test_epigenomics_structure(self):
        aw = epigenomics(n_lanes=2, splits_per_lane=3)
        assert len(aw) == 2 * (3 * 5 + 1) + 3
        assert aw.leaves() == ["pileup"]
        # chains inside lanes: map depends transitively on fastqSplit
        assert "fastqSplit_l0_s0" in aw.topological_order()

    def test_ligo_structure(self):
        aw = ligo_inspiral(n_blocks=2, templates_per_block=4)
        assert len(aw) == 2 * (1 + 8 + 1) + 1
        assert aw.leaves() == ["thinca_final"]
        # second-pass inspiral gated by the block coincidence stage
        assert "thinca_b0" in aw.parents("inspiral2_b0_t0")

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: cybershake(n_ruptures=5),
            lambda: montage(n_images=6),
            lambda: epigenomics(n_lanes=2, splits_per_lane=2),
            lambda: ligo_inspiral(n_blocks=2, templates_per_block=2),
        ],
    )
    def test_all_shapes_run_and_load(self, factory):
        aw = factory()
        sink = MemoryAppender()
        run = run_pegasus_workflow(
            aw, sink, planner_config=PlannerConfig(cluster_size=3), seed=1
        )
        assert run.report.ok
        loader = load_events(sink.events)
        q = StampedeQuery(loader.archive)
        wf = q.workflows()[0]
        counts = q.summary_counts(wf.wf_id)
        assert counts.tasks_total == len(aw)
        assert counts.tasks_succeeded == len(aw)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            cybershake(n_ruptures=0)
        with pytest.raises(ValueError):
            montage(n_images=1)
        with pytest.raises(ValueError):
            epigenomics(n_lanes=0)
        with pytest.raises(ValueError):
            ligo_inspiral(n_blocks=0)
