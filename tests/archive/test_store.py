import pytest

from repro.archive import ALL_TABLES, StampedeArchive
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.orm import MemoryDatabase


@pytest.fixture(params=["sqlite", "memory"])
def archive(request):
    if request.param == "sqlite":
        a = StampedeArchive.open("sqlite:///:memory:")
    else:
        a = StampedeArchive(MemoryDatabase())
    yield a
    a.close()


class TestSchema:
    def test_fig3_tables_present(self):
        names = {t.name for t in ALL_TABLES}
        fig3 = {
            "workflow",
            "workflowstate",
            "task",
            "task_edge",
            "job",
            "job_edge",
            "job_instance",
            "jobstate",
            "invocation",
            "host",
            "obs_event",
        }
        rollups = {
            "rollup_workflow",
            "rollup_type",
            "rollup_host",
            "rollup_host_bucket",
            "rollup_meta",
        }
        assert names == fig3 | rollups


class TestStore:
    def test_insert_and_query_workflow(self, archive):
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u-1", dag_file_name="d.dag"))
        row = archive.query(WorkflowRow).eq("wf_uuid", "u-1").first()
        assert row is not None and row.wf_id == 1
        assert row.dag_file_name == "d.dag"

    def test_next_id_sequences(self, archive):
        assert archive.next_id("workflow") == 1
        assert archive.next_id("workflow") == 2
        assert archive.next_id("job") == 1  # independent sequences

    def test_next_id_resumes_after_existing_rows(self):
        a = StampedeArchive.open("sqlite:///:memory:")
        a.insert(WorkflowRow(wf_id=1, wf_uuid="u-1"))
        a.insert(WorkflowRow(wf_id=2, wf_uuid="u-2"))
        assert a.next_id("workflow") == 3

    def test_next_id_seeds_from_max_not_count(self, archive):
        # Non-contiguous ids (deleted rows, partial loads): a count-based
        # seed would reissue id 2 and collide with the live id 5.
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u-1"))
        archive.insert(WorkflowRow(wf_id=5, wf_uuid="u-5"))
        assert archive.next_id("workflow") == 6

    def test_next_id_after_reopening_archive(self, tmp_path):
        path = tmp_path / "reopen.db"
        first = StampedeArchive.open(f"sqlite:///{path}")
        ids = [first.next_id("workflow") for _ in range(3)]
        for i in ids:
            first.insert(WorkflowRow(wf_id=i, wf_uuid=f"u-{i}"))
        first.close()
        second = StampedeArchive.open(f"sqlite:///{path}")
        assert second.next_id("workflow") == 4  # continues, never reissues
        second.close()

    def test_insert_many_mixed_types(self, archive):
        n = archive.insert_many(
            [
                WorkflowRow(wf_id=1, wf_uuid="u"),
                TaskRow(task_id=1, wf_id=1, abs_task_id="t1"),
                TaskRow(task_id=2, wf_id=1, abs_task_id="t2"),
                JobRow(job_id=1, wf_id=1, exec_job_id="j1"),
            ]
        )
        assert n == 4
        assert archive.count(TaskRow) == 2
        assert archive.count(JobRow) == 1

    def test_update(self, archive):
        archive.insert(
            JobInstanceRow(job_instance_id=1, job_id=1, job_submit_seq=1)
        )
        changed = archive.update(
            JobInstanceRow,
            {"exitcode": 0, "local_duration": 4.5},
            {"job_instance_id": 1},
        )
        assert changed == 1
        row = archive.query(JobInstanceRow).eq("job_instance_id", 1).first()
        assert row.exitcode == 0
        assert row.local_duration == 4.5

    def test_entity_query_operators(self, archive):
        for i in range(5):
            archive.insert(
                JobStateRow(job_instance_id=1, state=f"S{i}", timestamp=float(i))
            )
        rows = (
            archive.query(JobStateRow)
            .where("timestamp", ">=", 2.0)
            .order_by("timestamp", descending=True)
            .all()
        )
        assert [r.state for r in rows] == ["S4", "S3", "S2"]

    def test_query_first_none(self, archive):
        assert archive.query(HostRow).eq("host_id", 42).first() is None

    def test_first_does_not_mutate_query(self, archive):
        for i in range(3):
            archive.insert(
                JobStateRow(job_instance_id=1, state=f"S{i}", timestamp=float(i))
            )
        q = archive.query(JobStateRow).eq("job_instance_id", 1).order_by("timestamp")
        first = q.first()
        assert first.state == "S0"
        assert len(q.all()) == 3  # first() must not leave a limit behind
        assert q.count() == 3

    def test_count_uses_predicates(self, archive):
        for i in range(6):
            archive.insert(
                JobStateRow(job_instance_id=i % 2, state="S", timestamp=float(i))
            )
        assert archive.query(JobStateRow).eq("job_instance_id", 0).count() == 3
        assert archive.query(JobStateRow).where("timestamp", ">=", 4.0).count() == 2

    def test_count_respects_limit_fallback(self, archive):
        for i in range(5):
            archive.insert(
                JobStateRow(job_instance_id=1, state="S", timestamp=float(i))
            )
        assert archive.query(JobStateRow).limit(2).count() == 2

    def test_non_entity_rejected(self, archive):
        with pytest.raises(TypeError):
            archive.insert(object())

    def test_invocation_roundtrip(self, archive):
        archive.insert(
            InvocationRow(
                invocation_id=1,
                job_instance_id=1,
                wf_id=1,
                task_submit_seq=1,
                start_time=10.0,
                remote_duration=74.0,
                exitcode=0,
                transformation="dart::shs",
                abs_task_id="exec0",
            )
        )
        (inv,) = archive.query(InvocationRow).eq("wf_id", 1).all()
        assert inv.remote_duration == 74.0
        assert inv.abs_task_id == "exec0"

    def test_workflowstate_roundtrip(self, archive):
        archive.insert(
            WorkflowStateRow(
                wf_id=1, state="WORKFLOW_STARTED", timestamp=5.0, restart_count=0
            )
        )
        (st,) = archive.query(WorkflowStateRow).eq("wf_id", 1).all()
        assert st.state == "WORKFLOW_STARTED"
        assert st.status is None
