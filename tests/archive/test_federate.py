"""Federated reads over a shard set: query parity, tiering, ORM delete.

The contract: callers built against a single :class:`StampedeArchive`
(``StampedeQuery``, ``workflow_statistics``, ``DashboardData``,
``canonical_dump``) must see the *same answers* through a
:class:`FederatedArchive` over N shards — surrogate ids aside, which the
federation namespaces per source.  Tiering must move finished
hierarchies to the long-term store without the federated view changing
at all.
"""
import dataclasses

import pytest

from repro.archive.federate import FederationError
from repro.archive.merge import canonical_dump, diff_canonical
from repro.archive.shard import ShardSet, ShardedLoader
from repro.archive.store import StampedeArchive
from repro.archive.tier import LongTermStore, tier_finished
from repro.core.dashboard import DashboardData
from repro.core.statistics import workflow_statistics
from repro.model.entities import JobRow, WorkflowRow, WorkflowStateRow
from repro.orm import MemoryDatabase
from repro.query.api import StampedeQuery
from repro.schema.stampede import Events

from tests.archive.test_shard import ROOT_UUIDS, load_single, workload_events


@pytest.fixture(scope="class")
def parity():
    """One workload loaded twice: single archive and 4 memory shards."""
    events = workload_events()
    single = load_single(events)
    shard_set = ShardSet.create(None, 4, backend="memory")
    sharded = ShardedLoader(shard_set, batch_size=50)
    sharded.process_all(events)
    sharded.close()
    yield single, shard_set.federated()
    single.close()
    shard_set.close()


def _strip_ids(payload):
    """Drop surrogate-id fields (namespaced per source) from a payload."""
    if isinstance(payload, dict):
        return {
            k: _strip_ids(v)
            for k, v in payload.items()
            if not (k == "wf_id" or k.endswith("_id"))
        }
    if isinstance(payload, list):
        return [_strip_ids(v) for v in payload]
    return payload


class TestQueryParity:
    def test_canonical_dump_identical(self, parity):
        single, federated = parity
        assert diff_canonical(canonical_dump(single), canonical_dump(federated)) == []

    def test_root_workflows_and_counts(self, parity):
        single, federated = parity
        sq, fq = StampedeQuery(single), StampedeQuery(federated)
        assert sorted(w.wf_uuid for w in fq.root_workflows()) == sorted(
            w.wf_uuid for w in sq.root_workflows()
        )
        assert federated.query(WorkflowRow).count() == single.query(
            WorkflowRow
        ).count()

    def test_workflow_statistics_identical(self, parity):
        single, federated = parity
        for uuid in ROOT_UUIDS:
            s = workflow_statistics(single, wf_uuid=uuid)
            f = workflow_statistics(federated, wf_uuid=uuid)
            assert f.wf_uuid == s.wf_uuid
            assert f.wall_time == s.wall_time
            assert f.cumulative_job_wall_time == s.cumulative_job_wall_time
            assert f.counts == s.counts
            assert f.breakdown == s.breakdown
            assert f.hosts == s.hosts
            # job rows: every field except the namespaced surrogate ids
            def rows(stats):
                return sorted(
                    tuple(sorted(_strip_ids(dataclasses.asdict(j)).items()))
                    for j in stats.jobs
                )
            assert rows(f) == rows(s)

    def test_dashboard_payloads_identical(self, parity):
        single, federated = parity
        sd, fd = DashboardData(single), DashboardData(federated)
        by_uuid = lambda payload: sorted(  # noqa: E731
            (_strip_ids(row)["wf_uuid"], tuple(sorted(_strip_ids(row).items())))
            for row in payload["workflows"]
        )
        assert by_uuid(fd.workflows_payload()) == by_uuid(sd.workflows_payload())
        s_ids = {w.wf_uuid: w.wf_id for w in StampedeQuery(single).root_workflows()}
        f_ids = {w.wf_uuid: w.wf_id for w in StampedeQuery(federated).root_workflows()}
        for uuid in ROOT_UUIDS:
            assert _strip_ids(fd.workflow_payload(f_ids[uuid])) == _strip_ids(
                sd.workflow_payload(s_ids[uuid])
            )
            assert _strip_ids(fd.jobs_payload(f_ids[uuid])) == _strip_ids(
                sd.jobs_payload(s_ids[uuid])
            )


class TestIdNamespacing:
    def test_encode_decode_roundtrip(self, parity):
        _, federated = parity
        n = len(federated.sources)
        for local, idx in [(1, 0), (7, n - 1), (12345, 2 % n)]:
            assert federated.decode_id(federated.encode_id(local, idx)) == (local, idx)

    def test_eq_on_global_id_routes_to_owning_source(self, parity):
        _, federated = parity
        for wf in federated.query(WorkflowRow).all():
            hit = federated.query(WorkflowRow).eq("wf_id", wf.wf_id).first()
            assert hit is not None and hit.wf_uuid == wf.wf_uuid

    def test_in_condition_groups_per_source(self, parity):
        _, federated = parity
        ids = [w.wf_id for w in federated.query(WorkflowRow).all()][:5]
        hits = federated.query(WorkflowRow).where("wf_id", "in", ids).all()
        assert sorted(w.wf_id for w in hits) == sorted(ids)

    def test_foreign_keys_stay_consistent(self, parity):
        """A job's namespaced wf_id must resolve to its own workflow."""
        _, federated = parity
        for job in federated.query(JobRow).limit(10).all():
            wf = federated.query(WorkflowRow).eq("wf_id", job.wf_id).first()
            assert wf is not None

    def test_range_ops_on_id_columns_refused(self, parity):
        _, federated = parity
        with pytest.raises(FederationError):
            federated.query(WorkflowRow).where("wf_id", ">", 3).all()

    def test_order_limit_offset(self, parity):
        single, federated = parity
        expected = [
            w.wf_uuid
            for w in single.query(WorkflowRow).order_by("wf_uuid").all()
        ]
        got = [
            w.wf_uuid
            for w in federated.query(WorkflowRow).order_by("wf_uuid").all()
        ]
        assert got == expected
        page = (
            federated.query(WorkflowRow).order_by("wf_uuid").limit(2, offset=1).all()
        )
        assert [w.wf_uuid for w in page] == expected[1:3]

    def test_write_surface_is_read_only(self, parity):
        _, federated = parity
        with pytest.raises(FederationError):
            federated.insert(WorkflowRow(wf_id=1, wf_uuid="nope"))
        with pytest.raises(FederationError):
            federated.delete(WorkflowRow, {"wf_id": 1})
        with pytest.raises(FederationError):
            federated.next_id("workflow")


class TestTiering:
    @pytest.fixture()
    def shard_dir(self, tmp_path):
        """4 sqlite shards: 4 finished roots + 2 still-running roots
        (their stream stops before stampede.xwf.end)."""
        unfinished = {ROOT_UUIDS[1], ROOT_UUIDS[4]}
        events = [
            e
            for e in workload_events()
            if not (
                e.event == Events.XWF_END and e.attrs.get("xwf.id") in unfinished
            )
        ]
        shard_set = ShardSet.create(tmp_path / "shards", 4)
        sharded = ShardedLoader(shard_set, batch_size=50)
        sharded.process_all(events)
        sharded.close()
        yield shard_set, unfinished
        shard_set.close()

    def test_tier_moves_only_finished_roots(self, shard_dir):
        shard_set, unfinished = shard_dir
        before = canonical_dump(shard_set.federated())
        report = tier_finished(shard_set)
        assert report.tiered_roots == 4
        assert report.skipped_roots == 2
        assert set(report.tiered_uuids) == set(ROOT_UUIDS) - unfinished
        assert report.rows_moved > 0

        # hot shards now hold only the running hierarchies
        hot = [
            w.wf_uuid
            for archive in shard_set.archives
            for w in archive.query(WorkflowRow).all()
        ]
        assert sorted(hot) == sorted(unfinished)

        # ...and the federated view (hot + long-term) is unchanged
        assert diff_canonical(before, canonical_dump(shard_set.federated())) == []

    def test_statistics_survive_tiering(self, shard_dir):
        shard_set, unfinished = shard_dir
        tiered_uuid = next(u for u in ROOT_UUIDS if u not in unfinished)
        expected = workflow_statistics(shard_set.federated(), wf_uuid=tiered_uuid)
        tier_finished(shard_set)
        after = workflow_statistics(shard_set.federated(), wf_uuid=tiered_uuid)
        assert after.wall_time == expected.wall_time
        assert after.counts == expected.counts
        assert after.breakdown == expected.breakdown

    def test_tier_is_idempotent_and_appends_segments(self, shard_dir):
        shard_set, _ = shard_dir
        first = tier_finished(shard_set)
        assert first.segments
        again = tier_finished(shard_set)
        assert again.tiered_roots == 0 and again.rows_moved == 0
        store = LongTermStore(shard_set.longterm_dir())
        assert store.count() == first.tiered_roots
        assert sorted(store.root_uuids()) == sorted(first.tiered_uuids)

    def test_longterm_archive_is_queryable_alone(self, shard_dir):
        shard_set, _ = shard_dir
        report = tier_finished(shard_set)
        cold = LongTermStore(shard_set.longterm_dir()).open_archive()
        assert cold.query(WorkflowRow).count() >= report.tiered_roots
        states = cold.query(WorkflowStateRow).all()
        assert states, "workflow states must survive the tier round-trip"
        cold.close()


class TestArchiveDelete:
    """The ORM delete surface tiering is built on, both backends."""

    @pytest.fixture(params=["sqlite", "memory"])
    def archive(self, request):
        if request.param == "sqlite":
            a = StampedeArchive.open("sqlite:///:memory:")
        else:
            a = StampedeArchive(MemoryDatabase())
        for i in range(1, 5):
            a.insert(WorkflowRow(wf_id=i, wf_uuid=f"u-{i}", dag_file_name="d.dag"))
        yield a
        a.close()

    def test_delete_by_scalar(self, archive):
        assert archive.delete(WorkflowRow, {"wf_id": 2}) == 1
        assert archive.query(WorkflowRow).eq("wf_id", 2).first() is None
        assert archive.query(WorkflowRow).count() == 3

    def test_delete_by_in_list(self, archive):
        assert archive.delete(WorkflowRow, {"wf_id": [1, 3, 99]}) == 2
        assert sorted(w.wf_id for w in archive.query(WorkflowRow).all()) == [2, 4]

    def test_delete_empty_list_is_noop(self, archive):
        assert archive.delete(WorkflowRow, {"wf_id": []}) == 0
        assert archive.query(WorkflowRow).count() == 4

    def test_delete_no_match(self, archive):
        assert archive.delete(WorkflowRow, {"wf_uuid": "nope"}) == 0

    def test_reinsert_after_delete(self, archive):
        archive.delete(WorkflowRow, {"wf_id": 1})
        archive.insert(WorkflowRow(wf_id=1, wf_uuid="u-1b"))
        hit = archive.query(WorkflowRow).eq("wf_id", 1).first()
        assert hit is not None and hit.wf_uuid == "u-1b"
