"""Canonical merge/diff on empty and partially-loaded archives.

A soak run's mid-kill snapshot — or any loader that died before seeing
the plan events — leaves an archive whose foreign keys can dangle.  The
contract under test: :func:`canonical_dump` must render such archives
deterministically (sentinel keys, never ``KeyError``) so that
:func:`diff_canonical` *reports* the missing rows instead of the
comparison crashing before it starts.
"""
import pytest

from repro.archive.merge import canonical_dump, diff_canonical, merge_canonical
from repro.archive.store import StampedeArchive
from repro.loader import load_events
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    WorkflowRow,
)

from tests.helpers import diamond_events


@pytest.fixture
def baseline():
    loader = load_events(diamond_events())
    dump = canonical_dump(loader.archive)
    loader.archive.close()
    return dump


class TestEmptyArchive:
    def test_dump_of_empty_archive(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        dump = canonical_dump(archive)
        assert all(rows == [] for rows in dump.values())
        archive.close()

    def test_diff_reports_every_missing_table(self, baseline):
        archive = StampedeArchive.open("sqlite:///:memory:")
        problems = diff_canonical(baseline, canonical_dump(archive))
        archive.close()
        populated = {t for t, rows in baseline.items() if rows}
        assert populated  # the diamond stream fills the core tables
        reported = {p.split(":", 1)[0] for p in problems}
        assert reported == populated
        for problem in problems:
            assert "missing" in problem

    def test_merge_with_empty_is_identity(self, baseline):
        archive = StampedeArchive.open("sqlite:///:memory:")
        merged = merge_canonical(baseline, canonical_dump(archive))
        archive.close()
        assert diff_canonical(baseline, merged) == []


class TestPartialLoad:
    """A loader killed mid-stream: prefix of the events, rest missing."""

    def test_partial_archive_diffs_without_crashing(self, baseline):
        events = diamond_events()
        partial = load_events(events[: len(events) // 2], batch_size=5)
        problems = diff_canonical(baseline, canonical_dump(partial.archive))
        partial.archive.close()
        assert problems  # half the stream is gone; the diff must say so
        assert any("missing" in p for p in problems)

    def test_partial_archive_is_a_subset_on_append_only_tables(self, baseline):
        # job_instance/workflow rows mutate as the lifecycle progresses, so a
        # snapshot legitimately differs there; state/structure tables are
        # append-only and a prefix load must be a strict row subset
        events = diamond_events()
        partial = load_events(events[: len(events) // 2], batch_size=5)
        dump = canonical_dump(partial.archive)
        partial.archive.close()
        for table in ("workflowstate", "jobstate", "task", "task_edge", "job_edge"):
            for row in dump.get(table, []):
                assert row in baseline.get(table, []), (table, row)


class TestDanglingForeignKeys:
    """Rows whose parents never arrived rewrite to sentinel keys."""

    @pytest.fixture
    def torn(self):
        # a torn snapshot: children present, every parent missing
        archive = StampedeArchive.open("sqlite:///:memory:")
        with archive.transaction():
            archive.insert(JobRow(job_id=1, wf_id=99, exec_job_id="orphan_j"))
            archive.insert(
                JobInstanceRow(job_instance_id=1, job_id=77, job_submit_seq=1)
            )
            archive.insert(
                JobStateRow(job_instance_id=55, state="SUBMIT", timestamp=1.0)
            )
            archive.insert(
                InvocationRow(
                    invocation_id=1, job_instance_id=55, wf_id=99, task_submit_seq=1
                )
            )
            archive.insert(
                HostRow(host_id=1, wf_id=99, site="s", hostname="node-x")
            )
        yield archive
        archive.close()

    def test_dump_uses_sentinels_instead_of_raising(self, torn):
        # sentinels are surrogate-free: the same torn row must render
        # identically no matter which shard (and hence which local
        # surrogate-id sequence) it landed in
        dump = canonical_dump(torn)
        assert dump["job"][0][0] == "<missing workflow>"
        assert dump["job_instance"][0][0] == "<missing job>"
        assert dump["jobstate"][0][0] == "<missing job-instance>"
        assert dump["invocation"][0][0] == "<missing job-instance>"
        assert dump["host"][0][0] == "<missing workflow>"

    def test_dump_is_deterministic(self, torn):
        assert canonical_dump(torn) == canonical_dump(torn)

    def test_diff_against_healthy_archive_reports(self, torn, baseline):
        problems = diff_canonical(baseline, canonical_dump(torn))
        assert problems
        # dangling rows surface as "extra" rows, missing parents as "missing"
        assert any("extra" in p for p in problems)
        assert any("missing" in p for p in problems)

    def test_present_parent_still_uses_natural_key(self):
        archive = StampedeArchive.open("sqlite:///:memory:")
        with archive.transaction():
            archive.insert(WorkflowRow(wf_id=1, wf_uuid="wf-real"))
            archive.insert(JobRow(job_id=1, wf_id=1, exec_job_id="j1"))
            archive.insert(JobRow(job_id=2, wf_id=2, exec_job_id="j2"))
        dump = canonical_dump(archive)
        archive.close()
        keys = {row[0] for row in dump["job"]}
        assert keys == {"wf-real", "<missing workflow>"}
