"""Sharded archive: router property, manifest guard, sharded write path.

The load-bearing contract is the router: ``shard_for`` must equal the
bus partitioner byte-for-byte (and stay stable across processes), so a
consumer group with N partitions maps 1:1 onto an N-shard set.  The
second contract is the manifest guard — opening a shard set with the
wrong modulus is a refusal, never a silent re-hash.  The third is the
write path itself: a 4-shard load must be canonically identical to a
single-archive load, including after a kill/resume.
"""
import json
import subprocess
import sys
import zlib

import pytest

from repro.archive.federate import FederatedArchive
from repro.archive.merge import canonical_dump, diff_canonical
from repro.archive.shard import (
    MANIFEST_NAME,
    ShardError,
    ShardMismatchError,
    ShardSet,
    ShardedLoader,
    open_archive,
    partition_events,
    shard_for,
)
from repro.archive.store import StampedeArchive
from repro.bus.groups import partition_for
from repro.loader import make_loader
from repro.loader.nl_load import load_file_sharded
from repro.model.entities import WorkflowRow
from repro.netlogger.events import NLEvent
from repro.netlogger.stream import write_events
from repro.schema.stampede import Events

from tests.helpers import diamond_events

#: crc32("11111111-2222-4333-8444-555555555555") — pinned so a stdlib or
#: platform change that altered the hash (and would scatter every
#: existing shard set) fails here, not in production.
PINNED_UUID = "11111111-2222-4333-8444-555555555555"
PINNED_CRC32 = 2577199954

ROOT_UUIDS = [f"wf-{i:02d}00-aaaa-4bbb-8ccc-dddddddddddd" for i in range(6)]


def workload_events():
    """Six diamond workflows with mixed outcomes (failures + retries)."""
    events = []
    for i, xwf in enumerate(ROOT_UUIDS):
        fail = "b" if i % 3 == 0 else None
        retries = {"c": 1} if i % 2 else None
        events.extend(diamond_events(fail_job=fail, retries=retries, xwf=xwf))
    return events


def load_single(events):
    loader = make_loader("memory://", batch_size=50)
    for event in events:
        loader.process(event)
    loader.flush()
    return loader.archive


class TestRouter:
    def test_matches_bus_partitioner(self):
        """shard_for IS partition_for: same hash, same modulus."""
        for uuid in ROOT_UUIDS + [PINNED_UUID, "", "stampede.obs.mem"]:
            for n in (1, 2, 4, 8, 16):
                assert shard_for(uuid, n) == partition_for(uuid, n)
                assert shard_for(uuid, n) == zlib.crc32(uuid.encode("utf-8")) % n

    def test_pinned_hash_value(self):
        assert zlib.crc32(PINNED_UUID.encode("utf-8")) == PINNED_CRC32
        assert shard_for(PINNED_UUID, 4) == PINNED_CRC32 % 4 == 2

    def test_cross_process_stable(self):
        """The route survives process boundaries (no PYTHONHASHSEED-style
        per-process salt): a fresh interpreter computes the same shards."""
        uuids = ROOT_UUIDS + [PINNED_UUID]
        script = (
            "import sys, zlib; "
            "print([zlib.crc32(u.encode('utf-8')) % 4 for u in sys.argv[1:]])"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, *uuids],
            capture_output=True, text=True, check=True,
        )
        assert json.loads(out.stdout) == [shard_for(u, 4) for u in uuids]

    def test_partition_events_keeps_hierarchy_together(self):
        """A sub-workflow's events follow its *root*: the plan event
        teaches the keyer root.xwf.id, so the whole hierarchy (every
        foreign-key chain) lands on one shard."""
        root, sub = ROOT_UUIDS[0], "5ub50000-aaaa-4bbb-8ccc-dddddddddddd"
        assert shard_for(root, 4) != shard_for(sub, 4)  # test is vacuous otherwise
        events = diamond_events(xwf=root)
        for event in diamond_events(xwf=sub):
            if event.event == Events.WF_PLAN:
                event.attrs["root.xwf.id"] = root
                event.attrs["parent.xwf.id"] = root
            events.append(event)
        shards = partition_events(events, 4)
        expected = shard_for(root, 4)
        for index, routed in enumerate(shards):
            assert len(routed) == (len(events) if index == expected else 0)

    def test_idless_events_route_by_event_name(self):
        """Telemetry without any workflow id hashes on its event name —
        the bus router's routing-key default."""
        event = NLEvent("stampede.obs.mem", 0.0, {})
        shards = partition_events([event], 4)
        assert shards[partition_for("stampede.obs.mem", 4)] == [event]


class TestManifest:
    def test_create_writes_manifest_and_open_agrees(self, tmp_path):
        created = ShardSet.create(tmp_path / "shards", 2)
        created.close()
        manifest = json.loads((tmp_path / "shards" / MANIFEST_NAME).read_text())
        assert manifest["shards"] == 2 and manifest["router"] == "crc32-root-wf"
        reopened = ShardSet.open(tmp_path / "shards")
        assert len(reopened) == 2
        reopened.close()

    def test_open_with_wrong_count_refuses(self, tmp_path):
        ShardSet.create(tmp_path / "shards", 2).close()
        with pytest.raises(ShardMismatchError, match="reshard"):
            ShardSet.open(tmp_path / "shards", expected_shards=4)

    def test_create_over_existing_with_wrong_count_refuses(self, tmp_path):
        ShardSet.create(tmp_path / "shards", 2).close()
        with pytest.raises(ShardMismatchError):
            ShardSet.create(tmp_path / "shards", 4)

    def test_unknown_router_refuses(self, tmp_path):
        ShardSet.create(tmp_path / "shards", 2).close()
        path = tmp_path / "shards" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["router"] = "xxhash-root-wf"
        path.write_text(json.dumps(manifest))
        with pytest.raises(ShardMismatchError, match="routed by"):
            ShardSet.open(tmp_path / "shards")

    def test_open_non_shard_directory_refuses(self, tmp_path):
        with pytest.raises(ShardError, match="not a shard set"):
            ShardSet.open(tmp_path)

    def test_invalid_configurations(self, tmp_path):
        with pytest.raises(ShardError):
            ShardSet.create(tmp_path / "s", 0)
        with pytest.raises(ShardError):
            ShardSet.create(tmp_path / "s", 2, backend="postgres")
        with pytest.raises(ShardError):
            ShardSet.create(tmp_path / "s", 2, backend="memory")
        with pytest.raises(ShardError):
            ShardSet.create(None, 2)

    def test_memory_backend_is_anonymous(self):
        shard_set = ShardSet.create(None, 4, backend="memory")
        assert shard_set.directory is None and len(shard_set) == 4
        assert shard_set.longterm_dir() is None
        shard_set.close()


class TestOpenArchive:
    def test_shard_directory_comes_back_federated(self, tmp_path):
        ShardSet.create(tmp_path / "shards", 2).close()
        archive = open_archive(str(tmp_path / "shards"))
        assert isinstance(archive, FederatedArchive)
        archive.close()

    def test_plain_path_and_conn_string_stay_single(self, tmp_path):
        for spec in (str(tmp_path / "run.db"), f"sqlite:///{tmp_path/'x.db'}",
                     "memory://"):
            archive = open_archive(spec)
            assert isinstance(archive, StampedeArchive)
            archive.close()

    def test_glob_federates_matches(self, tmp_path):
        shard_set = ShardSet.create(tmp_path / "shards", 4)
        shard_set.close()
        archive = open_archive(str(tmp_path / "shards" / "shard-*.db"))
        assert isinstance(archive, FederatedArchive)
        archive.close()
        single = open_archive(str(tmp_path / "shards" / "shard-00[0].db"))
        assert isinstance(single, StampedeArchive)
        single.close()

    def test_empty_glob_refuses(self, tmp_path):
        with pytest.raises(ShardError, match="matched no"):
            open_archive(str(tmp_path / "nope-*.db"))


class TestShardedLoader:
    def test_four_shards_canonically_identical_to_single(self):
        events = workload_events()
        single = load_single(events)
        expected = canonical_dump(single)

        shard_set = ShardSet.create(None, 4, backend="memory")
        sharded = ShardedLoader(shard_set, batch_size=50, chunk_size=16)
        sharded.process_all(events)
        sharded.close()

        assert diff_canonical(expected, canonical_dump(shard_set.federated())) == []
        # every hierarchy stayed on its routed shard
        for index, archive in enumerate(shard_set.archives):
            for wf in archive.query(WorkflowRow).all():
                assert shard_set.shard_for(wf.wf_uuid) == index
        assert sum(sharded.routed) == len(events)
        stats = sharded.stats()
        assert stats["events_processed"] == len(events)
        assert stats["shards"] == 4 and len(stats["per_shard"]) == 4
        assert stats["rows_inserted"] == sum(
            s["rows_inserted"] for s in stats["per_shard"]
        )
        single.close()
        shard_set.close()

    def test_close_is_idempotent_and_flushes(self):
        shard_set = ShardSet.create(None, 2, backend="memory")
        sharded = ShardedLoader(shard_set, batch_size=500)
        for event in diamond_events():
            sharded.process(event)
        sharded.close()
        sharded.close()  # second close is a no-op
        assert shard_set.federated().query(WorkflowRow).count() == 1
        shard_set.close()

    def test_resume_without_checkpoint_source_refuses(self):
        shard_set = ShardSet.create(None, 2, backend="memory")
        sharded = ShardedLoader(shard_set)
        with pytest.raises(ShardError, match="checkpoint_source"):
            sharded.resume()
        sharded.close()
        shard_set.close()

    def test_kill_resume_matches_uninterrupted_run(self, tmp_path):
        """Kill the sharded loader mid-run (unflushed per-shard batches
        lost, as in kill -9), resume, and compare the federated archive
        against a clean single-writer run.  Each shard replays only its
        own uncommitted suffix — the exactly-once boundary is per shard.
        """
        events = workload_events()
        path = str(tmp_path / "storm.bp")
        write_events(path, events)
        single = load_single(events)
        expected = canonical_dump(single)

        shard_dir = tmp_path / "shards"
        shard_set = ShardSet.create(shard_dir, 4)
        sharded = ShardedLoader(
            shard_set, batch_size=7, chunk_size=4, checkpoint_source=path
        )
        from repro.netlogger.stream import read_events_with_offsets

        offsets = list(read_events_with_offsets(path))
        for event, offset in offsets[: len(offsets) * 2 // 3]:
            sharded.position = offset
            sharded.process(event)
        # force the queued chunks through so some shards commit batches
        # (and checkpoints), then abandon everything without close():
        # unflushed partial batches die with the "process"
        sharded.flush()
        committed = [w.loader.checkpoint.load() for w in sharded.writers]
        assert any(c is not None and c.position > 0 for c in committed)
        shard_set.close()
        del sharded

        # -- fresh process: reopen, resume, re-read from the floor ----------
        shard_set = ShardSet.open(shard_dir)
        resumed = ShardedLoader(
            shard_set, batch_size=7, chunk_size=4, checkpoint_source=path
        )
        floor = resumed.resume()
        assert floor == min(w.floor for w in resumed.writers)
        assert floor > 0
        load_file_sharded(path, resumed, resume=True)
        resumed.close()

        assert diff_canonical(expected, canonical_dump(shard_set.federated())) == []
        single.close()
        shard_set.close()

    def test_load_file_sharded_without_checkpoint(self, tmp_path):
        events = workload_events()
        path = str(tmp_path / "storm.bp")
        write_events(path, events)
        single = load_single(events)

        shard_set = ShardSet.create(None, 4, backend="memory")
        sharded = ShardedLoader(shard_set, batch_size=50)
        load_file_sharded(path, sharded)
        sharded.close()
        assert diff_canonical(
            canonical_dump(single), canonical_dump(shard_set.federated())
        ) == []
        with pytest.raises(ValueError, match="checkpoint_source"):
            load_file_sharded(path, ShardedLoader(shard_set), resume=True)
        single.close()
        shard_set.close()


class TestSingleShardDegenerate:
    def test_one_shard_equals_plain_loader(self, tmp_path):
        """N=1 is the plain single-writer path behind the same API."""
        events = workload_events()
        single = load_single(events)
        shard_set = ShardSet.create(tmp_path / "one", 1)
        sharded = ShardedLoader(shard_set, batch_size=50)
        sharded.process_all(events)
        sharded.close()
        assert diff_canonical(
            canonical_dump(single), canonical_dump(shard_set.federated())
        ) == []
        # and the file round-trips through load_file/make_loader idioms
        db = tmp_path / "one" / "shard-000.db"
        reread = StampedeArchive.open(f"sqlite:///{db}")
        assert reread.query(WorkflowRow).count() == len(ROOT_UUIDS)
        reread.close()
        single.close()
        shard_set.close()
