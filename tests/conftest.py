"""Suite-wide hooks: opt-in lock-order sanitizer (race-smoke CI job).

With ``STAMPEDE_SANITIZE=1`` in the environment, every
``threading.Lock``/``RLock``/``Condition`` created by ``repro.*``
modules during the test session is replaced with a recording wrapper
(:mod:`repro.analysis.sanitizer`); at session end the lock-order graph,
contention/hold statistics, and any cycles are written to
``STAMPEDE_SANITIZE_REPORT`` (default ``lock-order-report.json``), which
``python -m repro.analysis.sanitizer --check`` turns into a CI gate.

The hook installs during ``pytest_configure`` — before test modules (and
therefore most ``repro`` modules) are imported — so locks created at
module import time are captured too.  Without the flag nothing is
patched and this file is inert.
"""
import os

_SANITIZER = None


def pytest_configure(config):
    global _SANITIZER
    from repro.analysis.sanitizer import enabled_from_env

    if enabled_from_env():
        from repro.analysis.sanitizer import LockSanitizer

        _SANITIZER = LockSanitizer().install()


def pytest_sessionfinish(session, exitstatus):
    global _SANITIZER
    if _SANITIZER is None:
        return
    from repro.analysis.sanitizer import ENV_REPORT

    path = os.environ.get(ENV_REPORT, "lock-order-report.json")
    _SANITIZER.uninstall()
    _SANITIZER.write_report(path)
    _SANITIZER = None
