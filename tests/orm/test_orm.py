import pytest

from repro.orm import (
    Boolean,
    Column,
    Integer,
    MemoryDatabase,
    Query,
    Real,
    SqliteDatabase,
    Table,
    Text,
    connect,
)


@pytest.fixture(params=["sqlite", "memory"])
def db(request):
    if request.param == "sqlite":
        database = SqliteDatabase(":memory:")
        yield database
        database.close()
    else:
        yield MemoryDatabase()


@pytest.fixture
def people():
    return Table(
        "people",
        [
            Column("id", Integer(), primary_key=True),
            Column("name", Text(), nullable=False, index=True),
            Column("age", Integer()),
            Column("score", Real(), default=0.0),
            Column("active", Boolean(), default=True),
        ],
    )


def seed(db, people):
    db.create_tables([people])
    db.insert_many(
        people,
        [
            {"id": 1, "name": "ann", "age": 30, "score": 1.5},
            {"id": 2, "name": "bob", "age": 25, "score": 2.5, "active": False},
            {"id": 3, "name": "cat", "age": 35, "score": 3.5},
        ],
    )


class TestTableMetadata:
    def test_create_sql(self, people):
        sql = people.create_sql()
        assert "CREATE TABLE IF NOT EXISTS people" in sql
        assert "id INTEGER PRIMARY KEY" in sql
        assert "name TEXT NOT NULL" in sql

    def test_index_sql(self, people):
        assert people.index_sql() == [
            "CREATE INDEX IF NOT EXISTS ix_people_name ON people (name)"
        ]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", Integer()), Column("a", Text())])

    def test_multiple_pks_rejected(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                [
                    Column("a", Integer(), primary_key=True),
                    Column("b", Integer(), primary_key=True),
                ],
            )

    def test_coerce_row_unknown_column(self, people):
        with pytest.raises(ValueError):
            people.coerce_row({"nope": 1})

    def test_coerce_row_not_null(self, people):
        with pytest.raises(ValueError):
            people.coerce_row({"id": 1, "name": None})

    def test_coerce_applies_defaults(self, people):
        row = people.coerce_row({"id": 1, "name": "x"})
        assert row["score"] == 0.0
        assert row["active"] == 1  # boolean stored as int

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Table("bad name", [Column("a", Integer())])
        with pytest.raises(ValueError):
            Column("bad-name", Integer())


class TestBackends:
    def test_insert_select_roundtrip(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).order_by("id"))
        assert [r["name"] for r in rows] == ["ann", "bob", "cat"]
        assert rows[0]["active"] is True
        assert rows[1]["active"] is False

    def test_where_eq(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).eq("name", "bob"))
        assert len(rows) == 1 and rows[0]["age"] == 25

    def test_where_comparison(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).where("age", ">=", 30).order_by("age"))
        assert [r["name"] for r in rows] == ["ann", "cat"]

    def test_where_in(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).where("id", "in", [1, 3]).order_by("id"))
        assert [r["id"] for r in rows] == [1, 3]

    def test_where_in_empty(self, db, people):
        seed(db, people)
        assert db.select(Query(people).where("id", "in", [])) == []

    def test_like(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).where("name", "like", "%a%").order_by("id"))
        assert [r["name"] for r in rows] == ["ann", "cat"]

    def test_order_desc(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).order_by("age", descending=True))
        assert [r["age"] for r in rows] == [35, 30, 25]

    def test_multi_order(self, db, people):
        seed(db, people)
        db.insert(people, {"id": 4, "name": "ann", "age": 20})
        rows = db.select(Query(people).order_by("name").order_by("age"))
        assert [(r["name"], r["age"]) for r in rows][:2] == [("ann", 20), ("ann", 30)]

    def test_limit_offset(self, db, people):
        seed(db, people)
        rows = db.select(Query(people).order_by("id").limit(1, offset=1))
        assert [r["id"] for r in rows] == [2]

    def test_update(self, db, people):
        seed(db, people)
        changed = db.update(people, {"age": 99}, {"name": "bob"})
        assert changed == 1
        (row,) = db.select(Query(people).eq("name", "bob"))
        assert row["age"] == 99

    def test_count(self, db, people):
        seed(db, people)
        assert db.count(people) == 3

    def test_insert_many_empty(self, db, people):
        db.create_tables([people])
        assert db.insert_many(people, []) == 0

    def test_null_handling(self, db, people):
        db.create_tables([people])
        db.insert(people, {"id": 1, "name": "x", "age": None})
        (row,) = db.select(Query(people).eq("id", 1))
        assert row["age"] is None

    def test_none_sorts_first(self, db, people):
        db.create_tables([people])
        db.insert_many(
            people,
            [{"id": 1, "name": "a", "age": None}, {"id": 2, "name": "b", "age": 5}],
        )
        rows = db.select(Query(people).order_by("age"))
        assert rows[0]["age"] is None


class TestQueryValidation:
    def test_unknown_column_where(self, people):
        with pytest.raises(ValueError):
            Query(people).eq("nope", 1)

    def test_unknown_column_order(self, people):
        with pytest.raises(ValueError):
            Query(people).order_by("nope")

    def test_unknown_operator(self, people):
        with pytest.raises(ValueError):
            Query(people).where("age", "~", 1)


class TestConnect:
    def test_sqlite_memory(self):
        assert isinstance(connect("sqlite:///:memory:"), SqliteDatabase)

    def test_sqlite_file(self, tmp_path):
        db = connect(f"sqlite:///{tmp_path}/t.db")
        assert isinstance(db, SqliteDatabase)
        db.close()

    def test_memory_scheme(self):
        assert isinstance(connect("memory://"), MemoryDatabase)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            connect("postgres://nope")

    def test_sqlite_file_persistence(self, tmp_path, people):
        path = f"{tmp_path}/p.db"
        db = connect(f"sqlite:///{path}")
        db.create_tables([people])
        db.insert(people, {"id": 1, "name": "x"})
        db.close()
        db2 = connect(f"sqlite:///{path}")
        db2.create_tables([people])
        assert db2.count(people) == 1
        db2.close()
