"""Transaction scoping, pragmas, and aggregate helpers on both backends."""
import pytest

from repro.orm import Column, Integer, MemoryDatabase, Query, SqliteDatabase, Table, Text

T = Table(
    "t",
    [
        Column("id", Integer(), primary_key=True),
        Column("name", Text()),
        Column("score", Integer()),
    ],
)


@pytest.fixture(params=["sqlite", "memory"])
def db(request):
    database = SqliteDatabase() if request.param == "sqlite" else MemoryDatabase()
    database.create_tables([T])
    yield database
    database.close()


class TestTransaction:
    def test_commit_groups_statements(self, db):
        with db.transaction():
            db.insert(T, {"id": 1, "name": "a"})
            db.insert_many(T, [{"id": 2, "name": "b"}, {"id": 3, "name": "c"}])
            db.update(T, {"score": 5}, {"id": 1})
        assert db.count(T) == 3
        rows = db.select(Query(T).eq("id", 1))
        assert rows[0]["score"] == 5

    def test_sqlite_rollback_on_error(self):
        db = SqliteDatabase()
        db.create_tables([T])
        db.insert(T, {"id": 1, "name": "keep"})
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert(T, {"id": 2, "name": "lost"})
                raise RuntimeError("boom")
        assert db.count(T) == 1  # the in-transaction insert rolled back
        # the connection is usable again afterwards
        db.insert(T, {"id": 3, "name": "after"})
        assert db.count(T) == 2

    def test_nested_transactions_join_outermost(self, db):
        with db.transaction():
            db.insert(T, {"id": 1, "name": "outer"})
            with db.transaction():
                db.insert(T, {"id": 2, "name": "inner"})
        assert db.count(T) == 2

    def test_sqlite_nested_rollback_discards_all(self):
        db = SqliteDatabase()
        db.create_tables([T])
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert(T, {"id": 1, "name": "outer"})
                with db.transaction():
                    db.insert(T, {"id": 2, "name": "inner"})
                raise RuntimeError("boom")
        assert db.count(T) == 0

    def test_autocommit_outside_transaction(self, db):
        db.insert(T, {"id": 1, "name": "a"})
        assert db.count(T) == 1


class TestPragmas:
    def test_file_backend_uses_wal(self, tmp_path):
        db = SqliteDatabase(str(tmp_path / "wal.db"))
        assert db.pragma("journal_mode") == "wal"
        assert db.pragma("synchronous") == 1  # NORMAL
        db.close()

    def test_memory_backend_skips_wal(self):
        db = SqliteDatabase()
        assert db.pragma("journal_mode") == "memory"
        db.close()


class TestAggregates:
    def test_count_where(self, db):
        db.insert_many(
            T, [{"id": i, "name": "x", "score": i % 2} for i in range(1, 11)]
        )
        assert db.count_where(Query(T).eq("score", 1)) == 5
        assert db.count_where(Query(T)) == 10
        assert db.count_where(Query(T).where("id", ">", 8)) == 2

    def test_max_value(self, db):
        assert db.max_value(T, "id") is None
        db.insert_many(T, [{"id": 3, "name": "a"}, {"id": 7, "name": "b"}])
        assert db.max_value(T, "id") == 7

    def test_max_value_unknown_column(self, db):
        with pytest.raises(ValueError):
            db.max_value(T, "nope")


class TestQueryCopy:
    def test_copy_is_independent(self):
        q = Query(T).eq("name", "a")
        clone = q.copy().limit(1)
        assert q.limit_count is None
        assert clone.limit_count == 1
        clone.where("id", ">", 0)
        assert len(q.predicates) == 1

    def test_to_count_sql(self):
        sql, params = Query(T).eq("name", "a").order_by("id").limit(5).to_count_sql()
        assert sql == "SELECT COUNT(*) FROM t WHERE name = ?"
        assert params == ["a"]
