"""Workflow-definition analyzers: Pegasus DAX and Triana task graphs."""
import os

import pytest

from repro.lint import lint_dax, lint_path, lint_taskgraph
from repro.lint.rules import Severity
from repro.pegasus.dax import dax_to_string
from repro.triana.taskgraph import TaskGraph
from repro.triana.taskgraph_xml import taskgraph_to_xml
from repro.triana.unit import ConstantUnit, ExecUnit, GatherUnit
from repro.workloads import diamond
from repro.workloads.montage import montage

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def ids(findings):
    return {f.rule_id for f in findings}


class TestDaxAnalyzers:
    def test_broken_fixture_hits_all_dax_rules(self):
        findings = lint_path(os.path.join(FIXTURES, "broken.dax"))
        assert ids(findings) == {
            "STL001",  # b <-> c cycle
            "STL002",  # ref to undefined job zz
            "STL003",  # duplicate job id a
            "STL004",  # d unreachable through the cycle
            "STL005",  # ghost.dat consumed but never produced
            "STL006",  # f1 produced twice
            "STL007",  # c depends on itself
            "STL008",  # a, e isolated
            "STL012",  # b -> d declared twice
        }

    def test_findings_carry_line_anchors(self):
        findings = lint_path(os.path.join(FIXTURES, "broken.dax"))
        for f in findings:
            assert f.file.endswith("broken.dax")
            assert f.line >= 1

    def test_clean_generated_dax_is_clean(self):
        for aw in (diamond(), montage(n_images=4)):
            text = dax_to_string(aw)
            assert lint_dax(text, path="gen.dax") == []

    def test_unparseable_xml_is_stl010(self):
        findings = lint_dax("<adag><job ", path="bad.dax")
        assert ids(findings) == {"STL010"}
        assert findings[0].severity is Severity.ERROR

    def test_wrong_root_element_is_stl010(self):
        findings = lint_dax("<notadax/>", path="bad.dax")
        assert ids(findings) == {"STL010"}


class TestTaskGraphAnalyzers:
    def test_broken_fixture_hits_all_taskgraph_rules(self):
        findings = lint_path(os.path.join(FIXTURES, "broken_taskgraph.xml"))
        assert ids(findings) == {
            "STL002",  # cable to undefined task
            "STL003",  # duplicate task name src
            "STL007",  # sink cabled to itself
            "STL008",  # loner isolated
            "STL009",  # mystery <-> sink cycle (warning: Triana loops can be intentional)
            "STL011",  # unknown unit type quantum_flux
            "STL013",  # non-JSON param payload
        }

    def test_taskgraph_cycle_is_warning_not_error(self):
        findings = lint_path(os.path.join(FIXTURES, "broken_taskgraph.xml"))
        sev = {f.rule_id: f.severity for f in findings}
        assert sev["STL009"] is Severity.WARNING
        assert sev["STL011"] is Severity.ERROR

    def test_clean_generated_taskgraph_is_clean(self):
        g = TaskGraph("clean")
        src = g.add(ConstantUnit("src", [1, 2]))
        e0 = g.add(ExecUnit("e0", ["run"], base_seconds=1.0))
        z = g.add(GatherUnit("z"))
        g.connect(src, e0)
        g.connect(e0, z)
        assert lint_taskgraph(taskgraph_to_xml(g), path="gen.xml") == []

    def test_truncated_xml_is_stl010(self):
        findings = lint_path(os.path.join(FIXTURES, "garbage.xml"))
        assert ids(findings) == {"STL010"}


class TestAcceptance:
    def test_bad_fixtures_cover_at_least_12_rules(self):
        all_ids = set()
        for name in ("broken.dax", "broken_taskgraph.xml", "corrupted.bp",
                     "garbage.xml"):
            all_ids |= ids(lint_path(os.path.join(FIXTURES, name)))
        assert len(all_ids) >= 12

    @pytest.mark.parametrize("name", ["broken.dax", "broken_taskgraph.xml"])
    def test_bad_fixtures_have_errors(self, name):
        findings = lint_path(os.path.join(FIXTURES, name))
        assert any(f.severity is Severity.ERROR for f in findings)
