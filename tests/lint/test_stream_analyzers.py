"""Event-stream analyzers: schema conformance, lifecycle, pairing, ordering."""
import os
import sys

from repro.lint import LintConfig, Severity, StreamLinter, lint_bp

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from helpers import diamond_events  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
XWF = "11111111-2222-4333-8444-555555555555"


def run_lines(lines, config=None):
    linter = StreamLinter(config=config)
    findings = []
    for lineno, line in enumerate(lines, start=1):
        _, fs = linter.feed_line(line, lineno)
        findings.extend(fs)
    findings.extend(linter.finish())
    return findings


def ids(findings):
    return {f.rule_id for f in findings}


def bp(event, ts="2012-03-13T12:00:00.000000Z", **attrs):
    attrs.setdefault("xwf.id", XWF)
    pairs = " ".join(f"{k}={v}" for k, v in attrs.items())
    return f"ts={ts} event={event} level=Info {pairs}"


class TestCleanStreams:
    def test_hand_built_diamond_stream_is_clean(self):
        linter = StreamLinter()
        findings = []
        for i, event in enumerate(diamond_events(), start=1):
            findings.extend(linter.feed(event, lineno=i))
        findings.extend(linter.finish())
        assert findings == []

    def test_diamond_stream_via_bp_lines_is_clean(self):
        lines = [e.to_bp() for e in diamond_events()]
        assert run_lines(lines) == []

    def test_failing_diamond_stream_is_still_clean(self):
        # a failed job is a legitimate run, not a lint problem
        lines = [e.to_bp() for e in diamond_events(fail_job="b")]
        errors = [f for f in run_lines(lines) if f.severity >= Severity.ERROR]
        assert errors == []

    def test_pegasus_engine_stream_is_clean(self):
        from repro.pegasus import run_pegasus_workflow
        from repro.triana.appender import MemoryAppender
        from repro.workloads import diamond

        sink = MemoryAppender()
        run_pegasus_workflow(diamond(runtime=10.0), sink, seed=0)
        linter = StreamLinter()
        findings = []
        for i, event in enumerate(sink.events, start=1):
            findings.extend(linter.feed(event, lineno=i))
        findings.extend(linter.finish())
        assert findings == []

    def test_triana_engine_stream_is_clean(self):
        from repro.triana.appender import MemoryAppender
        from repro.triana.scheduler import Scheduler
        from repro.triana.stampede_log import StampedeLog
        from repro.triana.taskgraph import TaskGraph
        from repro.triana.unit import CallableUnit, ConstantUnit, GatherUnit
        from repro.util.uuidgen import derive_uuid

        g = TaskGraph("diamond")
        a = g.add(ConstantUnit("a", 1, seconds=10.0))
        b = g.add(CallableUnit("b", lambda ins: ins[0], seconds=10.0))
        c = g.add(CallableUnit("c", lambda ins: ins[0], seconds=10.0))
        d = g.add(GatherUnit("d", seconds=10.0))
        for parent, child in ((a, b), (a, c), (b, d), (c, d)):
            g.connect(parent, child)
        sink = MemoryAppender()
        sched = Scheduler(g, seed=0)
        StampedeLog(sched, sink, xwf_id=derive_uuid("lint", "triana"))
        sched.run()
        linter = StreamLinter()
        findings = []
        for i, event in enumerate(sink.events, start=1):
            findings.extend(linter.feed(event, lineno=i))
        findings.extend(linter.finish())
        assert findings == []


class TestSchemaRules:
    def test_stl101_malformed_line(self):
        assert "STL101" in ids(run_lines(["not a bp line at all"]))

    def test_stl101_missing_required_envelope(self):
        assert "STL101" in ids(run_lines(["ts=2012-03-13T12:00:00.000000Z foo=1"]))

    def test_stl102_unknown_event(self):
        findings = run_lines([bp("stampede.not.a.thing")])
        assert "STL102" in ids(findings)

    def test_stl102_suppressed_by_config(self):
        cfg = LintConfig(allow_unknown_events=True)
        findings = run_lines([bp("stampede.not.a.thing")], config=cfg)
        assert "STL102" not in ids(findings)

    def test_stl103_missing_mandatory_attr(self):
        findings = run_lines([bp("stampede.xwf.start")])  # no restart_count
        assert "STL103" in ids(findings)

    def test_stl104_unknown_attr(self):
        findings = run_lines([bp("stampede.xwf.start", restart_count=0,
                                 flavor="spicy")])
        assert "STL104" in ids(findings)

    def test_stl104_suppressed_by_config(self):
        cfg = LintConfig(allow_unknown_attrs=True)
        findings = run_lines([bp("stampede.xwf.start", restart_count=0,
                                 flavor="spicy")], config=cfg)
        assert "STL104" not in ids(findings)

    def test_stl105_bad_attr_type(self):
        findings = run_lines([bp("stampede.xwf.start", restart_count="soon")])
        assert "STL105" in ids(findings)

    def test_stl106_duplicate_attr(self):
        line = bp("stampede.xwf.start", restart_count=0) + " restart_count=1"
        assert "STL106" in ids(run_lines([line]))


class TestLifecycleRules:
    def test_stl107_illegal_transition(self):
        lines = [
            bp("stampede.job_inst.submit.start", **{"job.id": "j", "job_inst.id": 1}),
            bp("stampede.job_inst.post.start",
               ts="2012-03-13T12:00:01.000000Z",
               **{"job.id": "j", "job_inst.id": 1}),
        ]
        assert "STL107" in ids(run_lines(lines))

    def test_stl108_event_after_terminal(self):
        lines = [
            bp("stampede.job_inst.abort.info", **{"job.id": "j", "job_inst.id": 1}),
            bp("stampede.job_inst.main.start",
               ts="2012-03-13T12:00:01.000000Z",
               **{"job.id": "j", "job_inst.id": 1}),
        ]
        assert "STL108" in ids(run_lines(lines))

    def test_post_script_after_success_is_legal(self):
        j = {"job.id": "j", "job_inst.id": 1}
        t = lambda s: f"2012-03-13T12:00:{s:02d}.000000Z"  # noqa: E731
        lines = [
            bp("stampede.job_inst.submit.start", ts=t(0), **j),
            bp("stampede.job_inst.submit.end", ts=t(1), status=0, **j),
            bp("stampede.job_inst.main.start", ts=t(2), **j),
            bp("stampede.job_inst.main.term", ts=t(3), status=0, **j),
            bp("stampede.job_inst.main.end", ts=t(3), status=0, exitcode=0,
               site="local", **{"local.dur": 1.0, **j}),
            bp("stampede.job_inst.post.start", ts=t(4), **j),
            bp("stampede.job_inst.post.term", ts=t(5), status=0, **j),
            bp("stampede.job_inst.post.end", ts=t(5), status=0, **j),
        ]
        findings = run_lines(lines)
        assert "STL107" not in ids(findings)
        assert "STL108" not in ids(findings)


class TestPairingRules:
    def test_stl109_start_without_end(self):
        findings = run_lines([bp("stampede.xwf.start", restart_count=0)])
        assert "STL109" in ids(findings)

    def test_stl110_end_without_start(self):
        findings = run_lines([bp("stampede.xwf.end", restart_count=0, status=0)])
        assert "STL110" in ids(findings)

    def test_matched_pair_is_clean(self):
        lines = [
            bp("stampede.xwf.start", restart_count=0),
            bp("stampede.xwf.end", ts="2012-03-13T12:00:05.000000Z",
               restart_count=0, status=0),
        ]
        findings = run_lines(lines)
        assert "STL109" not in ids(findings)
        assert "STL110" not in ids(findings)


class TestOrderingAndIdentityRules:
    def test_stl111_nonmonotonic_timestamp(self):
        lines = [
            bp("stampede.xwf.start", ts="2012-03-13T12:00:10.000000Z",
               restart_count=0),
            bp("stampede.xwf.end", ts="2012-03-13T12:00:05.000000Z",
               restart_count=0, status=0),
        ]
        assert "STL111" in ids(run_lines(lines))

    def test_stl112_orphan_reference(self):
        line = bp("stampede.task.edge",
                  **{"parent.task.id": "a", "child.task.id": "b"})
        assert "STL112" in ids(run_lines([line]))

    def test_stl112_reported_once_per_entity(self):
        lines = [
            bp("stampede.job_inst.main.start",
               **{"job.id": "ghost", "job_inst.id": 1}),
            bp("stampede.job_inst.main.start",
               ts="2012-03-13T12:00:01.000000Z",
               **{"job.id": "ghost", "job_inst.id": 1}),
        ]
        orphans = [f for f in run_lines(lines) if f.rule_id == "STL112"]
        assert len(orphans) == 1

    def test_stl113_duplicate_delivery(self):
        line = bp("stampede.xwf.start", restart_count=0)
        assert "STL113" in ids(run_lines([line, line]))

    def test_retransmission_with_new_ts_is_not_duplicate(self):
        lines = [
            bp("stampede.xwf.start", restart_count=0),
            bp("stampede.xwf.start", ts="2012-03-13T12:00:01.000000Z",
               restart_count=0),
        ]
        assert "STL113" not in ids(run_lines(lines))


class TestWholeFile:
    def test_corrupted_fixture_covers_stream_rules(self):
        findings = lint_bp(os.path.join(FIXTURES, "corrupted.bp"))
        got = ids(findings)
        expected = {f"STL1{n:02d}" for n in range(1, 14)}  # STL101..STL113
        assert expected <= got

    def test_findings_are_line_anchored(self):
        findings = lint_bp(os.path.join(FIXTURES, "corrupted.bp"))
        assert all(f.line >= 1 for f in findings)

    def test_select_filters_stream_findings(self):
        cfg = LintConfig.build(select=["STL101"])
        findings = lint_bp(os.path.join(FIXTURES, "corrupted.bp"), config=cfg)
        assert ids(findings) == {"STL101"}
