"""Rule registry, configuration, reporters and exit codes."""
import json

import pytest

from repro.lint import (
    RULES,
    Finding,
    LintConfig,
    Severity,
    exit_code_for,
    get_rule,
    make_finding,
    render_json,
    render_text,
    summarize,
)


class TestRegistry:
    def test_ids_are_stable_and_well_formed(self):
        for rule_id, rule in RULES.items():
            assert rule_id == rule.rule_id
            assert rule_id.startswith("STL") and len(rule_id) == 6
            assert rule_id[3:].isdigit()
            assert rule.name and rule.summary
            assert isinstance(rule.severity, Severity)

    def test_both_families_present(self):
        workflow = {r for r in RULES if r < "STL100"}
        stream = {r for r in RULES if r >= "STL100"}
        assert len(workflow) >= 10
        assert len(stream) >= 10

    def test_get_rule(self):
        assert get_rule("STL001").name == "workflow-cycle"
        with pytest.raises(KeyError):
            get_rule("STL999")

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestFinding:
    def test_str_has_location_and_rule(self):
        f = make_finding("STL001", "cycle: a -> b -> a", file="wf.dax", line=7)
        text = str(f)
        assert "wf.dax:7" in text
        assert "STL001" in text
        assert "cycle: a -> b -> a" in text

    def test_to_dict_roundtrips_through_json(self):
        f = make_finding("STL104", "who knows", file="log.bp", line=3)
        data = json.loads(json.dumps(f.to_dict()))
        assert data["rule"] == "STL104"
        assert data["severity"] == "warning"
        assert data["file"] == "log.bp"
        assert data["line"] == 3


class TestLintConfig:
    def _findings(self):
        return [
            make_finding("STL001", "cycle", file="a", line=1),
            make_finding("STL004", "unreachable", file="a", line=2),
            make_finding("STL104", "unknown attr", file="b", line=3),
        ]

    def test_default_keeps_everything(self):
        assert len(LintConfig().apply(self._findings())) == 3

    def test_select_restricts(self):
        cfg = LintConfig.build(select=["STL001"])
        kept = cfg.apply(self._findings())
        assert [f.rule_id for f in kept] == ["STL001"]

    def test_select_prefix_expands(self):
        cfg = LintConfig.build(select=["STL0"])
        kept = cfg.apply(self._findings())
        assert {f.rule_id for f in kept} == {"STL001", "STL004"}

    def test_ignore_subtracts(self):
        cfg = LintConfig.build(ignore=["STL104"])
        assert {f.rule_id for f in cfg.apply(self._findings())} == {
            "STL001", "STL004",
        }

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            LintConfig.build(select=["STL999"])
        with pytest.raises(ValueError):
            LintConfig.build(ignore=["banana"])

    def test_severity_override(self):
        cfg = LintConfig.build(severity_overrides={"STL104": "error"})
        kept = cfg.apply(self._findings())
        by_id = {f.rule_id: f for f in kept}
        assert by_id["STL104"].severity is Severity.ERROR
        assert by_id["STL001"].severity is Severity.ERROR  # untouched


class TestReporters:
    def _findings(self):
        return [
            make_finding("STL001", "cycle", file="a.dax", line=1),
            make_finding("STL004", "unreachable", file="a.dax", line=2),
        ]

    def test_summarize(self):
        counts = summarize(self._findings())
        assert counts["error"] == 1
        assert counts["warning"] == 1
        assert counts["total"] == 2

    def test_render_text(self):
        out = render_text(self._findings())
        assert "a.dax:1" in out and "STL001" in out
        assert "1 error" in out

    def test_render_text_empty(self):
        assert "no findings" in render_text([])

    def test_render_json(self):
        data = json.loads(render_json(self._findings()))
        assert len(data["findings"]) == 2
        assert data["summary"]["error"] == 1

    def test_exit_codes(self):
        errors = [make_finding("STL001", "x", file="f", line=1)]
        warnings = [make_finding("STL004", "x", file="f", line=1)]
        assert exit_code_for([]) == 0
        assert exit_code_for(errors) == 1
        assert exit_code_for(warnings) == 0
        assert exit_code_for(warnings, fail_on=Severity.WARNING) == 1


def test_finding_is_dataclass_with_context():
    f = Finding(
        rule_id="STL101",
        severity=Severity.ERROR,
        message="bad line",
        file="x.bp",
        line=9,
        context={"raw": "garbage"},
    )
    assert f.to_dict()["context"] == {"raw": "garbage"}
