"""The stampede-lint command-line interface."""
import io
import json
import os

from repro.lint.cli import main
from repro.pegasus.dax import write_dax
from repro.workloads import diamond

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BROKEN_DAX = os.path.join(FIXTURES, "broken.dax")
BROKEN_TG = os.path.join(FIXTURES, "broken_taskgraph.xml")
CORRUPTED_BP = os.path.join(FIXTURES, "corrupted.bp")


class TestExitCodes:
    def test_clean_input_exits_zero(self, tmp_path, capsys):
        path = write_dax(diamond(), tmp_path / "clean.dax")
        assert main([path]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_errors_exit_one(self, capsys):
        assert main([BROKEN_DAX]) == 1

    def test_warnings_exit_zero_by_default(self, capsys):
        assert main(["--select", "STL004", BROKEN_DAX]) == 0

    def test_fail_on_warning(self, capsys):
        assert main(["--fail-on", "warning", "--select", "STL004",
                     BROKEN_DAX]) == 1

    def test_no_inputs_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_bad_rule_id_is_usage_error(self, capsys):
        assert main(["--select", "STL999", BROKEN_DAX]) == 2


class TestOutputFormats:
    def test_text_report(self, capsys):
        main([BROKEN_DAX])
        out = capsys.readouterr().out
        assert "broken.dax:" in out
        assert "STL001" in out
        assert "finding(s)" in out

    def test_json_report(self, capsys):
        main(["--format", "json", BROKEN_DAX])
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["total"] == len(data["findings"])
        assert any(f["rule"] == "STL001" for f in data["findings"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "STL001" in out and "STL113" in out


class TestSelection:
    def test_select(self, capsys):
        main(["--select", "STL003", "--format", "json", BROKEN_DAX])
        data = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in data["findings"]} == {"STL003"}

    def test_ignore(self, capsys):
        main(["--ignore", "STL003,STL008", "--format", "json", BROKEN_DAX])
        data = json.loads(capsys.readouterr().out)
        got = {f["rule"] for f in data["findings"]}
        assert "STL003" not in got and "STL008" not in got

    def test_multiple_inputs(self, capsys):
        main(["--format", "json", BROKEN_DAX, BROKEN_TG, CORRUPTED_BP])
        data = json.loads(capsys.readouterr().out)
        files = {f["file"] for f in data["findings"]}
        assert len(files) == 3


class TestStdin:
    def test_dash_reads_bp_from_stdin(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("this is not a bp line\n")
        )
        assert main(["-"]) == 1
        assert "STL101" in capsys.readouterr().out


class TestAcceptance:
    def test_seeded_fixtures_cover_at_least_12_rules(self, capsys):
        main(["--format", "json", BROKEN_DAX, BROKEN_TG, CORRUPTED_BP])
        data = json.loads(capsys.readouterr().out)
        assert len({f["rule"] for f in data["findings"]}) >= 12
