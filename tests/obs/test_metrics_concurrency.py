"""MetricsRegistry under contention: scrape while 8 threads write.

``render_prometheus`` walks every instrument while engines keep
recording into them.  These tests race a scraper against writer threads
and assert the two safety properties the dashboard depends on:

* every scrape parses as well-formed exposition text (no torn lines,
  no half-registered instruments);
* counters and histogram counts only ever move forward between scrapes
  (a torn multi-field histogram read would show sum/count regressing).
"""
import re
import threading

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry

WRITERS = 8
ROUNDS = 300

_LINE = re.compile(
    r"^(?:# (?:HELP|TYPE) [a-zA-Z_][a-zA-Z0-9_]* .+"
    r"|[a-zA-Z_][a-zA-Z0-9_]*(?:\{[^{}]*\})? (?:[-+]?Inf|-?[0-9][0-9.eE+-]*))$"
)
_LE = re.compile(r'le="([^"]+)"')


def parse_exposition(text):
    """Strict-ish parse of the v0.0.4 text format -> {series: float}."""
    values = {}
    for line in text.splitlines():
        if not line:
            continue
        assert _LINE.match(line), f"malformed exposition line: {line!r}"
        if line.startswith("#"):
            continue
        series, raw = line.rsplit(" ", 1)
        values[series] = float(raw.replace("Inf", "inf"))
    return values


def bucket_counts(values, name):
    """Cumulative histogram bucket counts ordered by their le bound."""
    out = []
    for series, value in values.items():
        if series.startswith(name + "_bucket"):
            le = _LE.search(series).group(1)
            out.append((float(le.replace("Inf", "inf")), value))
    return [count for _, count in sorted(out)]


class _Writers:
    """8 threads hammering one counter/gauge/histogram + a labelled
    counter each, with a lock-guarded authoritative total mirrored into
    a separate counter via ``set_total`` from a scrape-time collector —
    the intended use of that method."""

    def __init__(self, registry):
        self.registry = registry
        self.stop = threading.Event()
        self.counter = registry.counter("mc_events_total", help="events")
        self.gauge = registry.gauge("mc_depth")
        self.hist = registry.histogram(
            "mc_latency_seconds", buckets=(0.01, 0.1, 1.0)
        )
        self._source_mu = threading.Lock()
        self._source = 0
        mirror = registry.counter("mc_mirror_total")
        registry.register_collector(
            lambda reg: mirror.set_total(self.source())
        )
        self.threads = [
            threading.Thread(target=self._writer, args=(wid,))
            for wid in range(WRITERS)
        ]
        for t in self.threads:
            t.start()

    def source(self):
        with self._source_mu:
            return self._source

    def _writer(self, wid):
        # per-thread labelled counter exercises get-or-create under race
        mine = self.registry.counter("mc_per_writer_total", labels={"w": str(wid)})
        n = 0
        while not self.stop.is_set():
            self.counter.inc()
            mine.inc()
            self.gauge.set(n % 32)
            self.hist.observe((n % 7) * 0.03)
            with self._source_mu:
                self._source += 1
            n += 1

    def join(self):
        self.stop.set()
        for t in self.threads:
            t.join(timeout=10)
        assert all(not t.is_alive() for t in self.threads)


class TestScrapeUnderContention:
    def test_output_parseable_and_counters_monotonic(self):
        registry = MetricsRegistry()
        writers = _Writers(registry)
        try:
            last_events = last_mirror = last_hist_count = -1.0
            for _ in range(ROUNDS):
                values = parse_exposition(render_prometheus(registry))
                events = values.get("mc_events_total", 0.0)
                mirror = values.get("mc_mirror_total", 0.0)
                hist_count = values.get("mc_latency_seconds_count", 0.0)
                assert events >= last_events, "counter went backwards"
                assert mirror >= last_mirror, "set_total mirror regressed"
                assert hist_count >= last_hist_count, "histogram count regressed"
                assert values.get("mc_latency_seconds_sum", 0.0) >= 0
                counts = bucket_counts(values, "mc_latency_seconds")
                assert counts == sorted(counts), "non-cumulative buckets"
                # _count is read under a later lock acquisition than the
                # buckets, so mid-race it may only run ahead, never behind
                if counts:
                    assert counts[-1] <= hist_count
                last_events, last_mirror, last_hist_count = (
                    events, mirror, hist_count,
                )
        finally:
            writers.join()

        # quiescent cross-check: final scrape agrees with instrument state
        final = parse_exposition(render_prometheus(registry))
        per_writer = [
            v for k, v in final.items() if k.startswith("mc_per_writer_total{")
        ]
        assert len(per_writer) == WRITERS
        assert final["mc_events_total"] == sum(per_writer)
        assert final["mc_mirror_total"] == final["mc_events_total"]
        assert final["mc_latency_seconds_count"] == sum(per_writer)

    def test_concurrent_get_or_create_returns_one_instrument(self):
        registry = MetricsRegistry()
        out = []
        barrier = threading.Barrier(WRITERS)

        def make():
            barrier.wait()
            out.append(registry.counter("shared_total"))

        threads = [threading.Thread(target=make) for _ in range(WRITERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(out) == WRITERS
        assert all(c is out[0] for c in out), "get-or-create raced"

    def test_snapshot_races_with_writers(self):
        registry = MetricsRegistry()
        writers = _Writers(registry)
        try:
            last = -1.0
            for _ in range(200):
                snap = registry.snapshot()
                events = snap.get("mc_events_total", 0.0)
                assert events >= last
                last = events
        finally:
            writers.join()
