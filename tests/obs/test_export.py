"""Exporters: Prometheus text exposition, /metrics server, BP self-log.

Includes the acceptance round trip: the BP self-logger's output must
parse under the strict BP parser, load through ``nl_load`` into the
``obs_event`` table, and the archived ``stampede.obs.*`` values must
match the registry snapshot it was taken from.
"""
import json
import urllib.error
import urllib.request

import pytest

from repro.loader.nl_load import load_file, make_loader
from repro.model.entities import ObsEventRow
from repro.netlogger.bp import parse_bp_line
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    BPSelfLogger,
    MetricsServer,
    ObsEvents,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer


def seeded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("events_total", "Events processed.").inc(7)
    reg.gauge("queue_depth", labels={"queue": "q1"}).set(3)
    reg.histogram("flush_seconds", buckets=(0.1, 1.0)).observe(0.05)
    reg.histogram("flush_seconds", buckets=(0.1, 1.0)).observe(0.5)
    return reg


class TestRenderPrometheus:
    def test_exposition_shape(self):
        text = render_prometheus(seeded_registry())
        assert "# TYPE events_total counter" in text
        assert "events_total 7" in text
        assert '# TYPE queue_depth gauge' in text
        assert 'queue_depth{queue="q1"} 3' in text
        assert "# TYPE flush_seconds histogram" in text
        assert 'flush_seconds_bucket{le="0.1"} 1' in text
        assert 'flush_seconds_bucket{le="1"} 2' in text
        assert 'flush_seconds_bucket{le="+Inf"} 2' in text
        assert "flush_seconds_count 2" in text
        assert text.endswith("\n")

    def test_help_escaped_once_per_name(self):
        text = render_prometheus(seeded_registry())
        assert text.count("# TYPE events_total") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"path": 'a"b\\c'}).inc()
        text = render_prometheus(reg)
        assert 'path="a\\"b\\\\c"' in text


class TestMetricsServer:
    def test_serves_metrics_with_content_type(self):
        with MetricsServer(seeded_registry()) as server:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                body = resp.read().decode()
        assert "events_total 7" in body

    def test_unknown_path_404(self):
        with MetricsServer(seeded_registry()) as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=5)
            assert err.value.code == 404


class TestBPSelfLogRoundTrip:
    def test_lines_strict_parse(self):
        logger = BPSelfLogger(seeded_registry())
        lines = logger.lines(now=1000.0)
        assert lines
        for line in lines:
            attrs = parse_bp_line(line, strict=True)
            assert attrs["event"].startswith("stampede.obs.")
            assert "ts" in attrs

    def test_roundtrip_into_archive_matches_registry(self, tmp_path):
        reg = seeded_registry()
        logger = BPSelfLogger(reg, component="unittest")
        path = tmp_path / "self.bp"
        count = logger.write(str(path), now=1000.0)
        snapshot = reg.snapshot()

        loader = make_loader("sqlite:///:memory:")  # strict by default
        load_file(str(path), loader)
        assert loader.archive.count(ObsEventRow) == count

        rows = loader.archive.query(ObsEventRow).all()
        by_kind = {}
        for row in rows:
            by_kind.setdefault(row.event, []).append(row)
        counters = {r.name: r.value for r in by_kind[ObsEvents.COUNTER]}
        assert counters["events_total"] == snapshot["events_total"]
        gauges = by_kind[ObsEvents.GAUGE]
        assert gauges[0].value == 3.0
        assert json.loads(gauges[0].payload)["label.queue"] == "q1"
        hist = by_kind[ObsEvents.HISTOGRAM][0]
        payload = json.loads(hist.payload)
        assert float(payload["count"]) == snapshot["flush_seconds_count"]
        assert float(payload["sum"]) == pytest.approx(
            snapshot["flush_seconds_sum"]
        )
        assert all(r.component == "unittest" for r in rows)

    def test_span_events_carry_correlation_ids(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = BPSelfLogger(reg, tracer=tracer).events(now=5.0)
        spans = [e for e in events if e.event == ObsEvents.SPAN]
        assert len(spans) == 2
        by_name = {e.get("span"): e for e in spans}
        assert by_name["inner"].get("parent.id") == by_name["outer"].get("span.id")
        assert by_name["inner"].get("trace.id") == by_name["outer"].get("trace.id")

    def test_publish_snapshot_onto_bus(self):
        from repro.bus.broker import Broker
        from repro.bus.client import EventPublisher

        broker = Broker()
        consumer = broker.subscribe("stampede.obs.#")
        published = BPSelfLogger(seeded_registry()).publish(EventPublisher(broker))
        assert published > 0
        assert consumer.depth() == published
