"""Trace spans, header stamps, and end-to-end pipeline latency."""
import time

from repro.bus.broker import Broker
from repro.bus.client import EventPublisher
from repro.loader.nl_load import load_from_bus
from repro.obs.metrics import MetricsRegistry
from repro.bus.queues import Message
from repro.obs.spans import (
    CLOCK_EPOCH,
    HEADER_CLOCK_EPOCH,
    HEADER_PUB_MONO,
    HEADER_PUB_TS,
    HEADER_TRACE,
    PipelineClock,
    Tracer,
    new_trace_id,
    stamp_headers,
)
from tests.helpers import diamond_events


class TestStamps:
    def test_new_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_stamp_headers_adds_both(self):
        headers = stamp_headers({"x-seq": 1}, trace_id="t1", now=123.0)
        assert headers[HEADER_TRACE] == "t1"
        assert headers[HEADER_PUB_TS] == 123.0
        assert headers["x-seq"] == 1

    def test_stamp_headers_does_not_overwrite(self):
        headers = stamp_headers({HEADER_TRACE: "orig", HEADER_PUB_TS: 1.0})
        assert headers[HEADER_TRACE] == "orig"
        assert headers[HEADER_PUB_TS] == 1.0

    def test_publisher_stamps_messages(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        EventPublisher(broker).publish(diamond_events()[0])
        msg = consumer.get()
        assert msg.header(HEADER_TRACE)
        assert msg.header(HEADER_PUB_TS) <= time.time()

    def test_unstamped_publisher_has_no_headers(self):
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        EventPublisher(broker, stamp=False).publish(diamond_events()[0])
        assert consumer.get().header(HEADER_PUB_TS) is None


class TestTracer:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("loader.flush"):
            pass
        spans = tracer.finished_spans("loader.flush")
        assert len(spans) == 1
        assert spans[0].finished
        assert spans[0].duration >= 0.0

    def test_nested_spans_share_trace(self):
        tracer = Tracer()
        with tracer.span("flush") as outer:
            with tracer.span("archive.commit") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_registry_histogram_fed(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        with tracer.span("parse.chunk"):
            pass
        hist = reg.get("stampede_span_seconds", {"span": "parse.chunk"})
        assert hist is not None and hist.count == 1

    def test_ring_buffer_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished_spans()) == 4


class TestPipelineClock:
    def test_deliver_and_commit_observed(self):
        reg = MetricsRegistry()
        clock = PipelineClock(reg)
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        EventPublisher(broker).publish(diamond_events()[0])
        msg = consumer.get()
        clock.on_delivered(msg)
        clock.on_committed([msg])
        assert clock.deliver.count == 1
        assert clock.commit.count == 1
        assert clock.commit.sum >= clock.deliver.sum

    def test_unstamped_messages_ignored(self):
        reg = MetricsRegistry()
        clock = PipelineClock(reg)
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        EventPublisher(broker, stamp=False).publish(diamond_events()[0])
        msg = consumer.get()
        clock.on_delivered(msg)
        clock.on_committed([msg])
        assert clock.deliver.count == 0
        assert clock.commit.count == 0

    def test_dropped_messages_never_commit(self):
        reg = MetricsRegistry()
        clock = PipelineClock(reg)
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        EventPublisher(broker).publish(diamond_events()[0])
        msg = consumer.get()
        clock.on_delivered(msg)
        clock.on_dropped(msg)
        clock.on_committed([msg])
        assert clock.deliver.count == 1
        assert clock.commit.count == 0


class TestBusLoadInstrumented:
    def test_load_from_bus_populates_pipeline_metrics(self):
        reg = MetricsRegistry()
        broker = Broker()
        publisher = EventPublisher(broker)
        events = diamond_events()
        # declare+bind before publishing so nothing is unroutable
        broker.declare_queue("loadq")
        broker.bind_queue("loadq", "stampede.#")
        for event in events:
            publisher.publish(event)
        loader = load_from_bus(
            broker, queue_name="loadq", metrics=reg, batch_size=100
        )
        snap = reg.snapshot()
        assert loader.stats.events_processed == len(events)
        # collector-mirrored loader counters
        assert snap["stampede_loader_events_total"] == float(len(events))
        assert snap["stampede_loader_rows_inserted_total"] > 0
        # pipeline latency observed for every archived event
        assert snap['stampede_pipeline_latency_seconds_count{stage="deliver"}'] == float(
            len(events)
        )
        assert snap['stampede_pipeline_latency_seconds_count{stage="commit"}'] == float(
            len(events)
        )
        # bus collectors see the queue and exchange
        assert snap['stampede_bus_published_total{exchange="stampede"}'] == float(
            len(events)
        )
        assert (
            snap['stampede_bus_queue_events_total{op="acked",queue="loadq"}']
            == float(len(events))
        )
        # archive transactions were timed
        assert snap["stampede_archive_transactions_total"] >= 1.0
        assert snap["stampede_loader_flush_seconds_count"] >= 1.0


class TestClockEpoch:
    """The wall-clock-step bugfix: latency samples prefer the monotonic
    stamp when the publisher shares this process's clock epoch, and
    cross-process wall-clock samples can never go negative into the
    histogram."""

    def _msg(self, tag=1, **headers):
        return Message("stampede.x", "body", delivery_tag=tag, headers=headers)

    def test_same_epoch_uses_monotonic_clock(self):
        clock = PipelineClock(MetricsRegistry())
        broker = Broker()
        consumer = broker.subscribe("stampede.#")
        EventPublisher(broker).publish(diamond_events()[0])
        msg = consumer.get()
        assert msg.header(HEADER_CLOCK_EPOCH) == CLOCK_EPOCH
        # poison the wall stamp: if the monotonic path is taken (it must
        # be — same epoch), this absurd value is never consulted
        msg.headers[HEADER_PUB_TS] = time.time() + 10_000
        clock.on_delivered(msg)
        assert clock.deliver.count == 1
        assert clock.cross_process == 0
        assert clock.skipped_negative == 0

    def test_foreign_epoch_falls_back_to_wall_clock(self):
        clock = PipelineClock(MetricsRegistry())
        msg = self._msg(
            **{
                HEADER_PUB_MONO: time.monotonic() - 5.0,
                HEADER_CLOCK_EPOCH: "other-process",
                HEADER_PUB_TS: time.time() - 0.25,
            }
        )
        clock.on_delivered(msg)
        assert clock.cross_process == 1
        assert clock.deliver.count == 1
        assert clock.deliver.sum >= 0.2  # the wall delta, not the mono one

    def test_foreign_monotonic_stamp_never_misread(self):
        """The original bug: a remote publisher's monotonic stamp read
        against the local monotonic clock yields a garbage (often huge
        or negative) latency.  A foreign epoch must force the wall
        path even when x-pub-mono is present."""
        clock = PipelineClock(MetricsRegistry())
        msg = self._msg(
            **{
                # an implausible mono base from "another machine"
                HEADER_PUB_MONO: time.monotonic() - 1e6,
                HEADER_CLOCK_EPOCH: "other-process",
                HEADER_PUB_TS: time.time(),
            }
        )
        clock.on_delivered(msg)
        assert clock.deliver.count == 1
        assert clock.deliver.sum < 60.0  # nowhere near the 1e6 mono delta

    def test_negative_wall_sample_skipped_not_zeroed(self):
        clock = PipelineClock(MetricsRegistry())
        msg = self._msg(
            **{
                HEADER_PUB_MONO: time.monotonic(),
                HEADER_CLOCK_EPOCH: "other-process",
                HEADER_PUB_TS: time.time() + 30.0,  # peer clock ahead
            }
        )
        clock.on_delivered(msg)
        clock.on_committed([msg])
        assert clock.skipped_negative >= 1
        assert clock.deliver.count == 0
        assert clock.commit.count == 0
        assert clock.cross_process == 2  # tallied as cross-process anyway
