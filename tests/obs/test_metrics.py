"""Unit tests for the metrics primitives and registry."""
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_cannot_decrease(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_mirrors_external_source(self):
        c = Counter("mirrored_total")
        c.set_total(42)
        assert c.value == 42.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0


class TestHistogram:
    def test_observe_buckets_cumulative(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.cumulative_buckets() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]

    def test_boundary_value_lands_in_le_bucket(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(1.0)  # le="1.0" is inclusive
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestRegistry:
    def test_get_or_create_dedupes(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.counter("a_total", labels={"k": "1"}) is not reg.counter("a_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("1starts_with_digit")

    def test_collectors_run_per_scrape(self):
        reg = MetricsRegistry()
        calls = []
        reg.register_collector(lambda r: calls.append(1))
        reg.collect()
        reg.snapshot()
        assert len(calls) == 2

    def test_snapshot_expands_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"] == 2.0
        assert snap["h_seconds_sum"] == 0.5
        assert snap["h_seconds_count"] == 1.0

    def test_labeled_snapshot_keys(self):
        reg = MetricsRegistry()
        reg.gauge("depth", labels={"queue": "q1"}).set(3)
        assert reg.snapshot()['depth{queue="q1"}'] == 3.0

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        h = reg.histogram("lat_seconds", buckets=(0.5,))

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0
        assert h.count == 8000

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
