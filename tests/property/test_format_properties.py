"""Property tests for the interchange formats: jobstate.log, kickstart
records and DAX documents all round-trip arbitrary well-formed content."""
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow
from repro.pegasus.condor_log import JobstateEntry, KickstartRecord
from repro.pegasus.dax import dax_to_string, parse_dax

identifiers = st.text(
    alphabet=string.ascii_letters + string.digits + "_-.",
    min_size=1,
    max_size=20,
).filter(lambda s: not s[0] in "-.")

job_states = st.sampled_from(
    ["SUBMIT", "EXECUTE", "JOB_TERMINATED", "JOB_SUCCESS", "JOB_FAILURE",
     "POST_SCRIPT_STARTED", "POST_SCRIPT_SUCCESS"]
)


@given(
    ts=st.floats(0, 4e9, allow_nan=False).map(lambda x: round(x, 3)),
    job=identifiers,
    state=job_states,
    sched=identifiers,
    site=identifiers,
    seq=st.integers(1, 99),
)
def test_jobstate_roundtrip(ts, job, state, sched, site, seq):
    entry = JobstateEntry(ts, job, state, sched, site, seq)
    assert JobstateEntry.from_line(entry.to_line()) == entry


safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
).map(lambda s: s.strip()).filter(lambda s: s)


@given(
    job=identifiers,
    seq=st.integers(1, 9),
    inv=st.integers(1, 99),
    transformation=identifiers,
    start=st.floats(0, 1e9, allow_nan=False).map(lambda x: round(x, 6)),
    duration=st.floats(0, 1e5, allow_nan=False).map(lambda x: round(x, 6)),
    exitcode=st.integers(-127, 255),
    argv=safe_text,
    task_id=st.none() | identifiers,
)
@settings(max_examples=100)
def test_kickstart_roundtrip(job, seq, inv, transformation, start, duration,
                             exitcode, argv, task_id):
    record = KickstartRecord(
        exec_job_id=job,
        job_submit_seq=seq,
        inv_seq=inv,
        transformation=transformation,
        executable=f"/bin/{transformation}",
        start=start,
        duration=duration,
        exitcode=exitcode,
        site="site",
        hostname="host",
        argv=argv,
        task_id=task_id,
    )
    assert KickstartRecord.from_xml(record.to_xml()) == record


@st.composite
def small_workflows(draw):
    n = draw(st.integers(1, 12))
    aw = AbstractWorkflow(draw(identifiers))
    for i in range(n):
        aw.add_task(
            AbstractTask(
                f"t{i}",
                transformation=draw(identifiers),
                argv=draw(st.just("") | safe_text),
                runtime_estimate=round(draw(st.floats(0.1, 1e4)), 6),
            )
        )
    for _ in range(draw(st.integers(0, 2 * n))):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a < b:
            aw.add_dependency(f"t{a}", f"t{b}")
    return aw


@given(aw=small_workflows())
@settings(max_examples=60, deadline=None)
def test_dax_roundtrip(aw):
    back = parse_dax(dax_to_string(aw))
    assert back.label == aw.label
    assert {t.task_id for t in back.tasks()} == {t.task_id for t in aw.tasks()}
    assert set(back.edges()) == set(aw.edges())
    for task in aw.tasks():
        parsed = back.task(task.task_id)
        assert parsed.transformation == task.transformation
        assert parsed.runtime_estimate == task.runtime_estimate
        assert parsed.argv.strip() == task.argv.strip()
