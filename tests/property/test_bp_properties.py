"""Property-based tests: the BP log format round-trips arbitrary data."""
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlogger.bp import format_bp_line, parse_bp_line, quote_value
from repro.netlogger.events import Level, NLEvent
from repro.util.timeutil import format_iso, parse_iso

# Attribute names: dotted identifiers like job_inst.id
name_part = st.text(
    alphabet=string.ascii_letters + string.digits + "_",
    min_size=1,
    max_size=8,
).filter(lambda s: s[0].isalpha() or s[0] == "_")
attr_names = st.builds(
    lambda parts: ".".join(parts), st.lists(name_part, min_size=1, max_size=3)
).filter(lambda n: n not in ("ts", "event", "level"))

# Values: any printable text without newlines (BP is line-oriented)
attr_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=40,
)


@given(attrs=st.dictionaries(attr_names, attr_values, max_size=8))
@settings(max_examples=200)
def test_bp_roundtrip_arbitrary_attrs(attrs):
    line_attrs = {"ts": "1.5", "event": "prop.test", **attrs}
    line = format_bp_line(line_attrs)
    parsed = parse_bp_line(line)
    assert parsed == {k: str(v) for k, v in line_attrs.items()}


@given(value=attr_values)
def test_quote_value_always_parseable(value):
    line = f"ts=1 event=x v={quote_value(value)}"
    assert parse_bp_line(line)["v"] == value


@given(
    ts=st.floats(min_value=0, max_value=4e9, allow_nan=False),
    attrs=st.dictionaries(attr_names, attr_values, max_size=5),
    level=st.sampled_from(list(Level)),
)
@settings(max_examples=200)
def test_nlevent_roundtrip(ts, attrs, level):
    event = NLEvent("stampede.prop.test", ts, attrs, level=level)
    back = NLEvent.from_bp(event.to_bp())
    assert back.event == event.event
    assert abs(back.ts - event.ts) < 1e-5  # microsecond ISO precision
    assert back.level is level
    assert back.attrs == {k: str(v) for k, v in attrs.items()}


@given(ts=st.floats(min_value=0, max_value=4e9, allow_nan=False))
def test_iso_roundtrip(ts):
    assert abs(parse_iso(format_iso(ts)) - ts) < 1e-5
