"""Property tests across the whole pipeline: any engine run, loaded into
the archive, satisfies the data model's referential and counting
invariants."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loader import load_events
from repro.model.entities import (
    InvocationRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    TaskRow,
)
from repro.pegasus import PlannerConfig, Site, SiteCatalog, run_pegasus_workflow
from repro.query import StampedeQuery
from repro.triana.appender import MemoryAppender
from repro.workloads import random_layered_dag


@given(
    n_tasks=st.integers(2, 25),
    cluster=st.integers(1, 4),
    failure_rate=st.sampled_from([0.0, 0.0, 0.3]),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_archive_invariants_hold_for_any_run(n_tasks, cluster, failure_rate, seed):
    aw = random_layered_dag(n_tasks, n_layers=4, seed=seed)
    catalog = SiteCatalog(
        [Site("s", slots=8, failure_rate=failure_rate, mean_queue_delay=1.0)]
    )
    sink = MemoryAppender()
    run = run_pegasus_workflow(
        aw, sink, catalog=catalog,
        planner_config=PlannerConfig(cluster_size=cluster, max_retries=2),
        seed=seed,
    )
    loader = load_events(sink.events)
    archive = loader.archive
    q = StampedeQuery(archive)
    wf = q.workflows()[0]

    # counting invariants
    assert archive.count(TaskRow) == n_tasks
    assert archive.count(JobRow) == len(run.ew)
    counts = q.summary_counts(wf.wf_id)
    assert counts.jobs_total == len(run.ew)
    assert (
        counts.jobs_succeeded + counts.jobs_failed + counts.jobs_incomplete
        == counts.jobs_total
    )
    assert counts.jobs_succeeded == run.report.succeeded
    assert counts.jobs_failed == run.report.failed
    assert counts.jobs_retries == run.report.retries

    # referential integrity: invocations -> job instances -> jobs
    instance_ids = {
        i.job_instance_id for i in archive.query(JobInstanceRow).all()
    }
    job_ids = {j.job_id for j in archive.query(JobRow).all()}
    for inv in archive.query(InvocationRow).all():
        assert inv.job_instance_id in instance_ids
    for inst in archive.query(JobInstanceRow).all():
        assert inst.job_id in job_ids

    # task mapping: every task maps to an existing job
    for task in archive.query(TaskRow).all():
        assert task.job_id in job_ids

    # jobstate sequences are dense per instance
    for inst_id in instance_ids:
        states = (
            archive.query(JobStateRow).eq("job_instance_id", inst_id)
            .order_by("jobstate_submit_seq").all()
        )
        assert [s.jobstate_submit_seq for s in states] == list(range(len(states)))

    # wall time covers every invocation
    wall = q.workflow_wall_time(wf.wf_id)
    assert wall is not None and wall >= 0
    for inv in q.invocations(wf.wf_id):
        assert inv.remote_duration >= 0
