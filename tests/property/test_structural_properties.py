"""Property-based tests on core structures: topic routing, graphs, clock,
query backends, and the planner's mapping invariants."""
import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bus.topic import topic_matches
from repro.orm import Column, Integer, MemoryDatabase, Query, SqliteDatabase, Table, Text
from repro.pegasus.abstract import AbstractTask, AbstractWorkflow
from repro.pegasus.executable import AUXILIARY_TYPES
from repro.pegasus.planner import Planner, PlannerConfig
from repro.util.graph import DiGraph
from repro.util.simclock import SimClock

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
routing_keys = st.builds(".".join, st.lists(words, min_size=1, max_size=5))


class TestTopicProperties:
    @given(key=routing_keys)
    def test_hash_matches_everything(self, key):
        assert topic_matches("#", key)

    @given(key=routing_keys)
    def test_exact_pattern_matches_itself(self, key):
        assert topic_matches(key, key)

    @given(key=routing_keys)
    def test_star_matches_word_count(self, key):
        n = len(key.split("."))
        assert topic_matches(".".join(["*"] * n), key)
        assert not topic_matches(".".join(["*"] * (n + 1)), key)

    @given(key=routing_keys, prefix_len=st.integers(1, 4))
    def test_prefix_hash_semantics(self, key, prefix_len):
        parts = key.split(".")
        assume(len(parts) >= prefix_len)
        pattern = ".".join(parts[:prefix_len]) + ".#"
        assert topic_matches(pattern, key)


# random DAG edges: (a, b) with a < b guarantees acyclicity
dag_edges = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).map(
        lambda t: (min(t), max(t))
    ).filter(lambda t: t[0] != t[1]),
    max_size=40,
)


class TestGraphProperties:
    @given(edges=dag_edges)
    def test_forward_edges_always_acyclic(self, edges):
        g = DiGraph()
        for a, b in edges:
            g.add_edge(a, b)
        assert g.is_dag()
        order = g.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for a, b in edges:
            assert position[a] < position[b]

    @given(edges=dag_edges)
    def test_any_backedge_creates_cycle(self, edges):
        assume(edges)
        g = DiGraph()
        for a, b in edges:
            g.add_edge(a, b)
        a, b = edges[0]
        g.add_edge(b, a)
        assert not g.is_dag()
        assert len(g.find_cycle()) >= 2

    @given(edges=dag_edges)
    def test_ancestors_descendants_duality(self, edges):
        g = DiGraph()
        for a, b in edges:
            g.add_edge(a, b)
        for node in g.nodes():
            for anc in g.ancestors(node):
                assert node in g.descendants(anc)


class TestClockProperties:
    @given(delays=st.lists(st.floats(0.001, 100.0), min_size=1, max_size=30))
    def test_events_fire_in_nondecreasing_time(self, delays):
        clock = SimClock()
        fired = []
        for d in delays:
            clock.schedule(d, lambda d=d: fired.append(clock.now))
        clock.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert clock.now == max(fired)


rows_strategy = st.lists(
    st.tuples(st.integers(-1000, 1000), st.text(string.ascii_lowercase, max_size=6)),
    max_size=30,
)


class TestBackendEquivalence:
    """sqlite and memory backends must agree on every query."""

    @given(rows=rows_strategy, threshold=st.integers(-1000, 1000))
    @settings(max_examples=50, deadline=None)
    def test_where_order_equivalence(self, rows, threshold):
        table = Table(
            "t",
            [Column("pk", Integer(), primary_key=True),
             Column("n", Integer()), Column("s", Text())],
        )
        sqlite_db, mem_db = SqliteDatabase(":memory:"), MemoryDatabase()
        for db in (sqlite_db, mem_db):
            db.create_tables([table])
            db.insert_many(
                table,
                [{"pk": i, "n": n, "s": s} for i, (n, s) in enumerate(rows)],
            )
        q1 = Query(table).where("n", ">=", threshold).order_by("n").order_by("pk")
        q2 = Query(table).where("n", ">=", threshold).order_by("n").order_by("pk")
        assert sqlite_db.select(q1) == mem_db.select(q2)
        sqlite_db.close()


transformations = st.sampled_from(["tA", "tB", "tC"])


@st.composite
def abstract_workflows(draw):
    n = draw(st.integers(1, 20))
    aw = AbstractWorkflow("prop")
    for i in range(n):
        aw.add_task(
            AbstractTask(
                f"t{i}",
                transformation=draw(transformations),
                runtime_estimate=draw(st.floats(0.5, 50.0)),
            )
        )
    n_edges = draw(st.integers(0, min(30, n * 2)))
    for _ in range(n_edges):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a < b:
            aw.add_dependency(f"t{a}", f"t{b}")
    return aw


class TestPlannerProperties:
    @given(aw=abstract_workflows(), cluster=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_every_task_mapped_exactly_once(self, aw, cluster):
        ew = Planner(config=PlannerConfig(cluster_size=cluster)).plan(aw)
        mapping = ew.task_to_job_map()
        assert set(mapping) == {t.task_id for t in aw.tasks()}
        # the EW is a DAG and respects every AW dependency
        assert ew.is_dag()
        order = {j: i for i, j in enumerate(ew.topological_order())}
        for parent, child in aw.edges():
            pj, cj = mapping[parent], mapping[child]
            if pj != cj:
                assert order[pj] < order[cj]

    @given(aw=abstract_workflows(), cluster=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_cluster_size_bound(self, aw, cluster):
        ew = Planner(config=PlannerConfig(cluster_size=cluster)).plan(aw)
        for job in ew.compute_jobs():
            assert 1 <= job.task_count <= cluster

    @given(aw=abstract_workflows())
    @settings(max_examples=30, deadline=None)
    def test_auxiliary_jobs_have_no_tasks(self, aw):
        ew = Planner().plan(aw)
        for job in ew.jobs():
            if job.job_type in AUXILIARY_TYPES:
                assert job.task_count == 0
