"""NetLogger-event publishers over the message bus.

The engines publish :class:`~repro.netlogger.events.NLEvent` objects using
the event name as the AMQP routing key; consumers (the loader, dashboards,
anomaly detectors) subscribe with topic patterns.  This module provides the
thin event-aware client layer plus a file-or-bus abstraction both engines'
appenders share.
"""
from __future__ import annotations

import itertools
import time
from typing import Iterable, Iterator, List, Optional

from repro.bus.broker import (
    DEFAULT_EXCHANGE,
    DEFAULT_POLL_TIMEOUT,
    Broker,
    ConnectionLostError,
    Consumer,
)
from repro.bus.queues import Message
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ
from repro.netlogger.events import NLEvent
from repro.netlogger.stream import BPWriter
from repro.obs.spans import (
    CLOCK_EPOCH,
    HEADER_CLOCK_EPOCH,
    HEADER_PUB_MONO,
    HEADER_PUB_TS,
    HEADER_TRACE,
    new_trace_id,
)

__all__ = ["EventPublisher", "EventConsumer", "EventSink", "BusSink", "FileSink", "MultiSink"]

#: process-wide counter giving each publisher a distinct default identity
_publisher_ids = itertools.count(1)


class EventPublisher:
    """Publishes NLEvents to a broker, keyed by their event name.

    Every message carries ``(publisher id, sequence)`` headers (sequences
    start at 1) so consumers can restore publish order and drop duplicate
    deliveries end-to-end — see :mod:`repro.bus.reliable`.  Stamped
    messages additionally carry a correlation id and a publish wall-clock
    timestamp (:mod:`repro.obs.spans`) so downstream stages can measure
    end-to-end pipeline latency.  Pass ``stamp=False`` for raw
    fire-and-forget publishing.
    """

    def __init__(
        self,
        broker: Broker,
        exchange: str = DEFAULT_EXCHANGE,
        publisher_id: Optional[str] = None,
        stamp: bool = True,
    ):
        self._broker = broker
        self._exchange = exchange
        self.publisher_id = publisher_id or f"pub-{next(_publisher_ids)}"
        self._stamp = stamp
        self.events_published = 0

    def publish(self, event: NLEvent) -> int:
        self.events_published += 1
        headers = (
            {
                HEADER_PUBLISHER: self.publisher_id,
                HEADER_SEQ: self.events_published,
                HEADER_TRACE: new_trace_id(),
                # the wall clock is the only clock a *remote* consumer
                # shares with us; the monotonic stamp (plus the epoch
                # identifying its base) lets a same-process consumer
                # measure latency immune to wall-clock adjustment
                HEADER_PUB_TS: time.time(),
                HEADER_PUB_MONO: time.monotonic(),
                HEADER_CLOCK_EPOCH: CLOCK_EPOCH,
            }
            if self._stamp
            else None
        )
        return self._broker.publish(
            event.event, event, exchange=self._exchange, headers=headers
        )

    def publish_all(self, events: Iterable[NLEvent]) -> int:
        count = 0
        for event in events:
            self.publish(event)
            count += 1
        return count


class EventConsumer:
    """Receives NLEvents from a topic subscription.

    Survives broker connection loss: :meth:`get` transparently
    re-subscribes (redeclaring the queue and binding) and carries on;
    :meth:`get_message` lets :class:`ConnectionLostError` propagate so
    batch consumers can settle in-flight work first, then call
    :meth:`reconnect` themselves.  ``reconnects`` counts recoveries.
    """

    def __init__(
        self,
        broker: Broker,
        pattern: str = "stampede.#",
        queue_name: Optional[str] = None,
        exchange: str = DEFAULT_EXCHANGE,
        durable: bool = False,
        max_length: Optional[int] = None,
        overflow: str = "drop-oldest",
    ):
        self._broker = broker
        self._pattern = pattern
        self._exchange = exchange
        self._durable = durable
        self._max_length = max_length
        self._overflow = overflow
        self.reconnects = 0
        self._consumer: Consumer = broker.subscribe(
            pattern,
            queue_name=queue_name,
            exchange=exchange,
            durable=durable,
            # a durable queue must survive its consumer disconnecting —
            # that is the whole point of declaring it durable
            auto_delete=not durable,
            max_length=max_length,
            overflow=overflow,
        )
        # remember the resolved name so a reconnect reattaches to the
        # same (durable) queue rather than an anonymous fresh one
        self._queue_name = self._consumer.queue_name

    @property
    def queue_name(self) -> str:
        return self._consumer.queue_name

    @property
    def connected(self) -> bool:
        return not self._consumer.disconnected

    def reconnect(self) -> None:
        """Re-subscribe after a connection loss (queue + binding redeclare).

        The broker requeued whatever was unacked at disconnect time, so
        those messages arrive again flagged ``redelivered``.
        """
        self.reconnects += 1
        self._consumer = self._broker.subscribe(
            self._pattern,
            queue_name=self._queue_name,
            exchange=self._exchange,
            durable=self._durable,
            auto_delete=not self._durable,
            max_length=self._max_length,
            overflow=self._overflow,
        )

    def get(
        self, timeout: Optional[float] = DEFAULT_POLL_TIMEOUT
    ) -> Optional[NLEvent]:
        try:
            msg = self._consumer.get(timeout=timeout)
        except ConnectionLostError:
            self.reconnect()
            return None
        return None if msg is None else _as_event(msg.body)

    def get_message(
        self,
        timeout: Optional[float] = DEFAULT_POLL_TIMEOUT,
        auto_ack: bool = True,
    ) -> Optional[Message]:
        """Raw message access (delivery tag + body) for at-least-once
        consumers that want to ack only after their batch commits.

        ``timeout`` follows :meth:`repro.bus.broker.Consumer.get`:
        ``None`` blocks, ``0`` polls, a positive value waits that long.
        Raises :class:`ConnectionLostError` on a dropped connection —
        batch consumers must flush/settle, then :meth:`reconnect`.
        """
        return self._consumer.get(timeout=timeout, auto_ack=auto_ack)

    def ack(self, message: Message) -> None:
        self._consumer.ack(message)

    def nack(self, message: Message, requeue: bool = True) -> None:
        self._consumer.nack(message, requeue=requeue)

    def depth(self) -> int:
        """Current queue depth (messages awaiting delivery)."""
        return self._consumer.depth()

    @staticmethod
    def as_event(message: Message) -> NLEvent:
        return _as_event(message.body)

    def drain(self) -> List[NLEvent]:
        return [_as_event(m.body) for m in self._consumer.drain()]

    def __iter__(self) -> Iterator[NLEvent]:
        for msg in self._consumer:
            yield _as_event(msg.body)

    def cancel(self) -> None:
        self._consumer.cancel()


def _as_event(body: object) -> NLEvent:
    if isinstance(body, NLEvent):
        return body
    if isinstance(body, str):
        return NLEvent.from_bp(body)
    raise TypeError(f"cannot interpret message body as NLEvent: {type(body)!r}")


class EventSink:
    """Where an engine's appender writes events (file, bus, or both)."""

    def emit(self, event: NLEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class BusSink(EventSink):
    """Sink that publishes events onto the message bus ("Rabbit Appender")."""

    def __init__(self, broker: Broker, exchange: str = DEFAULT_EXCHANGE):
        self._publisher = EventPublisher(broker, exchange)

    def emit(self, event: NLEvent) -> None:
        self._publisher.publish(event)

    @property
    def events_published(self) -> int:
        return self._publisher.events_published


class FileSink(EventSink):
    """Sink that appends BP lines to a log file."""

    def __init__(self, path, flush_every: int = 1):
        self._writer = BPWriter(path, flush_every=flush_every)

    def emit(self, event: NLEvent) -> None:
        self._writer.write(event)

    @property
    def events_written(self) -> int:
        return self._writer.events_written

    def close(self) -> None:
        self._writer.close()


class MultiSink(EventSink):
    """Fan-out to several sinks (e.g. file for post-mortem + bus for live)."""

    def __init__(self, *sinks: EventSink):
        self._sinks = list(sinks)

    def emit(self, event: NLEvent) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
