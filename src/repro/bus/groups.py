"""Consumer groups: N loaders share one topic stream without double-commit.

The broker's topic exchange fans a matching publish out to *every* bound
queue — the right shape for independent subscribers (dashboard, anomaly
detector, archiver), the wrong shape for *scaling one subscriber out*:
two loaders bound to the same pattern would each archive every event.
A :class:`ConsumerGroup` gives the Kafka-style alternative the WMArchive
paper motivates for multi-agent ingest:

* a matching publish is routed to exactly **one** of the group's
  partition queues, chosen by hashing the event's **root workflow id**
  (learned from ``stampede.xwf.plan`` events flowing through the
  router, so a sub-workflow lands with its root and cross-table links
  stay inside one archive);
* the router stamps each message with a per-partition sequence
  (``x-part``/``x-part-seq``) and dedupes publish-side duplicates by
  per-publisher high-water mark, so a partition queue carries a gapless
  per-partition stream;
* group members own disjoint partition subsets (sticky assignment:
  joins and leaves move as few partitions as possible), and every
  delivery is rewritten to carry a *per-partition-ownership* publisher
  stamp, so the member's existing
  :class:`~repro.bus.reliable.Resequencer` + ack-after-commit machinery
  upgrades delivery to exactly-once per partition — the same machinery,
  unchanged, that defends the single-consumer path;
* acks advance a broker-side **commit floor** per partition (the
  consumer-group offset); redeliveries at or below the floor are
  dropped as duplicates even across a member restart.

Delivery guarantees, honestly stated: exactly-once per partition while
a partition's ownership is stable (including disconnect/reconnect of the
*same* member, whose resequencer state dedupes the committed-but-unacked
window); a handover to a *different* member is at-least-once for that
window, exactly as for any AMQP consumer crash before ack.
"""
from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.bus.queues import Message, MessageQueue
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ
from repro.bus.topic import topic_matches

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (broker wires us in)
    from repro.bus.broker import Broker

__all__ = [
    "HEADER_GROUP",
    "HEADER_PARTITION",
    "HEADER_PART_SEQ",
    "HEADER_PART_KEY",
    "HEADER_ORIG_PUBLISHER",
    "HEADER_ORIG_SEQ",
    "ConsumerGroup",
    "GroupMember",
    "GroupConsumer",
    "PartitionKeyer",
]

HEADER_GROUP = "x-group"
HEADER_PARTITION = "x-part"
HEADER_PART_SEQ = "x-part-seq"
#: explicit partition key, stamped by remote publishers whose bodies
#: reach the router as opaque BP strings
HEADER_PART_KEY = "x-part-key"
#: the original end-to-end publisher stamp, preserved for provenance
#: after the member rewrite replaces ``x-publisher``/``x-seq``
HEADER_ORIG_PUBLISHER = "x-orig-publisher"
HEADER_ORIG_SEQ = "x-orig-seq"

#: ``GroupMember.get`` waits on one partition queue at a time; with
#: several assigned partitions the wait is sliced so no queue is starved
#: longer than this (still a condition-variable park, not a busy spin).
_MULTI_QUEUE_WAIT_SLICE = 0.02


class _Unset:
    """Sentinel distinguishing "caller passed nothing" from an explicit
    ``timeout=None`` (which must mean "block forever", as everywhere
    else); the real default is the broker's ``DEFAULT_POLL_TIMEOUT``,
    imported lazily to dodge the module cycle."""


_UNSET = _Unset()


def partition_for(key: str, partitions: int) -> int:
    """Stable partition choice: crc32, not ``hash()`` (which is salted
    per process and would scatter a workflow across restarts)."""
    return zlib.crc32(key.encode("utf-8")) % partitions


class PartitionKeyer:
    """Derives the partition key — the *root* workflow id — per event.

    Partitioning by root (not by each sub-workflow's own id) keeps a
    workflow hierarchy in one member's archive, so ``subwf_id`` links
    resolve locally.  Only ``*.xwf.plan`` events carry ``root.xwf.id``;
    the keyer learns the mapping from plan events as they flow through
    (plan precedes every other event of that workflow on any compliant
    stream) and falls back to the workflow's own id, then the supplied
    default.  The learned map is bounded LRU-style.
    """

    def __init__(self, max_entries: int = 100_000):
        self.max_entries = max_entries
        self._roots: "OrderedDict[str, str]" = OrderedDict()

    def learn(self, xwf: str, root: str) -> None:
        self._roots[xwf] = root
        self._roots.move_to_end(xwf)
        while len(self._roots) > self.max_entries:
            self._roots.popitem(last=False)

    def key_for(self, attrs, default: str) -> str:
        xwf = attrs.get("xwf.id")
        root = attrs.get("root.xwf.id")
        if root is not None and xwf is not None:
            self.learn(str(xwf), str(root))
        if xwf is None:
            return default
        return self._roots.get(str(xwf), str(xwf))


class ConsumerGroup:
    """One named group over one topic pattern: router + membership.

    Constructed via :meth:`repro.bus.broker.Broker.declare_group`; the
    broker calls :meth:`route` for every matching publish.
    """

    def __init__(
        self,
        broker: "Broker",
        name: str,
        pattern: str,
        partitions: int = 8,
        exchange: str = "stampede",
    ):
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.broker = broker
        self.name = name
        self.pattern = pattern
        self.partitions = partitions
        self.exchange = exchange
        self._lock = threading.Lock()
        self._keyer = PartitionKeyer()
        #: per-partition publish sequence counters (1-based, gapless)
        self._seqs: List[int] = [0] * partitions
        #: per-original-publisher high-water mark: publish-side dedupe
        self._hwm: Dict[str, int] = {}
        #: per-partition committed (acked) sequence floor
        self._floors: List[int] = [0] * partitions
        #: partition -> owning member id (absent = unowned)
        self._owners: Dict[int, str] = {}
        #: partition -> ownership generation (bumped on owner *change*)
        self._gens: List[int] = [0] * partitions
        #: (partition, member) -> rebase floor frozen at assignment time
        self._bases: Dict[Tuple[int, str], int] = {}
        #: partition -> last member that owned it (sticky preference)
        self._last_owner: Dict[int, str] = {}
        self._members: Dict[str, "GroupMember"] = {}
        self._member_seq = 0
        self.routed = 0
        self.publish_duplicates = 0  # publish-side dupes the router absorbed
        self._queues: List[MessageQueue] = [
            broker.declare_queue(self.partition_queue_name(i), durable=True)
            for i in range(partitions)
        ]

    def partition_queue_name(self, partition: int) -> str:
        return f"g.{self.name}.{partition}"

    def queue(self, partition: int) -> MessageQueue:
        return self._queues[partition]

    # -- routing (called by Broker.publish) -----------------------------------
    def matches(self, routing_key: str, exchange: str) -> bool:
        return exchange == self.exchange and topic_matches(self.pattern, routing_key)

    def route(
        self,
        routing_key: str,
        body: object,
        headers: Optional[Dict[str, object]],
    ) -> Optional[Tuple[MessageQueue, Dict[str, object]]]:
        """Pick this message's partition queue and stamp group headers.

        Returns ``None`` when the message is a publish-side duplicate
        (same original publisher stamp already routed — e.g. a publisher
        retry or an injected duplicate); absorbing it here is what keeps
        every partition stream gapless and dedupable downstream.  The
        caller performs the actual ``put`` outside our lock.
        """
        hdrs = dict(headers or {})
        pub = hdrs.get(HEADER_PUBLISHER)
        seq = hdrs.get(HEADER_SEQ)
        with self._lock:
            if pub is not None and seq is not None:
                seq = int(seq)
                hwm = self._hwm.get(str(pub), 0)
                if seq <= hwm:
                    self.publish_duplicates += 1
                    return None
                self._hwm[str(pub)] = seq
            key = hdrs.get(HEADER_PART_KEY)
            if key is None:
                attrs = getattr(body, "attrs", None)
                if attrs is not None:
                    key = self._keyer.key_for(attrs, default=routing_key)
                elif pub is not None:
                    # opaque body (e.g. a raw BP string published without
                    # a part-key stamp): keep one publisher's stream on
                    # one partition so its ordering survives
                    key = str(pub)
                else:
                    key = routing_key
            part = partition_for(str(key), self.partitions)
            self._seqs[part] += 1
            hdrs[HEADER_GROUP] = self.name
            hdrs[HEADER_PARTITION] = part
            hdrs[HEADER_PART_SEQ] = self._seqs[part]
            hdrs.setdefault(HEADER_PART_KEY, str(key))
            self.routed += 1
            return self._queues[part], hdrs

    # -- membership -----------------------------------------------------------
    def join(self, member_id: Optional[str] = None) -> "GroupMember":
        """Add a member and rebalance partitions onto it (sticky)."""
        with self._lock:
            if member_id is None:
                self._member_seq += 1
                member_id = f"member-{self._member_seq}"
            if member_id in self._members:
                raise ValueError(
                    f"member {member_id!r} already joined group {self.name!r}"
                )
            member = GroupMember(self, member_id)
            self._members[member_id] = member
            requeue = self._rebalance_locked()
        self._requeue(requeue)
        return member

    def leave(self, member_id: str) -> None:
        """Remove a member; its partitions move to the survivors."""
        with self._lock:
            member = self._members.pop(member_id, None)
            if member is None:
                return
            requeue = []
            for part in [p for p, m in self._owners.items() if m == member_id]:
                requeue.extend(self._revoke_locked(part))
            requeue.extend(self._rebalance_locked())
        self._requeue(requeue)

    def _requeue(self, entries: List[Tuple[MessageQueue, int]]) -> None:
        # outside the group lock: queue ops must not run under it
        for queue, tag in entries:
            try:
                queue.nack(tag, requeue=True)
            except ValueError:
                pass  # already settled concurrently

    def _revoke_locked(self, part: int) -> List[Tuple[MessageQueue, int]]:
        """Strip a partition from its owner; returns deliveries to requeue."""
        owner = self._owners.pop(part, None)
        if owner is None:
            return []
        self._last_owner[part] = owner
        member = self._members.get(owner)
        if member is None:
            return []
        return member._drop_partition_locked(part)

    def _assign_locked(self, part: int, member_id: str) -> None:
        self._owners[part] = member_id
        if self._last_owner.get(part) != member_id:
            # a *different* owner: new publisher identity for the
            # partition so the new member's resequencer starts fresh,
            # rebased at the committed floor
            self._gens[part] += 1
            self._bases[(part, member_id)] = self._floors[part]
        # same member re-acquiring keeps its identity and base, so its
        # surviving resequencer state dedupes redeliveries exactly-once
        self._bases.setdefault((part, member_id), self._floors[part])
        self._last_owner[part] = member_id
        self._members[member_id]._add_partition_locked(part)

    def _rebalance_locked(self) -> List[Tuple[MessageQueue, int]]:
        """Sticky rebalance: even out ownership with minimal movement."""
        members = sorted(self._members)
        requeue: List[Tuple[MessageQueue, int]] = []
        if not members:
            for part in list(self._owners):
                requeue.extend(self._revoke_locked(part))
            return requeue
        base, extra = divmod(self.partitions, len(members))
        quota = {
            m: base + (1 if i < extra else 0) for i, m in enumerate(members)
        }
        owned: Dict[str, List[int]] = {m: [] for m in members}
        for part, owner in sorted(self._owners.items()):
            owned[owner].append(part)
        # strip overfull members (highest partitions first: deterministic)
        for m in members:
            while len(owned[m]) > quota[m]:
                part = owned[m].pop()
                requeue.extend(self._revoke_locked(part))
        unowned = [p for p in range(self.partitions) if p not in self._owners]
        # sticky pass: give a freed partition back to its last owner first
        for part in list(unowned):
            last = self._last_owner.get(part)
            if last in owned and len(owned[last]) < quota[last]:
                self._assign_locked(part, last)
                owned[last].append(part)
                unowned.remove(part)
        for part in unowned:
            m = min(members, key=lambda m: (len(owned[m]) - quota[m], m))
            self._assign_locked(part, m)
            owned[m].append(part)
        return requeue

    # -- commit tracking ------------------------------------------------------
    def commit(self, part: int, part_seq: int) -> None:
        with self._lock:
            if part_seq > self._floors[part]:
                self._floors[part] = part_seq

    def committed(self, part: int) -> int:
        with self._lock:
            return self._floors[part]

    def assignment(self) -> Dict[str, List[int]]:
        with self._lock:
            out: Dict[str, List[int]] = {m: [] for m in self._members}
            for part, owner in sorted(self._owners.items()):
                out[owner].append(part)
            return out

    def members(self) -> List[str]:
        with self._lock:
            return sorted(self._members)

    def published_seq(self, part: int) -> int:
        with self._lock:
            return self._seqs[part]


class GroupMember:
    """One group member: consumes its assigned partitions, acks advance
    the group's commit floors.

    Deliveries are rewritten before they leave: the publisher stamp
    becomes ``<group>/p<partition>@g<generation>`` with the sequence
    rebased to start at 1 for this ownership, so a downstream
    :class:`~repro.bus.reliable.Resequencer` needs no seeding and chaos
    redeliveries dedupe per partition.  Delivery tags are member-local;
    :meth:`ack`/:meth:`nack` map them back to the owning partition
    queue.

    ``fault_injector`` accepts a
    :class:`~repro.faults.bus.BusFaultInjector` (duck-typed) so the
    chaos suite can drop/reorder/disconnect group deliveries exactly as
    :class:`~repro.faults.bus.ChaosConsumer` does for plain consumers.
    """

    def __init__(self, group: ConsumerGroup, member_id: str):
        self.group = group
        self.member_id = member_id
        self.disconnected = False
        self.duplicates_dropped = 0  # deliveries at/below the commit floor
        self.fault_injector = None
        # all mutable member state is guarded by the *group* lock: the
        # rebalance path touches members while holding it already, and a
        # second member-level lock would invite lock-order cycles
        self._parts: Set[int] = set()
        self._tag = 0
        #: member tag -> (queue, queue tag, partition, partition seq)
        self._unacked: Dict[int, Tuple[MessageQueue, int, int, int]] = {}
        self._rotate = 0

    # -- partition bookkeeping (called by the group, under its lock) ----------
    def _add_partition_locked(self, part: int) -> None:
        self._parts.add(part)

    def _drop_partition_locked(self, part: int) -> List[Tuple[MessageQueue, int]]:
        self._parts.discard(part)
        stale = [
            (tag, entry) for tag, entry in self._unacked.items() if entry[2] == part
        ]
        for tag, _entry in stale:
            del self._unacked[tag]
        return [(entry[0], entry[1]) for _tag, entry in stale]

    # -- consuming ------------------------------------------------------------
    @property
    def queue_name(self) -> str:
        return f"g.{self.group.name}.{self.member_id}"

    def partitions(self) -> List[int]:
        with self.group._lock:
            return sorted(self._parts)

    def depth(self) -> int:
        with self.group._lock:
            queues = [self.group.queue(p) for p in self._parts]
        return sum(len(q) for q in queues)

    def get(
        self,
        timeout: Optional[float] = _UNSET,  # type: ignore[assignment]
        auto_ack: bool = False,
    ) -> Optional[Message]:
        """Next message from any assigned partition.

        ``timeout`` follows :meth:`repro.bus.broker.Consumer.get`
        (``None`` blocks, ``0`` polls).  The wait is condition-variable
        parking on the partition queues, rotated so no partition is
        starved — not a busy poll.
        """
        from repro.bus.broker import DEFAULT_POLL_TIMEOUT  # cycle guard

        if timeout is _UNSET:
            timeout = DEFAULT_POLL_TIMEOUT
        deadline = None if timeout is None else time.monotonic() + timeout
        inj = self.fault_injector
        while True:
            self._check_connected()
            if inj is not None and inj.due_disconnect():
                inj.clear_holdback()
                self.disconnect()
                from repro.bus.broker import ConnectionLostError

                raise ConnectionLostError(
                    f"injected connection loss for group member "
                    f"{self.member_id!r}"
                )
            if inj is not None:
                inj.poll()
                held = inj.pop_due()
                if held is not None:
                    out = self._deliver(held, auto_ack)
                    if out is not None:
                        return out
                    continue
            with self.group._lock:
                queues = [(p, self.group.queue(p)) for p in sorted(self._parts)]
            fresh: Optional[Message] = None
            for _part, queue in queues:
                fresh = queue.get(timeout=0.0)
                if fresh is not None:
                    break
            if fresh is None:
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        if inj is not None:
                            held = inj.pop_any()
                            if held is not None:
                                out = self._deliver(held, auto_ack)
                                if out is not None:
                                    return out
                                continue
                        return None
                if not queues:
                    # nothing assigned (mid-rebalance): bounded nap
                    time.sleep(min(0.005, remaining or 0.005))
                    continue
                wait: Optional[float] = remaining
                if len(queues) > 1 or inj is not None:
                    slice_ = _MULTI_QUEUE_WAIT_SLICE
                    wait = slice_ if remaining is None else min(slice_, remaining)
                _part, queue = queues[self._rotate % len(queues)]
                self._rotate += 1
                fresh = queue.get(timeout=wait)
                if fresh is None:
                    continue
            if inj is not None:
                fate = inj.classify(fresh)
                if fate == "drop":
                    part = int(fresh.header(HEADER_PARTITION, 0))
                    self.group.queue(part).nack(fresh.delivery_tag, requeue=True)
                    continue
                if fate == "hold":
                    continue
            out = self._deliver(fresh, auto_ack)
            if out is not None:
                return out

    def _deliver(self, msg: Message, auto_ack: bool) -> Optional[Message]:
        """Floor-dedupe + rewrite one raw partition delivery."""
        part = int(msg.header(HEADER_PARTITION, 0))
        part_seq = int(msg.header(HEADER_PART_SEQ, 0))
        with self.group._lock:
            if part not in self._parts:
                # revoked between poll and delivery: hand it back
                queue = self.group.queue(part)
                requeue = True
            elif part_seq <= self.group._floors[part]:
                # already committed by this group (possibly by a previous
                # owner): settle it without re-delivering
                queue = self.group.queue(part)
                requeue = False
            else:
                base = self.group._bases.get(
                    (part, self.member_id), self.group._floors[part]
                )
                gen = self.group._gens[part]
                self._tag += 1
                tag = self._tag
                self._unacked[tag] = (
                    self.group.queue(part), msg.delivery_tag, part, part_seq
                )
                hdrs = dict(msg.headers or {})
                if HEADER_PUBLISHER in hdrs:
                    hdrs[HEADER_ORIG_PUBLISHER] = hdrs[HEADER_PUBLISHER]
                if HEADER_SEQ in hdrs:
                    hdrs[HEADER_ORIG_SEQ] = hdrs[HEADER_SEQ]
                hdrs[HEADER_PUBLISHER] = f"{self.group.name}/p{part}@g{gen}"
                hdrs[HEADER_SEQ] = part_seq - base
                out = Message(
                    msg.routing_key,
                    msg.body,
                    delivery_tag=tag,
                    redelivered=msg.redelivered,
                    headers=hdrs,
                )
                queue = None
        if queue is not None:
            if requeue:
                try:
                    queue.nack(msg.delivery_tag, requeue=True)
                except ValueError:
                    pass
            else:
                self.duplicates_dropped += 1
                try:
                    queue.ack(msg.delivery_tag)
                except ValueError:
                    pass
            return None
        if auto_ack:
            self.ack(out.delivery_tag)
        return out

    # -- settling -------------------------------------------------------------
    def ack(self, tag: int) -> None:
        self._check_connected()
        with self.group._lock:
            entry = self._unacked.pop(tag, None)
        if entry is None:
            raise ValueError(f"unknown member delivery tag {tag}")
        queue, qtag, part, part_seq = entry
        queue.ack(qtag)  # outside the group lock
        self.group.commit(part, part_seq)

    def nack(self, tag: int, requeue: bool = True) -> None:
        self._check_connected()
        with self.group._lock:
            entry = self._unacked.pop(tag, None)
        if entry is None:
            raise ValueError(f"unknown member delivery tag {tag}")
        queue, qtag, _part, _part_seq = entry
        queue.nack(qtag, requeue=requeue)

    def requeue_unacked(self) -> int:
        with self.group._lock:
            entries = list(self._unacked.values())
            self._unacked.clear()
        for queue, qtag, _part, _seq in entries:
            try:
                queue.nack(qtag, requeue=True)
            except ValueError:
                pass
        return len(entries)

    # -- lifecycle ------------------------------------------------------------
    def leave(self) -> None:
        """Graceful exit: requeue in-flight work, hand partitions over."""
        self.requeue_unacked()
        self.group.leave(self.member_id)

    def disconnect(self) -> None:
        """Connection-loss semantics: like :meth:`leave`, plus every
        further operation raises
        :class:`~repro.bus.broker.ConnectionLostError` until the member
        rejoins (same ``member_id`` keeps its partition identities)."""
        if self.disconnected:
            return
        self.disconnected = True
        self.leave()

    def _check_connected(self) -> None:
        if self.disconnected:
            from repro.bus.broker import ConnectionLostError

            raise ConnectionLostError(
                f"group member {self.member_id!r} disconnected"
            )


class GroupConsumer:
    """Drop-in :class:`~repro.bus.client.EventConsumer` over a group.

    ``load_from_bus(..., group='loaders')`` builds one of these instead
    of a plain consumer; every method the loader's consumption loop
    touches (``get_message``/``ack``/``nack``/``depth``/``reconnect``/
    ``cancel``) behaves identically, so the resequencer and
    ack-after-commit batching work unchanged.
    """

    def __init__(
        self,
        broker: "Broker",
        group: str,
        pattern: str = "stampede.#",
        partitions: int = 8,
        member_id: Optional[str] = None,
        exchange: str = "stampede",
    ):
        self._broker = broker
        self._group_name = group
        self._pattern = pattern
        self._partitions = partitions
        self._exchange = exchange
        self.reconnects = 0
        self._member = broker.join_group(
            group,
            member_id=member_id,
            pattern=pattern,
            partitions=partitions,
            exchange=exchange,
        )

    @property
    def member(self) -> GroupMember:
        return self._member

    @property
    def queue_name(self) -> str:
        return self._member.queue_name

    @property
    def connected(self) -> bool:
        return not self._member.disconnected

    def reconnect(self) -> None:
        """Rejoin after a connection loss, keeping the member identity
        (same ``member_id`` → same partition publisher stamps, so the
        caller's resequencer dedupes the redelivered window)."""
        self.reconnects += 1
        member_id = self._member.member_id
        if not self._member.disconnected:
            self._member.disconnect()
        self._member = self._broker.join_group(
            self._group_name,
            member_id=member_id,
            pattern=self._pattern,
            partitions=self._partitions,
            exchange=self._exchange,
        )

    def get_message(
        self,
        timeout: Optional[float] = _UNSET,  # type: ignore[assignment]
        auto_ack: bool = False,
    ) -> Optional[Message]:
        return self._member.get(timeout=timeout, auto_ack=auto_ack)

    def get(self, timeout: Optional[float] = _UNSET):  # type: ignore[assignment]
        from repro.bus.broker import ConnectionLostError
        from repro.bus.client import EventConsumer

        try:
            msg = self._member.get(timeout=timeout, auto_ack=True)
        except ConnectionLostError:
            self.reconnect()
            return None
        return None if msg is None else EventConsumer.as_event(msg)

    def ack(self, message: Message) -> None:
        self._member.ack(message.delivery_tag)

    def nack(self, message: Message, requeue: bool = True) -> None:
        self._member.nack(message.delivery_tag, requeue=requeue)

    def depth(self) -> int:
        return self._member.depth()

    def drain(self) -> List[object]:
        from repro.bus.client import EventConsumer

        out = []
        while True:
            msg = self._member.get(timeout=0.0, auto_ack=True)
            if msg is None:
                return out
            out.append(EventConsumer.as_event(msg))

    def __iter__(self) -> Iterator[Message]:
        while True:
            msg = self._member.get(timeout=0.0, auto_ack=True)
            if msg is None:
                return
            yield msg

    def cancel(self) -> None:
        if not self._member.disconnected:
            self._member.leave()
