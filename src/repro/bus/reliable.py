"""Reliable-delivery helpers: publisher sequence stamps + resequencing.

The broker gives at-least-once delivery (ack/requeue), but a network that
drops, duplicates, or reorders deliveries degrades that to "eventually,
some number of times, in some order".  The classic fix is end-to-end:

* every publisher stamps its messages with ``(publisher id, sequence)``
  headers (:data:`HEADER_PUBLISHER` / :data:`HEADER_SEQ`, sequences start
  at 1);
* the consumer runs deliveries through a :class:`Resequencer`, which
  releases messages in exact publish order, holds early arrivals until
  the gap before them fills (a dropped delivery is redelivered, because
  it was never acked), and flags anything already seen as a duplicate.

Combined with the loader's ack-after-commit batching this turns the
chaos-prone bus path back into exactly-once, in-order processing — the
property the chaos suite asserts by diffing archives row for row.

Messages without stamps (foreign publishers, direct ``queue.put``) pass
straight through, so the gate is transparent where it has no information.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bus.queues import Message

__all__ = ["HEADER_PUBLISHER", "HEADER_SEQ", "Resequencer"]

HEADER_PUBLISHER = "x-publisher"
HEADER_SEQ = "x-seq"


def _stamp(msg: Message) -> Optional[Tuple[str, int]]:
    if msg.headers is None:
        return None
    pub = msg.headers.get(HEADER_PUBLISHER)
    seq = msg.headers.get(HEADER_SEQ)
    if pub is None or seq is None:
        return None
    return str(pub), int(seq)


class Resequencer:
    """Restores per-publisher publish order over an unreliable delivery.

    :meth:`offer` classifies each delivery: released now (in order),
    held (arrived early; the gap before it is still in flight), or
    duplicate (already released or already held).  ``max_held`` bounds
    the holdback buffer; when a gap refuses to fill within that bound the
    buffer is force-released in sequence order and the skipped gap is
    *counted*, never silently ignored.
    """

    def __init__(self, max_held: int = 10_000):
        if max_held < 1:
            raise ValueError("max_held must be >= 1")
        self.max_held = max_held
        self._next: Dict[str, int] = {}
        self._held: Dict[str, Dict[int, Message]] = {}
        #: gap sequences adopted as lost by a force-release; a later
        #: arrival of one of these was *never delivered*, so counting it
        #: as a duplicate would misreport data loss as harmless dedupe
        self._skipped: Dict[str, Set[int]] = {}
        self.duplicates = 0
        self.held_back = 0  # deliveries that arrived ahead of a gap
        self.gaps_skipped = 0  # sequence numbers adopted as lost
        self.late_arrivals = 0  # skipped gaps that showed up after all

    # -- feeding ------------------------------------------------------------
    def offer(self, msg: Message) -> Tuple[List[Message], List[Message]]:
        """Classify one delivery; returns ``(released, duplicates)``.

        ``released`` preserves publish order and may include previously
        held messages that this delivery unblocked.
        """
        stamp = _stamp(msg)
        if stamp is None:
            return [msg], []
        publisher, seq = stamp
        expected = self._next.setdefault(publisher, 1)
        held = self._held.setdefault(publisher, {})
        if seq < expected or seq in held:
            skipped = self._skipped.get(publisher)
            if skipped is not None and seq in skipped:
                # the gap we force-skipped finally arrived: it was never
                # delivered, so this is late data loss surfacing — count
                # it apart from true duplicates, and still drop it (a
                # late release would reorder the already-released tail)
                skipped.discard(seq)
                self.late_arrivals += 1
            else:
                self.duplicates += 1
            return [], [msg]
        if seq > expected:
            self.held_back += 1
            held[seq] = msg
            if len(held) > self.max_held:
                return self._force_release(publisher), []
            return [], []
        # seq == expected: release it plus the consecutive run behind it
        released = [msg]
        expected += 1
        while expected in held:
            released.append(held.pop(expected))
            expected += 1
        self._next[publisher] = expected
        return released, []

    # -- stall recovery ------------------------------------------------------
    def release_pending(self) -> List[Message]:
        """Force-release everything held, in sequence order.

        For end-of-stream / idle draining: if a gap can never fill (its
        message was lost before reaching the queue), waiting forever
        serves nobody.  Skipped gaps are tallied in ``gaps_skipped``.
        """
        released: List[Message] = []
        for publisher in sorted(self._held):
            released.extend(self._force_release(publisher))
        return released

    def _force_release(self, publisher: str) -> List[Message]:
        held = self._held.get(publisher, {})
        if not held:
            return []
        expected = self._next.get(publisher, 1)
        released = [held[seq] for seq in sorted(held)]
        gaps = [
            seq for seq in range(expected, max(held) + 1) if seq not in held
        ]
        self.gaps_skipped += len(gaps)
        # remember the skipped sequences (bounded) so a late arrival is
        # reported as surfaced loss, not mistaken for a duplicate; the
        # release position advances past the whole evicted window, so a
        # late arrival can never be delivered a second time nor move
        # ``expected`` backwards or forwards again
        skipped = self._skipped.setdefault(publisher, set())
        skipped.update(gaps)
        while len(skipped) > self.max_held:
            skipped.pop()
        self._next[publisher] = max(held) + 1
        self._held[publisher] = {}
        return released

    def reset_held(self) -> int:
        """Drop the holdback buffer (e.g. after a connection loss).

        The held messages were never acked, so the broker redelivers
        them; keeping stale copies here would double-buffer.  Returns the
        number dropped.  Release positions (``next`` counters) survive,
        so already-released sequences still dedupe.
        """
        dropped = sum(len(h) for h in self._held.values())
        self._held = {}
        return dropped

    def seed(self, publisher: str, next_seq: int) -> None:
        """Declare ``next_seq`` as the next expected sequence for a
        publisher this resequencer has not seen yet.

        Used when a consumer inherits a stream mid-flight with a known
        committed position (e.g. a consumer-group partition handover):
        without a seed the resequencer would hold everything from
        ``next_seq`` forever, waiting for sequences a previous owner
        already released.  Seeding an already-known publisher is only
        allowed forwards (to a higher position); moving backwards would
        re-open already-released sequences for double delivery.
        """
        if next_seq < 1:
            raise ValueError("next_seq must be >= 1")
        current = self._next.get(publisher)
        if current is not None and next_seq < current:
            raise ValueError(
                f"cannot seed {publisher!r} backwards "
                f"(released up to {current}, asked for {next_seq})"
            )
        self._next[publisher] = next_seq
        held = self._held.get(publisher)
        if held:
            for seq in [s for s in held if s < next_seq]:
                del held[seq]

    # -- introspection -------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return sum(len(h) for h in self._held.values())

    def expected(self, publisher: str) -> int:
        """Next sequence number that would be released for ``publisher``."""
        return self._next.get(publisher, 1)
