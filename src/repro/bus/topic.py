"""AMQP topic-pattern matching.

Routing keys are dot-separated words (Stampede reuses the hierarchical
NetLogger ``event`` field, e.g. ``stampede.job_inst.main.start``).  Binding
patterns follow the AMQP topic-exchange rules:

* ``*`` matches exactly one word;
* ``#`` matches zero or more words;
* anything else matches the literal word.

So ``stampede.job_inst.#`` receives every job-instance event and
``stampede.*.start`` receives ``stampede.xwf.start`` but not
``stampede.job_inst.main.start``.
"""
from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

__all__ = ["topic_matches", "validate_pattern", "compile_pattern"]


def validate_pattern(pattern: str) -> None:
    """Reject malformed binding patterns (empty words, embedded wildcards)."""
    if not pattern:
        raise ValueError("empty binding pattern")
    for word in pattern.split("."):
        if not word:
            raise ValueError(f"empty word in pattern {pattern!r}")
        if ("*" in word or "#" in word) and word not in ("*", "#"):
            raise ValueError(
                f"wildcard must be a whole word in pattern {pattern!r}: {word!r}"
            )


@lru_cache(maxsize=4096)
def compile_pattern(pattern: str) -> Tuple[str, ...]:
    validate_pattern(pattern)
    return tuple(pattern.split("."))


def topic_matches(pattern: str, routing_key: str) -> bool:
    """True if ``routing_key`` matches the AMQP topic ``pattern``."""
    words = routing_key.split(".") if routing_key else []
    return _match(compile_pattern(pattern), 0, words, 0)


def _match(pat: Tuple[str, ...], pi: int, words: List[str], wi: int) -> bool:
    # Iterative-with-backtracking over '#': standard greedy/backoff approach.
    while pi < len(pat):
        token = pat[pi]
        if token == "#":
            # '#' absorbs zero or more words; try every split point.
            if pi + 1 == len(pat):
                return True
            for skip in range(len(words) - wi + 1):
                if _match(pat, pi + 1, words, wi + skip):
                    return True
            return False
        if wi >= len(words):
            return False
        if token != "*" and token != words[wi]:
            return False
        pi += 1
        wi += 1
    return wi == len(words)
