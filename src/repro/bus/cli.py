"""``stampede-bus``: run a bus server / publish BP logs to one.

Two subcommands cover the distributed quickstart end to end:

* ``stampede-bus serve`` — stand up a :class:`~repro.bus.net.BrokerServer`
  fronting a fresh in-process broker and run until interrupted.  With
  ``--port 0`` the kernel picks the port; ``--announce FILE`` writes the
  resolved ``tcp://`` url atomically so scripts (and the integration
  tests) can discover it without racing the bind.
* ``stampede-bus publish`` — stream a BP event log to a running server,
  stamped exactly as a live engine would stamp it (sequence, trace,
  clocks, partition key), so ``nl-load --bus`` consumers downstream see
  a faithful replay.
"""
from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.bus.broker import Broker
from repro.bus.net import BrokerServer, RemotePublisher
from repro.netlogger.events import NLEvent

__all__ = ["main"]


def _cmd_serve(args: argparse.Namespace) -> int:
    broker = Broker()
    server = BrokerServer(broker, host=args.host, port=args.port).start()
    url = server.url
    if args.announce:
        # write-then-rename: a watcher never reads a half-written url
        tmp = f"{args.announce}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(url + "\n")
        os.replace(tmp, args.announce)
    print(f"stampede-bus serving on {url}", flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print(
            f"stampede-bus stopped: {server.connections_total} connections, "
            f"{server.publishes} publishes",
            flush=True,
        )
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.replay.shape import ConstantRate, Pacer

    publisher = RemotePublisher(args.bus, publisher_id=args.publisher_id)
    shape = ConstantRate(args.rate) if args.rate else None
    pacer = Pacer()
    published = 0
    start = time.monotonic()
    try:
        with open(args.log, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if shape is not None:
                    # drift-free sleep-until: each event has an absolute
                    # deadline, so scheduling jitter never accumulates
                    pacer.wait_until(shape.offset(published, 0.0))
                publisher.publish(NLEvent.from_bp(line))
                published += 1
        publisher.flush()
    finally:
        publisher.close()
    elapsed = max(time.monotonic() - start, 1e-9)
    print(
        f"published {published} events in {elapsed:.2f}s "
        f"({published / elapsed:,.0f} ev/s)",
        flush=True,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stampede-bus",
        description="Serve the monitoring bus over TCP, or publish to one.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a broker server until interrupted")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=5672)
    serve.add_argument(
        "--announce",
        metavar="FILE",
        help="write the resolved tcp:// url to FILE once listening",
    )
    serve.set_defaults(func=_cmd_serve)

    publish = sub.add_parser("publish", help="publish a BP event log to a server")
    publish.add_argument("log", help="BP-format NetLogger event file")
    publish.add_argument("--bus", required=True, help="server url, tcp://host:port")
    publish.add_argument(
        "--publisher-id", default=None, help="override the publisher stamp identity"
    )
    publish.add_argument(
        "--rate", type=int, default=0, help="cap publishing at N events/second"
    )
    publish.set_defaults(func=_cmd_publish)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
