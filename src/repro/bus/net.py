"""Cross-process bus transport: JSONL frames over TCP.

The in-process :class:`~repro.bus.broker.Broker` already gives the
paper's architecture its decoupling *within* one process; this module
puts a socket in front of it so the pieces can live in separate
processes (an engine publishing from one, ``nl-load`` consuming from
another), the deployment shape the paper actually describes.

Wire protocol (versioned, newline-delimited JSON):

* every frame is one JSON object terminated by ``\\n`` — no length
  prefix, so a partial frame is detectable as a line without a
  terminator and ``tcpdump``/``nc`` sessions stay human-readable;
* the first frame on a connection must be
  ``{"op": "hello", "v": 1}``; the server rejects other versions, which
  is the forward-compatibility hinge;
* bodies cross the wire as a tagged union — ``{"bp": line}`` for
  NetLogger events (the canonical BP text form), ``{"str": s}`` /
  ``{"json": v}`` for everything else.  The server relays bodies
  opaquely (no parse on the hot path); a consumer gets the BP string
  and parses once, client-side;
* ``publish`` frames are fire-and-forget; a ``flush`` frame is the
  barrier that reports delivery counts and surfaces errors;
* ``get`` waits *server-side* (capped per request) so an idle consumer
  parks on the broker's condition variables instead of request-spamming
  the socket.

:class:`RemotePublisher` / :class:`RemoteConsumer` mirror the
:mod:`repro.bus.client` interfaces, so ``load_from_bus(bus='tcp://…')``
and chaos-recovery (auto-reconnect under a
:class:`~repro.util.retry.RetryPolicy`) work unchanged over TCP.
"""
from __future__ import annotations

import json
import socket
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.bus.broker import (
    DEFAULT_EXCHANGE,
    DEFAULT_POLL_TIMEOUT,
    Broker,
    ConnectionLostError,
)
from repro.bus.client import EventConsumer, EventPublisher
from repro.bus.groups import HEADER_PART_KEY, GroupConsumer, PartitionKeyer
from repro.bus.queues import Message
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ
from repro.netlogger.events import NLEvent
from repro.obs.spans import (
    CLOCK_EPOCH,
    HEADER_CLOCK_EPOCH,
    HEADER_PUB_MONO,
    HEADER_PUB_TS,
    HEADER_TRACE,
    new_trace_id,
)
from repro.util.retry import RetryPolicy

__all__ = [
    "PROTOCOL_VERSION",
    "BusProtocolError",
    "BrokerServer",
    "RemotePublisher",
    "RemoteConsumer",
    "parse_bus_url",
    "encode_body",
    "decode_body",
    "connect_publisher",
]

PROTOCOL_VERSION = 1

#: longest a single server-side ``get`` may park before replying
#: ``empty`` — bounds how long a handler thread can be stuck behind a
#: client that died mid-wait; clients with longer (or infinite)
#: timeouts just re-issue the request
SERVER_WAIT_CAP = 5.0

#: socket-level timeout on client request/reply exchanges; generous
#: because a flush barrier behind a large publish burst is legitimate
_CLIENT_SOCKET_TIMEOUT = 60.0


class BusProtocolError(ConnectionError):
    """The peer sent a frame this protocol version cannot interpret."""


def parse_bus_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` → ``(host, port)``."""
    if not url.startswith("tcp://"):
        raise ValueError(f"unsupported bus url {url!r} (expected tcp://host:port)")
    rest = url[len("tcp://"):].rstrip("/")
    host, sep, port = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"bus url {url!r} missing port (expected tcp://host:port)")
    return host, int(port)


def encode_body(body: object) -> Dict[str, object]:
    """Tagged-union encoding of a message body for the wire."""
    if isinstance(body, NLEvent):
        return {"bp": body.to_bp()}
    if isinstance(body, str):
        return {"str": body}
    return {"json": body}


def decode_body(obj: Dict[str, object]) -> object:
    """Inverse of :func:`encode_body`.

    A ``bp`` body is returned as the BP *string*: every consumer-side
    path (:meth:`EventConsumer.as_event`, the loader) parses BP lines
    natively, and deferring the parse keeps the relay dumb and fast.
    """
    if "bp" in obj:
        return obj["bp"]
    if "str" in obj:
        return obj["str"]
    if "json" in obj:
        return obj["json"]
    raise BusProtocolError(f"unintelligible body frame: {sorted(obj)!r}")


def _encode_message(msg: Message) -> Dict[str, object]:
    return {
        "key": msg.routing_key,
        "tag": msg.delivery_tag,
        "redelivered": msg.redelivered,
        "headers": dict(msg.headers or {}),
        "body": encode_body(msg.body),
    }


def _decode_message(obj: Dict[str, object]) -> Message:
    return Message(
        routing_key=str(obj["key"]),
        body=decode_body(obj["body"]),  # type: ignore[arg-type]
        delivery_tag=int(obj["tag"]),  # type: ignore[arg-type]
        redelivered=bool(obj.get("redelivered", False)),
        headers=dict(obj.get("headers") or {}),  # type: ignore[arg-type]
    )


class _Framed:
    """One JSONL-framed socket: line out, line in."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._rfile = sock.makefile("rb")
        self._wlock = threading.Lock()
        self.frames_in = 0
        self.frames_out = 0

    def send(self, frame: Dict[str, object]) -> None:
        data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
        with self._wlock:
            # the lock's entire purpose is to serialize whole frames
            # onto one socket; writers MUST block here or frames
            # interleave mid-line and corrupt the stream
            self.sock.sendall(data)  # devlint: ignore[SDL102]
            self.frames_out += 1

    def recv(self) -> Optional[Dict[str, object]]:
        """Next frame, or ``None`` on clean EOF.

        A line that ends without its ``\\n`` terminator (peer died
        mid-frame) or that is not valid JSON raises
        :class:`BusProtocolError` — the stream is unrecoverable past
        that point, so callers tear the connection down.
        """
        try:
            line = self._rfile.readline()
        except ValueError:
            # the buffered reader was closed underneath us (server
            # shutdown racing a blocked readline): same as a clean EOF
            return None
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise BusProtocolError("peer closed mid-frame (truncated line)")
        try:
            frame = json.loads(line)
        except ValueError as exc:
            raise BusProtocolError(f"undecodable frame: {exc}") from None
        if not isinstance(frame, dict):
            raise BusProtocolError("frame is not a JSON object")
        self.frames_in += 1
        return frame

    def close(self) -> None:
        # shutdown first: it wakes any thread parked in readline() with
        # an EOF, where closing the buffered reader outright would block
        # on the reader lock that very thread is holding
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        try:
            self._rfile.close()
        except (OSError, ValueError):
            pass


class BrokerServer:
    """Serves one in-process :class:`Broker` to TCP clients.

    Thread-per-connection: each client connection is a strictly
    sequential request/reply stream (publishers and consumers open
    separate connections), so a server-side blocking ``get`` only parks
    its own handler thread.  When a connection drops — cleanly or
    mid-frame — every subscription it held is cancelled, which requeues
    unacked deliveries (plain consumers) or hands partitions back to the
    group (group members): the same semantics an in-process disconnect
    has, so chaos tests exercise identical recovery paths.
    """

    def __init__(self, broker: Broker, host: str = "127.0.0.1", port: int = 0):
        self.broker = broker
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._conn_lock = threading.Lock()
        self._conns: Dict[int, _Framed] = {}
        self._conn_ids = 0
        self.connections_total = 0
        self.publishes = 0
        self.protocol_errors = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "BrokerServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="bus-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    @property
    def url(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- accept/handler loops -------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed underneath us: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Framed(sock)
            with self._conn_lock:
                self._conn_ids += 1
                cid = self._conn_ids
                self._conns[cid] = conn
            self.connections_total += 1
            threading.Thread(
                target=self._serve_connection,
                args=(cid, conn),
                name=f"bus-server-conn-{cid}",
                daemon=True,
            ).start()

    def _serve_connection(self, cid: int, conn: _Framed) -> None:
        #: subscription id -> consumer handle (EventConsumer-shaped)
        subs: Dict[int, Union[EventConsumer, GroupConsumer]] = {}
        sub_ids = 0
        try:
            while True:
                try:
                    frame = conn.recv()
                except BusProtocolError:
                    self.protocol_errors += 1
                    try:
                        conn.send({"ok": False, "error": "bad-frame"})
                    except OSError:
                        pass
                    return
                if frame is None:
                    return  # clean EOF
                op = frame.get("op")
                rid = frame.get("id")
                try:
                    if op == "hello":
                        if frame.get("v") != PROTOCOL_VERSION:
                            conn.send({
                                "ok": False, "id": rid,
                                "error": f"unsupported protocol version "
                                         f"{frame.get('v')!r}",
                            })
                            return
                        conn.send({
                            "ok": True, "id": rid, "v": PROTOCOL_VERSION,
                            "server": "stampede-bus/1",
                        })
                    elif op == "publish":
                        self.publishes += 1
                        self.broker.publish(
                            str(frame["key"]),
                            decode_body(frame["body"]),  # type: ignore[arg-type]
                            exchange=str(frame.get("exchange") or DEFAULT_EXCHANGE),
                            headers=frame.get("headers"),  # type: ignore[arg-type]
                        )
                        # fire-and-forget: no reply (see "flush")
                    elif op == "flush":
                        conn.send({
                            "ok": True, "id": rid, "published": self.publishes,
                        })
                    elif op == "subscribe":
                        group = frame.get("group")
                        consumer: Union[EventConsumer, GroupConsumer]
                        if group:
                            consumer = GroupConsumer(
                                self.broker,
                                str(group),
                                pattern=str(frame.get("pattern") or "stampede.#"),
                                partitions=int(frame.get("partitions") or 8),  # type: ignore[arg-type]
                                member_id=(
                                    str(frame["member"])
                                    if frame.get("member") else None
                                ),
                                exchange=str(
                                    frame.get("exchange") or DEFAULT_EXCHANGE
                                ),
                            )
                        else:
                            consumer = EventConsumer(
                                self.broker,
                                pattern=str(frame.get("pattern") or "stampede.#"),
                                queue_name=(
                                    str(frame["queue"])
                                    if frame.get("queue") else None
                                ),
                                exchange=str(
                                    frame.get("exchange") or DEFAULT_EXCHANGE
                                ),
                                durable=bool(frame.get("durable", False)),
                            )
                        sub_ids += 1
                        subs[sub_ids] = consumer
                        conn.send({
                            "ok": True, "id": rid, "sub": sub_ids,
                            "queue": consumer.queue_name,
                        })
                    elif op == "get":
                        consumer = self._sub(subs, frame)
                        timeout = frame.get("timeout")
                        wait = (
                            SERVER_WAIT_CAP if timeout is None
                            else min(float(timeout), SERVER_WAIT_CAP)  # type: ignore[arg-type]
                        )
                        try:
                            msg = consumer.get_message(
                                timeout=wait,
                                auto_ack=bool(frame.get("auto_ack", False)),
                            )
                        except ConnectionLostError as exc:
                            subs.pop(int(frame["sub"]), None)  # type: ignore[arg-type]
                            conn.send({
                                "ok": False, "id": rid, "gone": True,
                                "error": str(exc),
                            })
                            continue
                        if msg is None:
                            conn.send({"ok": True, "id": rid, "empty": True})
                        else:
                            conn.send({
                                "ok": True, "id": rid,
                                "msg": _encode_message(msg),
                            })
                    elif op == "ack":
                        # fire-and-forget, like publish: the loader acks in
                        # batches and a stale tag is already tolerated
                        # in-process (ack_quiet), so a reply per ack would
                        # only throttle the commit path
                        self._settle(subs, frame, requeue=None)
                    elif op == "nack":
                        self._settle(
                            subs, frame,
                            requeue=bool(frame.get("requeue", True)),
                        )
                    elif op == "depth":
                        consumer = self._sub(subs, frame)
                        conn.send({"ok": True, "id": rid, "depth": consumer.depth()})
                    elif op == "cancel":
                        consumer2 = subs.pop(int(frame["sub"]), None)  # type: ignore[arg-type]
                        if consumer2 is not None:
                            consumer2.cancel()
                        conn.send({"ok": True, "id": rid})
                    else:
                        conn.send({
                            "ok": False, "id": rid,
                            "error": f"unknown op {op!r}",
                        })
                except (KeyError, TypeError, ValueError) as exc:
                    # malformed-but-parseable frame: report and carry on
                    conn.send({
                        "ok": False, "id": rid,
                        "error": f"bad request: {exc}",
                    })
        except OSError:
            return  # connection torn down underneath a send/recv
        finally:
            with self._conn_lock:
                self._conns.pop(cid, None)
            for consumer in subs.values():
                # requeue in-flight work / hand partitions back; a member
                # that already disconnected server-side is a no-op
                try:
                    consumer.cancel()
                except (ConnectionLostError, ValueError):
                    pass
            conn.close()

    @staticmethod
    def _sub(
        subs: Dict[int, Union[EventConsumer, GroupConsumer]],
        frame: Dict[str, object],
    ) -> Union[EventConsumer, GroupConsumer]:
        consumer = subs.get(int(frame["sub"]))  # type: ignore[arg-type]
        if consumer is None:
            raise ValueError(f"unknown subscription {frame.get('sub')!r}")
        return consumer

    def _settle(
        self,
        subs: Dict[int, Union[EventConsumer, GroupConsumer]],
        frame: Dict[str, object],
        requeue: Optional[bool],
    ) -> None:
        try:
            consumer = self._sub(subs, frame)
            # the consumer interfaces settle by Message; only the tag is
            # meaningful, so rehydrate a shell around it
            shell = Message("", None, delivery_tag=int(frame["tag"]))  # type: ignore[arg-type]
            if requeue is None:
                consumer.ack(shell)
            else:
                consumer.nack(shell, requeue=requeue)
        except (ConnectionLostError, KeyError, TypeError, ValueError):
            # fire-and-forget settle on a stale tag/sub: drop it, exactly
            # as ack_quiet does in-process after a reconnect
            pass


class _ClientConn:
    """Client side of one framed connection, with request/reply ids."""

    def __init__(self, host: str, port: int):
        sock = socket.create_connection((host, port), timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_CLIENT_SOCKET_TIMEOUT)
        self.framed = _Framed(sock)
        self._rid = 0
        hello = self.request({"op": "hello", "v": PROTOCOL_VERSION})
        if not hello.get("ok"):
            raise BusProtocolError(
                f"server rejected hello: {hello.get('error')!r}"
            )

    def send(self, frame: Dict[str, object]) -> None:
        self.framed.send(frame)

    def request(self, frame: Dict[str, object]) -> Dict[str, object]:
        self._rid += 1
        frame = dict(frame, id=self._rid)
        self.framed.send(frame)
        while True:
            reply = self.framed.recv()
            if reply is None:
                raise BusProtocolError("server closed connection mid-request")
            # replies arrive in order on this strictly sequential
            # connection; skipping mismatched ids defends against a
            # stale reply surviving a timeout
            if reply.get("id") == self._rid or "id" not in reply:
                return reply

    def close(self) -> None:
        self.framed.close()


class RemotePublisher:
    """Publishes NLEvents to a :class:`BrokerServer` over TCP.

    Drop-in for :class:`~repro.bus.client.EventPublisher`: stamps the
    same end-to-end headers (publisher sequence, trace id, wall +
    monotonic publish clocks) plus ``x-part-key`` — the root-workflow
    partition key, computed *client-side* (this process holds the parsed
    event; the server relays bodies opaquely) so consumer groups
    partition remote streams exactly as local ones.

    Publishes are fire-and-forget frames; :meth:`flush` is the barrier
    that drains the socket and surfaces transport errors.  The
    connection is (re)established lazily under ``retry``.
    """

    def __init__(
        self,
        url: str,
        exchange: str = DEFAULT_EXCHANGE,
        publisher_id: Optional[str] = None,
        stamp: bool = True,
        flush_every: int = 512,
        retry: Optional[RetryPolicy] = None,
    ):
        self._host, self._port = parse_bus_url(url)
        self._exchange = exchange
        self.publisher_id = publisher_id or f"pub-{new_trace_id()}"
        self._stamp = stamp
        self._flush_every = max(1, flush_every)
        self._retry = retry or RetryPolicy(max_retries=4, base_delay=0.05)
        self._keyer = PartitionKeyer()
        self._conn: Optional[_ClientConn] = None
        self.events_published = 0
        self.reconnects = 0
        self._unflushed = 0

    def _connect(self) -> _ClientConn:
        if self._conn is None:
            self._conn = self._retry.call(
                lambda: _ClientConn(self._host, self._port),
                retry_on=(OSError, BusProtocolError),
            )
        return self._conn

    def publish(self, event: NLEvent) -> int:
        self.events_published += 1
        headers: Optional[Dict[str, object]] = None
        if self._stamp:
            headers = {
                HEADER_PUBLISHER: self.publisher_id,
                HEADER_SEQ: self.events_published,
                HEADER_TRACE: new_trace_id(),
                HEADER_PUB_TS: time.time(),
                HEADER_PUB_MONO: time.monotonic(),
                HEADER_CLOCK_EPOCH: CLOCK_EPOCH,
                HEADER_PART_KEY: self._keyer.key_for(
                    event.attrs, default=self.publisher_id
                ),
            }
        frame: Dict[str, object] = {
            "op": "publish",
            "key": event.event,
            "body": encode_body(event),
            "exchange": self._exchange,
        }
        if headers is not None:
            frame["headers"] = headers
        try:
            self._connect().send(frame)
        except (OSError, BusProtocolError):
            self._drop_connection()
            raise ConnectionLostError(
                f"lost connection to bus server {self._host}:{self._port}"
            ) from None
        self._unflushed += 1
        if self._unflushed >= self._flush_every:
            self.flush()
        return 1

    def publish_all(self, events) -> int:
        count = 0
        for event in events:
            self.publish(event)
            count += 1
        return count

    def flush(self) -> int:
        """Barrier: confirm the server consumed everything sent so far."""
        if self._conn is None:
            return 0
        try:
            reply = self._conn.request({"op": "flush"})
        except (OSError, BusProtocolError):
            self._drop_connection()
            raise ConnectionLostError(
                f"lost connection to bus server {self._host}:{self._port}"
            ) from None
        self._unflushed = 0
        return int(reply.get("published", 0))  # type: ignore[arg-type]

    def _drop_connection(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self.reconnects += 1

    def close(self) -> None:
        if self._conn is not None:
            try:
                self.flush()
            except ConnectionLostError:
                pass
            if self._conn is not None:
                self._conn.close()
                self._conn = None


class RemoteConsumer:
    """Consumes from a :class:`BrokerServer` over TCP.

    Interface-compatible with :class:`~repro.bus.client.EventConsumer`
    (and, with ``group=``, joins a consumer group server-side), so
    ``load_from_bus`` drives it unchanged: ``get_message`` raises
    :class:`ConnectionLostError` on transport loss *or* a server-side
    disconnect (``gone`` reply), the caller settles its batch, then
    :meth:`reconnect` re-subscribes — same queue name or same group
    member identity — under the retry policy.
    """

    def __init__(
        self,
        url: str,
        pattern: str = "stampede.#",
        queue_name: Optional[str] = None,
        durable: bool = False,
        group: Optional[str] = None,
        member_id: Optional[str] = None,
        partitions: int = 8,
        exchange: str = DEFAULT_EXCHANGE,
        retry: Optional[RetryPolicy] = None,
    ):
        self._host, self._port = parse_bus_url(url)
        self._pattern = pattern
        self._exchange = exchange
        self._durable = durable
        self._group = group
        self._member_id = member_id
        self._partitions = partitions
        self._queue_name = queue_name
        self._retry = retry or RetryPolicy(
            max_retries=6, base_delay=0.05, max_delay=1.0, jitter="decorrelated"
        )
        self._conn: Optional[_ClientConn] = None
        self._sub: Optional[int] = None
        self.reconnects = 0
        self._subscribe()

    # -- connection management ------------------------------------------------
    def _subscribe(self) -> None:
        conn = _ClientConn(self._host, self._port)
        frame: Dict[str, object] = {
            "op": "subscribe",
            "pattern": self._pattern,
            "exchange": self._exchange,
            "durable": self._durable,
        }
        if self._group:
            frame["group"] = self._group
            frame["partitions"] = self._partitions
            if self._member_id:
                frame["member"] = self._member_id
        elif self._queue_name:
            frame["queue"] = self._queue_name
        reply = conn.request(frame)
        if not reply.get("ok"):
            conn.close()
            raise BusProtocolError(
                f"subscribe rejected: {reply.get('error')!r}"
            )
        self._conn = conn
        self._sub = int(reply["sub"])  # type: ignore[arg-type]
        self._queue_name = str(reply["queue"])
        if self._group and self._member_id is None:
            # remember the server-assigned member id so a reconnect
            # resumes the same partition identities (exactly-once hinges
            # on this)
            self._member_id = self._queue_name.rsplit(".", 1)[-1]

    @property
    def queue_name(self) -> str:
        return self._queue_name or ""

    @property
    def connected(self) -> bool:
        return self._conn is not None

    def reconnect(self) -> None:
        """Re-establish connection + subscription under the retry policy."""
        self.reconnects += 1
        self._teardown()
        self._retry.call(
            self._subscribe, retry_on=(OSError, BusProtocolError)
        )

    def _teardown(self) -> None:
        if self._conn is not None:
            self._conn.close()
        self._conn = None
        self._sub = None

    def _lost(self, detail: str) -> ConnectionLostError:
        self._teardown()
        return ConnectionLostError(
            f"lost connection to bus server {self._host}:{self._port}: {detail}"
        )

    def _request(self, frame: Dict[str, object]) -> Dict[str, object]:
        if self._conn is None or self._sub is None:
            raise ConnectionLostError("not connected to bus server")
        try:
            reply = self._conn.request(dict(frame, sub=self._sub))
        except (OSError, BusProtocolError) as exc:
            raise self._lost(str(exc)) from None
        if not reply.get("ok"):
            if reply.get("gone"):
                raise self._lost(str(reply.get("error")))
            raise ValueError(f"bus server error: {reply.get('error')!r}")
        return reply

    # -- consuming ------------------------------------------------------------
    def get_message(
        self,
        timeout: Optional[float] = DEFAULT_POLL_TIMEOUT,
        auto_ack: bool = False,
    ) -> Optional[Message]:
        """Next message; the wait happens server-side in capped slices."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            reply = self._request({
                "op": "get",
                "timeout": remaining,
                "auto_ack": auto_ack,
            })
            if "msg" in reply:
                return _decode_message(reply["msg"])  # type: ignore[arg-type]
            if deadline is not None and time.monotonic() >= deadline:
                return None
            # empty + time left (or blocking): park again server-side

    def get(
        self, timeout: Optional[float] = DEFAULT_POLL_TIMEOUT
    ) -> Optional[NLEvent]:
        try:
            msg = self.get_message(timeout=timeout, auto_ack=True)
        except ConnectionLostError:
            self.reconnect()
            return None
        return None if msg is None else EventConsumer.as_event(msg)

    def ack(self, message: Message) -> None:
        self._settle("ack", message.delivery_tag)

    def nack(self, message: Message, requeue: bool = True) -> None:
        self._settle("nack", message.delivery_tag, requeue=requeue)

    def _settle(self, op: str, tag: int, **extra: object) -> None:
        if self._conn is None or self._sub is None:
            raise ConnectionLostError("not connected to bus server")
        frame: Dict[str, object] = {"op": op, "sub": self._sub, "tag": tag}
        frame.update(extra)
        try:
            self._conn.send(frame)  # fire-and-forget, like in-process acks
        except OSError as exc:
            raise self._lost(str(exc)) from None

    def depth(self) -> int:
        return int(self._request({"op": "depth"}).get("depth", 0))  # type: ignore[arg-type]

    def drain(self) -> List[NLEvent]:
        out: List[NLEvent] = []
        while True:
            msg = self.get_message(timeout=0.0, auto_ack=True)
            if msg is None:
                return out
            out.append(EventConsumer.as_event(msg))

    def __iter__(self) -> Iterator[NLEvent]:
        while True:
            msg = self.get_message(timeout=0.0, auto_ack=True)
            if msg is None:
                return
            yield EventConsumer.as_event(msg)

    def cancel(self) -> None:
        if self._conn is None or self._sub is None:
            return
        try:
            self._request({"op": "cancel"})
        except (ConnectionLostError, ValueError):
            pass
        self._teardown()

    close = cancel


def connect_publisher(
    bus: Union[str, Broker],
    exchange: str = DEFAULT_EXCHANGE,
    publisher_id: Optional[str] = None,
) -> Union[EventPublisher, RemotePublisher]:
    """Publisher for either an in-process broker or a ``tcp://`` url."""
    if isinstance(bus, str):
        return RemotePublisher(bus, exchange=exchange, publisher_id=publisher_id)
    return EventPublisher(bus, exchange=exchange, publisher_id=publisher_id)
