"""In-process AMQP-style topic message bus (RabbitMQ substitute)."""
from repro.bus.broker import DEFAULT_EXCHANGE, Binding, Broker, Consumer, Exchange
from repro.bus.client import (
    BusSink,
    EventConsumer,
    EventPublisher,
    EventSink,
    FileSink,
    MultiSink,
)
from repro.bus.queues import Message, MessageQueue, QueueFullError, QueueStats
from repro.bus.topic import compile_pattern, topic_matches, validate_pattern

__all__ = [
    "DEFAULT_EXCHANGE",
    "Binding",
    "Broker",
    "Consumer",
    "Exchange",
    "BusSink",
    "EventConsumer",
    "EventPublisher",
    "EventSink",
    "FileSink",
    "MultiSink",
    "Message",
    "MessageQueue",
    "QueueFullError",
    "QueueStats",
    "compile_pattern",
    "topic_matches",
    "validate_pattern",
]
