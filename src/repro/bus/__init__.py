"""In-process AMQP-style topic message bus (RabbitMQ substitute)."""
from repro.bus.broker import (
    DEAD_LETTER_QUEUE,
    DEFAULT_EXCHANGE,
    Binding,
    Broker,
    ConnectionLostError,
    Consumer,
    Exchange,
)
from repro.bus.client import (
    BusSink,
    EventConsumer,
    EventPublisher,
    EventSink,
    FileSink,
    MultiSink,
)
from repro.bus.queues import Message, MessageQueue, QueueFullError, QueueStats
from repro.bus.reliable import HEADER_PUBLISHER, HEADER_SEQ, Resequencer
from repro.bus.topic import compile_pattern, topic_matches, validate_pattern

__all__ = [
    "DEAD_LETTER_QUEUE",
    "DEFAULT_EXCHANGE",
    "ConnectionLostError",
    "HEADER_PUBLISHER",
    "HEADER_SEQ",
    "Resequencer",
    "Binding",
    "Broker",
    "Consumer",
    "Exchange",
    "BusSink",
    "EventConsumer",
    "EventPublisher",
    "EventSink",
    "FileSink",
    "MultiSink",
    "Message",
    "MessageQueue",
    "QueueFullError",
    "QueueStats",
    "compile_pattern",
    "topic_matches",
    "validate_pattern",
]
