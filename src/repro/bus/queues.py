"""Message queues for the in-process AMQP-style broker.

Queues support the subset of AMQP semantics Stampede relies on:
durability flags, auto-delete, unacknowledged-message redelivery, and
bounded capacity with a configurable overflow policy:

* ``'drop-oldest'`` — shed the head of the queue (monitoring data is
  lossy-tolerant; the default);
* ``'raise'`` — fail the publisher with :class:`QueueFullError`;
* ``'block'`` — apply backpressure: the publisher blocks until a
  consumer frees capacity (or its ``timeout`` expires), so a slow
  loader deterministically slows producers instead of silently
  dropping events.
"""
from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Mapping, Optional

__all__ = ["Message", "QueueStats", "MessageQueue", "QueueFullError"]

OVERFLOW_POLICIES = ("drop-oldest", "raise", "block")


class QueueFullError(RuntimeError):
    """Raised when a bounded queue overflows (policy 'raise', or 'block'
    whose wait timed out)."""


@dataclass(frozen=True)
class Message:
    """One message: a routing key plus an opaque body.

    ``headers`` carries AMQP-style per-message metadata (the publisher
    sequence stamps the reliable-delivery layer uses, dead-letter
    annotations, ...); it survives requeue/redelivery untouched.
    """

    routing_key: str
    body: object
    delivery_tag: int = 0
    redelivered: bool = False
    headers: Optional[Mapping[str, object]] = None

    def header(self, name: str, default: object = None) -> object:
        return default if self.headers is None else self.headers.get(name, default)


@dataclass
class QueueStats:
    published: int = 0
    delivered: int = 0
    acked: int = 0
    requeued: int = 0
    dropped: int = 0
    blocked: int = 0  # publisher waits caused by backpressure


class MessageQueue:
    """Thread-safe FIFO with ack/requeue, in the AMQP mold.

    ``get`` marks the message unacknowledged; ``ack`` settles it; ``nack``
    (or consumer cancellation via :meth:`requeue_unacked`) pushes it back to
    the head, flagged redelivered.
    """

    def __init__(
        self,
        name: str,
        durable: bool = False,
        auto_delete: bool = False,
        max_length: Optional[int] = None,
        overflow: str = "drop-oldest",
    ):
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {overflow!r}")
        self.name = name
        self.durable = durable
        self.auto_delete = auto_delete
        self._max_length = max_length
        self._overflow = overflow
        self._items: Deque[Message] = deque()
        self._unacked: "OrderedDict[int, Message]" = OrderedDict()
        self._tag = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self.stats = QueueStats()

    def put(
        self,
        routing_key: str,
        body: object,
        timeout: Optional[float] = None,
        headers: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Enqueue a message, applying the overflow policy when bounded.

        With policy ``'block'``, a full queue makes the publisher wait up
        to ``timeout`` seconds (forever when None) for a consumer to free
        capacity; :class:`QueueFullError` is raised on timeout.
        """
        with self._lock:
            if self._max_length is not None and len(self._items) >= self._max_length:
                if self._overflow == "raise":
                    raise QueueFullError(
                        f"queue {self.name!r} full ({self._max_length})"
                    )
                if self._overflow == "block":
                    self.stats.blocked += 1
                    deadline = (
                        None if timeout is None else time.monotonic() + timeout
                    )
                    while len(self._items) >= self._max_length:
                        wait_for = (
                            None
                            if deadline is None
                            else deadline - time.monotonic()
                        )
                        if wait_for is not None and wait_for <= 0:
                            raise QueueFullError(
                                f"queue {self.name!r} full ({self._max_length}); "
                                f"backpressure wait timed out after {timeout}s"
                            )
                        self._not_full.wait(wait_for)
                else:  # drop-oldest
                    self._items.popleft()
                    self.stats.dropped += 1
            self._tag += 1
            self._items.append(
                Message(routing_key, body, delivery_tag=self._tag, headers=headers)
            )
            self.stats.published += 1
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = 0.0) -> Optional[Message]:
        """Pop the next message; None if empty after ``timeout`` seconds.

        ``timeout=0`` polls; ``timeout=None`` blocks indefinitely.  A
        finite timeout is honored as a deadline across spurious wakeups.
        """
        with self._not_empty:
            if not self._items and timeout != 0.0:
                deadline = None if timeout is None else time.monotonic() + timeout
                while not self._items:
                    wait_for = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if wait_for is not None and wait_for <= 0:
                        return None
                    self._not_empty.wait(wait_for)
            if not self._items:
                return None
            msg = self._items.popleft()
            self._unacked[msg.delivery_tag] = msg
            self.stats.delivered += 1
            self._not_full.notify()
            return msg

    def ack(self, delivery_tag: int) -> None:
        with self._lock:
            if delivery_tag not in self._unacked:
                raise ValueError(f"unknown delivery tag {delivery_tag}")
            del self._unacked[delivery_tag]
            self.stats.acked += 1

    def nack(self, delivery_tag: int, requeue: bool = True) -> None:
        with self._not_empty:
            msg = self._unacked.pop(delivery_tag, None)
            if msg is None:
                raise ValueError(f"unknown delivery tag {delivery_tag}")
            if requeue:
                self._items.appendleft(
                    Message(
                        msg.routing_key,
                        msg.body,
                        msg.delivery_tag,
                        redelivered=True,
                        headers=msg.headers,
                    )
                )
                self.stats.requeued += 1
                self._not_empty.notify()
            else:
                self.stats.dropped += 1

    def requeue_unacked(self) -> int:
        """Requeue everything in flight (consumer died); returns the count."""
        with self._not_empty:
            pending = list(self._unacked.values())
            self._unacked.clear()
            for msg in reversed(pending):
                self._items.appendleft(
                    Message(
                        msg.routing_key,
                        msg.body,
                        msg.delivery_tag,
                        redelivered=True,
                        headers=msg.headers,
                    )
                )
            self.stats.requeued += len(pending)
            if pending:
                self._not_empty.notify_all()
            return len(pending)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def unacked_count(self) -> int:
        with self._lock:
            return len(self._unacked)

    def drain(self) -> Deque[Message]:
        """Atomically remove and return all queued messages (no ack needed)."""
        with self._lock:
            items = self._items
            self._items = deque()
            self.stats.delivered += len(items)
            self.stats.acked += len(items)
            self._not_full.notify_all()
            return items
