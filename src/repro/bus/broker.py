"""In-process topic-exchange message broker (RabbitMQ substitute).

Implements the slice of AMQP the paper's architecture uses: named topic
exchanges, queues bound with topic patterns, non-blocking publish that
fans out to every matching queue, and consumer handles.  Thread-safe, so
an engine thread can publish while a loader thread consumes — the
decoupling Figure 1 of the paper shows.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional

from repro.bus.groups import ConsumerGroup, GroupMember
from repro.bus.queues import Message, MessageQueue
from repro.bus.topic import topic_matches, validate_pattern

__all__ = [
    "Binding",
    "Exchange",
    "Broker",
    "Consumer",
    "ConnectionLostError",
    "DEAD_LETTER_QUEUE",
    "DEFAULT_POLL_TIMEOUT",
]

DEFAULT_EXCHANGE = "stampede"

#: Default blocking window of :meth:`Consumer.get` — the same poll the
#: loader's backpressure path uses (``load_from_bus(poll_timeout=...)``).
#: A short *blocking* wait, not a busy poll: an idle consumer parks on
#: the queue's condition variable instead of spinning, and a remote
#: consumer ships this timeout to the broker so the wait happens
#: server-side rather than as a request-per-poll loop over TCP.  Pass
#: ``timeout=0`` for a true non-blocking poll, ``timeout=None`` to block
#: until a message arrives.
DEFAULT_POLL_TIMEOUT = 0.05

#: Default dead-letter queue: unroutable publishes and poison events land
#: here instead of disappearing.
DEAD_LETTER_QUEUE = "stampede.dlq"


class ConnectionLostError(ConnectionError):
    """The consumer's connection to the broker dropped.

    Raised by consumer operations after a (possibly fault-injected)
    disconnect; unacknowledged messages have been requeued for
    redelivery.  Callers recover by re-subscribing — see
    :meth:`repro.bus.client.EventConsumer.reconnect`.
    """


@dataclass(frozen=True)
class Binding:
    pattern: str
    queue_name: str


class Exchange:
    """A topic exchange: routes by pattern-matching the routing key."""

    def __init__(self, name: str):
        self.name = name
        self._bindings: List[Binding] = []
        self.published = 0
        self.unroutable = 0

    def bind(self, pattern: str, queue_name: str) -> None:
        validate_pattern(pattern)
        binding = Binding(pattern, queue_name)
        if binding not in self._bindings:
            self._bindings.append(binding)

    def unbind(self, pattern: str, queue_name: str) -> None:
        self._bindings = [
            b for b in self._bindings
            if not (b.pattern == pattern and b.queue_name == queue_name)
        ]

    def route(self, routing_key: str) -> List[str]:
        """Queue names whose binding matches; duplicates collapsed."""
        seen: Dict[str, None] = {}
        for binding in self._bindings:
            if binding.queue_name not in seen and topic_matches(
                binding.pattern, routing_key
            ):
                seen[binding.queue_name] = None
        return list(seen)

    def bindings(self) -> List[Binding]:
        return list(self._bindings)


class Broker:
    """The message bus: exchanges + queues + publish/subscribe."""

    def __init__(self, dead_letter_queue: Optional[str] = DEAD_LETTER_QUEUE):
        self._exchanges: Dict[str, Exchange] = {}
        self._queues: Dict[str, MessageQueue] = {}
        self._groups: Dict[str, ConsumerGroup] = {}
        self._lock = threading.RLock()
        self._anon_counter = 0
        self._taps: List[Callable[[str, object, Optional[Mapping[str, object]]], None]] = []
        #: where unroutable publishes go; None restores the old
        #: drop-and-count behavior.  Declared lazily on first use so the
        #: queue only exists once something actually dead-letters.
        self.dead_letter_queue = dead_letter_queue

    # -- topology ------------------------------------------------------------
    def declare_exchange(self, name: str = DEFAULT_EXCHANGE) -> Exchange:
        with self._lock:
            if name not in self._exchanges:
                self._exchanges[name] = Exchange(name)
            return self._exchanges[name]

    def declare_queue(
        self,
        name: Optional[str] = None,
        durable: bool = False,
        auto_delete: bool = False,
        max_length: Optional[int] = None,
        overflow: str = "drop-oldest",
    ) -> MessageQueue:
        with self._lock:
            if name is None:
                self._anon_counter += 1
                name = f"amq.gen-{self._anon_counter}"
            if name in self._queues:
                existing = self._queues[name]
                if existing.durable != durable:
                    raise ValueError(
                        f"queue {name!r} redeclared with durable={durable}, "
                        f"existing durable={existing.durable}"
                    )
                return existing
            queue = MessageQueue(
                name,
                durable=durable,
                auto_delete=auto_delete,
                max_length=max_length,
                overflow=overflow,
            )
            self._queues[name] = queue
            return queue

    def bind_queue(
        self, queue_name: str, pattern: str, exchange: str = DEFAULT_EXCHANGE
    ) -> None:
        with self._lock:
            if queue_name not in self._queues:
                raise KeyError(f"no such queue {queue_name!r}")
            self.declare_exchange(exchange).bind(pattern, queue_name)

    def delete_queue(self, queue_name: str) -> None:
        with self._lock:
            self._queues.pop(queue_name, None)
            for exchange in self._exchanges.values():
                for binding in exchange.bindings():
                    if binding.queue_name == queue_name:
                        exchange.unbind(binding.pattern, queue_name)

    def declare_group(
        self,
        name: str,
        pattern: str = "stampede.#",
        partitions: int = 8,
        exchange: str = DEFAULT_EXCHANGE,
    ) -> ConsumerGroup:
        """Declare (or return) a consumer group over a topic pattern.

        A group competes for matching publishes: each one is routed to
        exactly one of the group's partition queues (partitioned by root
        workflow id), and the group's members own disjoint partition
        subsets — the scale-out complement to fan-out subscriptions.
        Redeclaring with different parameters is an error, as for queue
        durability.
        """
        with self._lock:
            group = self._groups.get(name)
            if group is not None:
                if (group.pattern, group.partitions, group.exchange) != (
                    pattern, partitions, exchange
                ):
                    raise ValueError(
                        f"group {name!r} redeclared with "
                        f"pattern={pattern!r}/partitions={partitions}/"
                        f"exchange={exchange!r}, existing "
                        f"pattern={group.pattern!r}/"
                        f"partitions={group.partitions}/"
                        f"exchange={group.exchange!r}"
                    )
                return group
            self.declare_exchange(exchange)
            group = ConsumerGroup(
                self, name, pattern, partitions=partitions, exchange=exchange
            )
            self._groups[name] = group
            return group

    def join_group(
        self,
        name: str,
        member_id: Optional[str] = None,
        pattern: str = "stampede.#",
        partitions: int = 8,
        exchange: str = DEFAULT_EXCHANGE,
    ) -> GroupMember:
        """Declare a group and join it in one step (the common path)."""
        group = self.declare_group(
            name, pattern=pattern, partitions=partitions, exchange=exchange
        )
        # join() rebalances and may requeue in-flight deliveries; it runs
        # outside the broker lock by design (lock order: broker > group)
        return group.join(member_id)

    def group(self, name: str) -> ConsumerGroup:
        with self._lock:
            return self._groups[name]

    def groups(self) -> List[ConsumerGroup]:
        with self._lock:
            return list(self._groups.values())

    def queue(self, name: str) -> MessageQueue:
        with self._lock:
            return self._queues[name]

    def queue_names(self) -> List[str]:
        with self._lock:
            return list(self._queues)

    def queues(self) -> List[MessageQueue]:
        with self._lock:
            return list(self._queues.values())

    def exchanges(self) -> List[Exchange]:
        with self._lock:
            return list(self._exchanges.values())

    # -- taps ----------------------------------------------------------------
    def add_tap(
        self, tap: Callable[[str, object, Optional[Mapping[str, object]]], None]
    ) -> None:
        """Register an observer called once per publish.

        Taps see ``(routing_key, body, headers)`` for every message
        offered to this broker — matching or not — *before* routing, so
        a recorder captures the stream exactly as published (including
        what would dead-letter).  Taps run on the publisher's thread,
        outside the broker lock; a slow tap slows publishers the way a
        slow wire would, but can never deadlock routing.
        """
        with self._lock:
            if tap not in self._taps:
                self._taps.append(tap)

    def remove_tap(
        self, tap: Callable[[str, object, Optional[Mapping[str, object]]], None]
    ) -> None:
        with self._lock:
            if tap in self._taps:
                self._taps.remove(tap)

    # -- messaging ------------------------------------------------------------
    def publish(
        self,
        routing_key: str,
        body: object,
        exchange: str = DEFAULT_EXCHANGE,
        headers: Optional[Mapping[str, object]] = None,
    ) -> int:
        """Publish to every queue bound with a matching pattern.

        Returns the number of queues that received the message.  Never
        blocks the producer (the property §IV-C of the paper calls out).
        An unroutable publish (no binding matches — e.g. a typo'd routing
        key) is counted *and* routed to the broker's dead-letter queue,
        annotated with the exchange it failed to route through, so it
        stays recoverable instead of vanishing.
        """
        if self._taps:  # devlint: ignore[SDL101] - benign lock-free fast path; real read is snapshotted below
            # snapshot under the lock, call outside it (see add_tap)
            with self._lock:
                taps = list(self._taps)
            for tap in taps:
                tap(routing_key, body, headers)
        dead_letter = None
        with self._lock:
            exch = self.declare_exchange(exchange)
            exch.published += 1
            targets = [self._queues[name] for name in exch.route(routing_key)
                       if name in self._queues]
            groups = [
                g for g in self._groups.values()
                if g.matches(routing_key, exchange)
            ]
            if not targets and not groups:
                exch.unroutable += 1
                if self.dead_letter_queue is not None:
                    dead_letter = self.declare_queue(
                        self.dead_letter_queue, durable=True
                    )
        if dead_letter is not None:
            dead_letter.put(
                routing_key,
                body,
                headers={
                    **(headers or {}),
                    "x-death": "unroutable",
                    "x-exchange": exchange,
                },
            )
            return 0
        delivered = len(targets)
        for queue in targets:
            queue.put(routing_key, body, headers=headers)
        for group in groups:
            # route() picks the partition + stamps headers under the
            # group's own lock; the put happens here, outside any lock.
            # None means the group absorbed a publish-side duplicate.
            routed = group.route(routing_key, body, headers)
            if routed is not None:
                part_queue, group_headers = routed
                part_queue.put(routing_key, body, headers=group_headers)
                delivered += 1
        return delivered

    def subscribe(
        self,
        pattern: str,
        queue_name: Optional[str] = None,
        exchange: str = DEFAULT_EXCHANGE,
        durable: bool = False,
        auto_delete: bool = True,
        max_length: Optional[int] = None,
        overflow: str = "drop-oldest",
    ) -> "Consumer":
        """Declare+bind a queue in one step and return a consumer handle.

        ``max_length`` + ``overflow='block'`` turn the queue into a
        backpressure boundary: publishers block when the consumer lags.
        """
        with self._lock:
            queue = self.declare_queue(
                queue_name,
                durable=durable,
                auto_delete=auto_delete,
                max_length=max_length,
                overflow=overflow,
            )
            self.bind_queue(queue.name, pattern, exchange)
        return Consumer(self, queue)


class Consumer:
    """Pull-style consumer over one queue, with iterator sugar."""

    def __init__(self, broker: Broker, queue: MessageQueue):
        self._broker = broker
        self._queue = queue
        self.cancelled = False
        self.disconnected = False

    @property
    def queue_name(self) -> str:
        return self._queue.name

    def get(
        self,
        timeout: Optional[float] = DEFAULT_POLL_TIMEOUT,
        auto_ack: bool = True,
    ) -> Optional[Message]:
        """Pop the next message, blocking up to ``timeout`` seconds.

        ``timeout`` semantics (shared by every consumer flavour,
        including the TCP :class:`~repro.bus.net.RemoteConsumer`):

        * ``None`` — block until a message arrives (AMQP-style consume);
        * ``0`` — non-blocking poll, return ``None`` immediately;
        * ``> 0`` — block up to that many seconds (the default is
          :data:`DEFAULT_POLL_TIMEOUT`, matching the loader's
          backpressure loop), then return ``None``.
        """
        self._check_connected()
        msg = self._queue.get(timeout=timeout)
        if msg is not None and auto_ack:
            self._queue.ack(msg.delivery_tag)
        return msg

    def ack(self, message: Message) -> None:
        self._check_connected()
        self._queue.ack(message.delivery_tag)

    def nack(self, message: Message, requeue: bool = True) -> None:
        self._check_connected()
        self._queue.nack(message.delivery_tag, requeue=requeue)

    def depth(self) -> int:
        """Messages currently queued (excluding unacked in-flight ones)."""
        return len(self._queue)

    def drain(self) -> List[Message]:
        """Consume everything currently queued without blocking."""
        return list(self._queue.drain())

    def __iter__(self) -> Iterator[Message]:
        """Iterate over currently-available messages (non-blocking)."""
        while True:
            msg = self.get(timeout=0.0)
            if msg is None:
                return
            yield msg

    def cancel(self) -> None:
        """Stop consuming; requeue in-flight messages; honor auto-delete."""
        self.cancelled = True
        self._queue.requeue_unacked()
        if self._queue.auto_delete:
            self._broker.delete_queue(self._queue.name)

    def disconnect(self) -> None:
        """Simulate the connection to the broker dropping.

        Mirrors real AMQP semantics: unacknowledged messages are requeued
        for redelivery (flagged ``redelivered``), auto-delete queues are
        torn down, and every further operation on this handle raises
        :class:`ConnectionLostError` — the consumer must re-subscribe.
        """
        if self.disconnected:
            return
        self.disconnected = True
        self._queue.requeue_unacked()
        if self._queue.auto_delete:
            self._broker.delete_queue(self._queue.name)

    def _check_connected(self) -> None:
        if self.disconnected:
            raise ConnectionLostError(
                f"connection to queue {self._queue.name!r} lost"
            )
