"""The Pegasus log normalizer: raw Condor/DAGMan logs → Stampede BP events.

This is Fig. 1's "log normalizer" box: "workflow systems refer to this
data model to develop a workflow system-specific log normalizer that
converts the workflow logs to NetLogger-formatted logs that are
compatible with the model" (paper §IV).

Input: the planning context (AW + EW + run metadata) plus the two raw log
streams the Pegasus toolchain produces — ``jobstate.log`` and kickstart
invocation records.  Output: the same schema-conformant event stream the
in-engine emitter would have produced, suitable for ``nl_load``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.netlogger.events import NLEvent
from repro.pegasus.abstract import AbstractWorkflow
from repro.pegasus.condor_log import JobstateEntry, KickstartRecord
from repro.pegasus.events import PegasusEventEmitter
from repro.pegasus.executable import ExecutableWorkflow
from repro.schema.stampede import Events, FAILURE, SUCCESS

__all__ = ["RawLogRecorder", "PegasusLogNormalizer", "normalize_run"]


class RawLogRecorder:
    """Collects raw log records during a DAGMan run (or from files)."""

    def __init__(self):
        self.jobstate: List[JobstateEntry] = []
        self.kickstart: List[KickstartRecord] = []

    def on_jobstate(self, entry: JobstateEntry) -> None:
        self.jobstate.append(entry)

    def on_kickstart(self, record: KickstartRecord) -> None:
        self.kickstart.append(record)

    def write(self, jobstate_writer=None, kickstart_writer=None) -> None:
        """Persist the collected records through the given writers."""
        if jobstate_writer is not None:
            for entry in self.jobstate:
                jobstate_writer.write(entry)
        if kickstart_writer is not None:
            for record in self.kickstart:
                kickstart_writer.write(record)


class _ListSink:
    """EventSink collecting into a list (internal)."""

    def __init__(self):
        self.events: List[NLEvent] = []

    def emit(self, event: NLEvent) -> None:
        self.events.append(event)


@dataclass
class _InstanceState:
    """Normalizer-side reconstruction of one job instance."""

    site: str = ""
    sched_id: str = ""
    execute_ts: Optional[float] = None
    post_start: Optional[float] = None
    hostname: Optional[str] = None
    emitted_host_info: bool = False


class PegasusLogNormalizer:
    """Stateful normalizer for one workflow run."""

    #: jobstate.log states handled; anything else raises in strict mode.
    _HANDLED = {
        "SUBMIT",
        "EXECUTE",
        "JOB_TERMINATED",
        "JOB_SUCCESS",
        "JOB_FAILURE",
        "POST_SCRIPT_STARTED",
        "POST_SCRIPT_TERMINATED",
        "POST_SCRIPT_SUCCESS",
        "POST_SCRIPT_FAILURE",
    }

    def __init__(
        self,
        aw: AbstractWorkflow,
        ew: ExecutableWorkflow,
        xwf_id: str,
        user: str = "pegasus",
        submit_hostname: str = "submit.example.org",
        submit_dir: str = "/scratch/runs",
        strict: bool = True,
    ):
        self.aw = aw
        self.ew = ew
        self.strict = strict
        self._sink = _ListSink()
        self._emitter = PegasusEventEmitter(
            self._sink,
            xwf_id=xwf_id,
            submit_hostname=submit_hostname,
            submit_dir=submit_dir,
            user=user,
        )
        self._instances: Dict[Tuple[str, int], _InstanceState] = {}
        self._started = False
        self._last_ts = 0.0
        self._any_failure = False

    # -- the normalization pass ------------------------------------------------
    def normalize(
        self,
        jobstate: Iterable[JobstateEntry],
        kickstart: Iterable[KickstartRecord],
    ) -> List[NLEvent]:
        """Produce the full BP event stream for the run."""
        merged = self._merge_streams(list(jobstate), list(kickstart))
        if not merged:
            return []
        first_ts = merged[0][0]
        self._emitter.plan(self.aw, self.ew, first_ts)
        self._emitter.static_section(self.aw, self.ew, first_ts)
        self._emitter.xwf_start(first_ts)
        self._started = True
        for ts, record in merged:
            self._last_ts = max(self._last_ts, ts)
            if isinstance(record, JobstateEntry):
                self._on_jobstate(record)
            else:
                self._on_kickstart(record)
        self._emitter.xwf_end(
            self._last_ts, FAILURE if self._any_failure else SUCCESS
        )
        return self._sink.events

    @staticmethod
    def _merge_streams(
        jobstate: List[JobstateEntry], kickstart: List[KickstartRecord]
    ) -> List[Tuple[float, object]]:
        """Merge both raw streams into one timestamp-ordered sequence.

        Kickstart records sort at their completion instant (they are only
        observable once the invocation finished), and before jobstate
        entries at the same instant so invocations precede main.term.
        """
        tagged: List[Tuple[float, int, int, object]] = []
        for i, entry in enumerate(jobstate):
            tagged.append((entry.ts, 1, i, entry))
        for i, record in enumerate(kickstart):
            tagged.append((record.start + record.duration, 0, i, record))
        tagged.sort(key=lambda t: (t[0], t[1], t[2]))
        return [(ts, rec) for ts, _, _, rec in tagged]

    # -- per-record handling -------------------------------------------------------
    def _state_for(self, exec_job_id: str, seq: int) -> _InstanceState:
        return self._instances.setdefault((exec_job_id, seq), _InstanceState())

    def _on_jobstate(self, entry: JobstateEntry) -> None:
        if entry.exec_job_id not in self.ew:
            if self.strict:
                raise ValueError(
                    f"jobstate.log references unknown job {entry.exec_job_id!r}"
                )
            return
        job = self.ew.job(entry.exec_job_id)
        seq = entry.job_submit_seq
        state = self._state_for(entry.exec_job_id, seq)
        ts = entry.ts
        if entry.state == "SUBMIT":
            state.site = entry.site
            state.sched_id = entry.sched_id
            self._emitter.submit_start(job, seq, entry.sched_id, ts)
            self._emitter.submit_end(job, seq, ts)
        elif entry.state == "EXECUTE":
            state.execute_ts = ts
            self._maybe_host_info(job, seq, state, ts)
            self._emitter.main_start(job, seq, ts)
        elif entry.state == "JOB_TERMINATED":
            self._emitter.main_term(job, seq, SUCCESS, ts)
        elif entry.state in ("JOB_SUCCESS", "JOB_FAILURE"):
            exitcode = 0 if entry.state == "JOB_SUCCESS" else 1
            if exitcode:
                self._any_failure = True
            duration = (
                ts - state.execute_ts if state.execute_ts is not None else 0.0
            )
            self._emitter.main_end(
                job, seq, state.site or entry.site, exitcode, duration, ts
            )
        elif entry.state == "POST_SCRIPT_STARTED":
            state.post_start = ts
        elif entry.state == "POST_SCRIPT_TERMINATED":
            pass  # folded into post.end below
        elif entry.state in ("POST_SCRIPT_SUCCESS", "POST_SCRIPT_FAILURE"):
            exitcode = 0 if entry.state == "POST_SCRIPT_SUCCESS" else 1
            start_ts = state.post_start if state.post_start is not None else ts
            self._emitter.post_script(job, seq, start_ts, ts, exitcode)
        elif self.strict:
            raise ValueError(f"unhandled jobstate {entry.state!r}")

    def _maybe_host_info(self, job, seq, state: _InstanceState, ts: float) -> None:
        if state.emitted_host_info:
            return
        hostname = state.hostname or f"{state.site or 'unknown'}-node0"
        self._emitter.host_info(job, seq, state.site or "unknown", hostname, ts)
        state.emitted_host_info = True

    def _on_kickstart(self, record: KickstartRecord) -> None:
        if record.exec_job_id not in self.ew:
            if self.strict:
                raise ValueError(
                    f"kickstart record references unknown job "
                    f"{record.exec_job_id!r}"
                )
            return
        job = self.ew.job(record.exec_job_id)
        state = self._state_for(record.exec_job_id, record.job_submit_seq)
        state.hostname = record.hostname
        self._emitter.invocation(
            job,
            record.job_submit_seq,
            record.inv_seq,
            record.task_id,
            record.transformation,
            record.executable,
            record.argv,
            record.start,
            record.duration,
            record.exitcode,
            record.site,
            record.hostname,
        )


def normalize_run(
    aw: AbstractWorkflow,
    ew: ExecutableWorkflow,
    xwf_id: str,
    jobstate: Iterable[JobstateEntry],
    kickstart: Iterable[KickstartRecord],
    **kwargs,
) -> List[NLEvent]:
    """One-shot normalization of a run's raw logs into BP events."""
    normalizer = PegasusLogNormalizer(aw, ew, xwf_id, **kwargs)
    return normalizer.normalize(jobstate, kickstart)
