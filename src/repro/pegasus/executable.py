"""Executable workflows: the result of planning an AW onto resources.

"A node in the EW can be associated with one or more tasks in the AW.  It
may also represent jobs added by the workflow system to manage the
workflow that were not present in the AW, for example jobs added to
stage-in data" (paper §IV-A).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pegasus.abstract import AbstractTask
from repro.util.graph import DiGraph

__all__ = ["JobType", "ExecutableJob", "ExecutableWorkflow"]


class JobType(enum.Enum):
    """type_desc vocabulary for EW jobs."""

    COMPUTE = "compute"
    STAGE_IN = "stage-in-tx"
    STAGE_OUT = "stage-out-tx"
    REGISTRATION = "registration"
    CREATE_DIR = "create-dir"
    CLEANUP = "cleanup"
    DAX = "dax"  # sub-workflow job

    def __str__(self) -> str:
        return self.value


#: Auxiliary job types have no corresponding AW task.
AUXILIARY_TYPES = frozenset(
    {JobType.STAGE_IN, JobType.STAGE_OUT, JobType.REGISTRATION,
     JobType.CREATE_DIR, JobType.CLEANUP}
)


@dataclass
class ExecutableJob:
    """One node of the EW: one or more AW tasks, or an auxiliary action."""

    exec_job_id: str
    job_type: JobType
    tasks: List[AbstractTask] = field(default_factory=list)
    site: Optional[str] = None  # pinned site, or None = scheduler's choice
    max_retries: int = 3
    executable: str = ""
    argv: str = ""
    runtime_seconds: float = 0.0  # auxiliary jobs: fixed cost

    @property
    def clustered(self) -> bool:
        return len(self.tasks) > 1

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    @property
    def is_compute(self) -> bool:
        return self.job_type is JobType.COMPUTE

    def total_task_runtime(self) -> float:
        """Serial runtime of the contained tasks (reference core)."""
        if self.tasks:
            return sum(t.runtime_estimate for t in self.tasks)
        return self.runtime_seconds

    def __repr__(self) -> str:
        return (
            f"<ExecutableJob {self.exec_job_id!r} {self.job_type} "
            f"tasks={self.task_count}>"
        )


class ExecutableWorkflow:
    """The planned DAG of executable jobs."""

    def __init__(self, dag_name: str):
        self.dag_name = dag_name
        self._jobs: Dict[str, ExecutableJob] = {}
        self._graph = DiGraph()

    def add_job(self, job: ExecutableJob) -> ExecutableJob:
        if job.exec_job_id in self._jobs:
            raise ValueError(f"duplicate job id {job.exec_job_id!r}")
        self._jobs[job.exec_job_id] = job
        self._graph.add_node(job.exec_job_id)
        return job

    def add_dependency(self, parent_id: str, child_id: str) -> None:
        for jid in (parent_id, child_id):
            if jid not in self._jobs:
                raise KeyError(f"unknown job {jid!r}")
        self._graph.add_edge(parent_id, child_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def job(self, job_id: str) -> ExecutableJob:
        return self._jobs[job_id]

    def jobs(self) -> List[ExecutableJob]:
        return list(self._jobs.values())

    def compute_jobs(self) -> List[ExecutableJob]:
        return [j for j in self._jobs.values() if j.is_compute]

    def edges(self) -> List[Tuple[str, str]]:
        return self._graph.edges()

    def parents(self, job_id: str) -> List[str]:
        return self._graph.predecessors(job_id)

    def children(self, job_id: str) -> List[str]:
        return self._graph.successors(job_id)

    def roots(self) -> List[str]:
        return self._graph.roots()

    def topological_order(self) -> List[str]:
        return self._graph.topological_order()

    def is_dag(self) -> bool:
        return self._graph.is_dag()

    def task_to_job_map(self) -> Dict[str, str]:
        """abs task id -> exec job id (the wf.map.task_job events)."""
        mapping: Dict[str, str] = {}
        for job in self._jobs.values():
            for task in job.tasks:
                mapping[task.task_id] = job.exec_job_id
        return mapping

    def __repr__(self) -> str:
        return (
            f"<ExecutableWorkflow {self.dag_name!r}: {len(self)} jobs, "
            f"{len(self.edges())} edges>"
        )
