"""Pegasus-style workflow engine: abstract workflows, planner (clustering +
auxiliary jobs), site catalog, and a DAGMan/Condor-style executor."""
from repro.pegasus.abstract import AbstractTask, AbstractWorkflow
from repro.pegasus.dagman import DAGManReport, DAGManRun, run_pegasus_workflow
from repro.pegasus.dax import (
    dag_to_string,
    dax_to_string,
    parse_dax,
    write_dag,
    write_dax,
)
from repro.pegasus.events import PegasusEventEmitter
from repro.pegasus.hierarchy import (
    HierarchicalRun,
    SubDaxJob,
    run_hierarchical_workflow,
    run_with_restarts,
)
from repro.pegasus.executable import ExecutableJob, ExecutableWorkflow, JobType
from repro.pegasus.condor_log import (
    JobstateEntry,
    JobstateLogWriter,
    KickstartRecord,
    KickstartWriter,
    parse_jobstate_log,
    parse_kickstart_records,
)
from repro.pegasus.normalizer import (
    PegasusLogNormalizer,
    RawLogRecorder,
    normalize_run,
)
from repro.pegasus.planner import Planner, PlannerConfig
from repro.pegasus.sites import Site, SiteCatalog

__all__ = [
    "AbstractTask",
    "AbstractWorkflow",
    "DAGManReport",
    "DAGManRun",
    "run_pegasus_workflow",
    "PegasusEventEmitter",
    "HierarchicalRun",
    "SubDaxJob",
    "run_hierarchical_workflow",
    "run_with_restarts",
    "ExecutableJob",
    "ExecutableWorkflow",
    "JobType",
    "Planner",
    "PlannerConfig",
    "JobstateEntry",
    "JobstateLogWriter",
    "KickstartRecord",
    "KickstartWriter",
    "parse_jobstate_log",
    "parse_kickstart_records",
    "PegasusLogNormalizer",
    "RawLogRecorder",
    "normalize_run",
    "dag_to_string",
    "dax_to_string",
    "parse_dax",
    "write_dag",
    "write_dax",
    "Site",
    "SiteCatalog",
]
