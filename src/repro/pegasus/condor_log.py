"""Raw Pegasus/Condor log formats: jobstate.log and kickstart records.

Before Stampede, "the workflow and job logs were converted to NetLogger BP
format and uploaded ... after the workflows completed" (paper §III-A).
Those *raw* logs are what the workflow-system-specific normalizer consumes
(Fig. 1's "workflow logs" box).  This module implements the two formats
the Pegasus toolchain actually produces:

* **jobstate.log** — one line per job-state transition, written by
  pegasus-monitord next to the DAGMan logs::

      1331642138.50 create_dir_0 SUBMIT 42.0 pool - 1
      1331642140.10 create_dir_0 EXECUTE 42.0 pool - 1
      ...

  Fields: timestamp, exec job id, state, Condor sched id, site, an unused
  placeholder, and the job submit sequence.

* **kickstart records** — one per invocation, emitted by the remote
  wrapper; a small XML document carrying the measured duration, exit code
  and identity of each executable run.
"""
from __future__ import annotations

import io
import os
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, TextIO, Union

__all__ = [
    "JobstateEntry",
    "JobstateLogWriter",
    "parse_jobstate_log",
    "KickstartRecord",
    "KickstartWriter",
    "parse_kickstart_records",
]

PathOrFile = Union[str, os.PathLike, TextIO]

_JOBSTATE_RE = re.compile(
    r"^(?P<ts>\d+(?:\.\d+)?)\s+(?P<job>\S+)\s+(?P<state>[A-Z_]+)\s+"
    r"(?P<sched>\S+)\s+(?P<site>\S+)\s+(?P<unused>\S+)\s+(?P<seq>\d+)\s*$"
)


@dataclass(frozen=True)
class JobstateEntry:
    """One jobstate.log line."""

    ts: float
    exec_job_id: str
    state: str
    sched_id: str
    site: str
    job_submit_seq: int

    def to_line(self) -> str:
        return (
            f"{self.ts:.3f} {self.exec_job_id} {self.state} "
            f"{self.sched_id} {self.site} - {self.job_submit_seq}"
        )

    @classmethod
    def from_line(cls, line: str) -> "JobstateEntry":
        m = _JOBSTATE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed jobstate.log line: {line!r}")
        return cls(
            ts=float(m.group("ts")),
            exec_job_id=m.group("job"),
            state=m.group("state"),
            sched_id=m.group("sched"),
            site=m.group("site"),
            job_submit_seq=int(m.group("seq")),
        )


class JobstateLogWriter:
    """Appends jobstate entries to a file (or file-like)."""

    def __init__(self, target: PathOrFile):
        if isinstance(target, (str, os.PathLike)):
            self._fh: TextIO = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.entries_written = 0

    def write(self, entry: JobstateEntry) -> None:
        self._fh.write(entry.to_line() + "\n")
        self._fh.flush()
        self.entries_written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JobstateLogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_jobstate_log(source: PathOrFile) -> Iterator[JobstateEntry]:
    """Iterate the entries of a jobstate.log."""
    close = False
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh = source
    try:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield JobstateEntry.from_line(stripped)
    finally:
        if close:
            fh.close()


@dataclass
class KickstartRecord:
    """One invocation record, as the remote kickstart wrapper reports it."""

    exec_job_id: str
    job_submit_seq: int
    inv_seq: int
    transformation: str
    executable: str
    start: float
    duration: float
    exitcode: int
    site: str
    hostname: str
    argv: str = ""
    task_id: Optional[str] = None
    cpu_time: Optional[float] = None

    def to_xml(self) -> str:
        inv = ET.Element(
            "invocation",
            {
                "job": self.exec_job_id,
                "seq": str(self.job_submit_seq),
                "inv": str(self.inv_seq),
                "transformation": self.transformation,
                "start": f"{self.start:.6f}",
                "duration": f"{self.duration:.6f}",
                "resource": self.site,
                "hostname": self.hostname,
            },
        )
        if self.task_id is not None:
            inv.set("derivation", self.task_id)
        main = ET.SubElement(inv, "mainjob")
        ET.SubElement(main, "status", {"raw": str(self.exitcode)})
        stat = ET.SubElement(main, "statcall")
        ET.SubElement(stat, "file", {"name": self.executable})
        if self.argv:
            args = ET.SubElement(main, "arguments")
            args.text = self.argv
        if self.cpu_time is not None:
            usage = ET.SubElement(main, "usage")
            usage.set("utime", f"{self.cpu_time:.6f}")
        return ET.tostring(inv, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "KickstartRecord":
        root = ET.fromstring(text)
        if root.tag != "invocation":
            raise ValueError(f"not a kickstart record: root tag {root.tag!r}")
        main = root.find("mainjob")
        if main is None:
            raise ValueError("kickstart record missing <mainjob>")
        status = main.find("status")
        statfile = main.find("statcall/file")
        args = main.find("arguments")
        usage = main.find("usage")
        return cls(
            exec_job_id=root.attrib["job"],
            job_submit_seq=int(root.attrib["seq"]),
            inv_seq=int(root.attrib["inv"]),
            transformation=root.attrib["transformation"],
            executable=statfile.attrib["name"] if statfile is not None else "",
            start=float(root.attrib["start"]),
            duration=float(root.attrib["duration"]),
            exitcode=int(status.attrib["raw"]) if status is not None else 0,
            site=root.attrib.get("resource", ""),
            hostname=root.attrib.get("hostname", ""),
            argv=(args.text or "") if args is not None else "",
            task_id=root.attrib.get("derivation"),
            cpu_time=float(usage.attrib["utime"]) if usage is not None else None,
        )


class KickstartWriter:
    """Appends kickstart records, one XML document per line."""

    def __init__(self, target: PathOrFile):
        if isinstance(target, (str, os.PathLike)):
            self._fh: TextIO = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.records_written = 0

    def write(self, record: KickstartRecord) -> None:
        self._fh.write(record.to_xml() + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "KickstartWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_kickstart_records(source: PathOrFile) -> Iterator[KickstartRecord]:
    """Iterate kickstart records from a one-record-per-line file."""
    close = False
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh = source
    try:
        for line in fh:
            stripped = line.strip()
            if stripped:
                yield KickstartRecord.from_xml(stripped)
    finally:
        if close:
            fh.close()
