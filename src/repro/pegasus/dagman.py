"""DAGMan-style executor: runs an executable workflow on the site catalog.

Models the Condor/DAGMan execution loop the Pegasus integration logged:
ready jobs are submitted to a site, wait in its remote queue, occupy a
slot, run their (possibly clustered) invocations, run a post-script, and
are retried on failure up to ``max_retries`` times — each attempt a new
job instance, exactly as the Stampede data model prescribes.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.bus.client import EventSink
from repro.pegasus.abstract import AbstractWorkflow
from repro.pegasus.events import PegasusEventEmitter
from repro.pegasus.executable import ExecutableJob, ExecutableWorkflow
from repro.pegasus.planner import Planner, PlannerConfig
from repro.pegasus.sites import Site, SiteCatalog
from repro.schema.stampede import FAILURE, SUCCESS
from repro.util.simclock import SimClock
from repro.util.uuidgen import UUIDFactory

__all__ = ["DAGManReport", "DAGManRun", "run_pegasus_workflow"]

_POST_SCRIPT_SECONDS = 0.5
_SUBMIT_OVERHEAD = 0.2
_RUNTIME_NOISE_SIGMA = 0.10


@dataclass
class DAGManReport:
    """Outcome of one DAGMan run."""

    succeeded: int = 0
    failed: int = 0
    unready: int = 0  # never became runnable (upstream failure)
    retries: int = 0
    wall_time: float = 0.0
    status: int = SUCCESS

    @property
    def ok(self) -> bool:
        return self.status == SUCCESS


class _JobState:
    __slots__ = ("job", "attempts", "done", "succeeded", "pending_parents")

    def __init__(self, job: ExecutableJob, pending_parents: int):
        self.job = job
        self.attempts = 0
        self.done = False
        self.succeeded = False
        self.pending_parents = pending_parents


class DAGManRun:
    """One execution of an EW on a shared (or private) virtual clock."""

    def __init__(
        self,
        aw: AbstractWorkflow,
        ew: ExecutableWorkflow,
        sink: EventSink,
        catalog: Optional[SiteCatalog] = None,
        clock: Optional[SimClock] = None,
        seed: int = 0,
        xwf_id: Optional[str] = None,
        parent_xwf_id: Optional[str] = None,
        root_xwf_id: Optional[str] = None,
        raw_recorder=None,
        faults=None,
    ):
        self.aw = aw
        self.ew = ew
        self.catalog = catalog or SiteCatalog.default()
        self.clock = clock if clock is not None else SimClock()
        self.rng = np.random.Generator(np.random.PCG64(seed))
        uuids = UUIDFactory(seed ^ 0x9E6A)
        self.xwf_id = xwf_id or uuids.new()
        self.emitter = PegasusEventEmitter(
            sink,
            xwf_id=self.xwf_id,
            parent_xwf_id=parent_xwf_id,
            root_xwf_id=root_xwf_id,
        )
        self.report = DAGManReport()
        #: optional RawLogRecorder mirroring execution into the raw Condor
        #: log formats (jobstate.log + kickstart) for the normalizer path
        self.raw_recorder = raw_recorder
        #: optional EngineFaultInjector (repro.faults): consulted per
        #: (exec job id, attempt) to crash or hang attempts on demand
        self.faults = faults
        self._states: Dict[str, _JobState] = {}
        self._in_flight = 0
        self._sched_counter = 0

    # -- public API ------------------------------------------------------------
    def start(self, precompleted: Optional[set] = None,
              restart_count: int = 0,
              attempt_base: Optional[Dict[str, int]] = None) -> None:
        """Begin the run.

        ``precompleted`` lists exec job ids that succeeded in a previous
        attempt (rescue-DAG restart): they are recorded as done without
        re-execution, and the static section is not re-emitted.
        ``attempt_base`` carries each job's prior attempt count so
        job-instance submit sequences keep increasing across restarts.
        """
        now = self.clock.now
        self.restart_count = restart_count
        if restart_count == 0:
            self.emitter.plan(self.aw, self.ew, now)
            self.emitter.static_section(self.aw, self.ew, now)
        self.emitter.xwf_start(now, restart_count=restart_count)
        for job in self.ew.jobs():
            state = _JobState(job, len(self.ew.parents(job.exec_job_id)))
            if attempt_base:
                state.attempts = attempt_base.get(job.exec_job_id, 0)
            self._states[job.exec_job_id] = state
        for job_id in precompleted or ():
            state = self._states[job_id]
            state.done = True
            state.succeeded = True
            self.report.succeeded += 1
        for job_id, state in self._states.items():
            if state.done:
                for child_id in self.ew.children(job_id):
                    self._states[child_id].pending_parents -= 1
        for job_id, state in self._states.items():
            if not state.done and state.pending_parents == 0:
                self._submit(state)

    def run(self) -> DAGManReport:
        start = self.clock.now
        self.start()
        self.clock.run()
        self._finish(start)
        return self.report

    def finalize(self, started_at: float) -> DAGManReport:
        """Close out after an externally-driven clock drained."""
        self._finish(started_at)
        return self.report

    # -- internals --------------------------------------------------------------
    def _submit(self, state: _JobState) -> None:
        state.attempts += 1
        seq = state.attempts
        self._in_flight += 1
        self._sched_counter += 1
        sched_id = f"{self._sched_counter}.0"
        job = state.job
        now = self.clock.now
        self.emitter.submit_start(job, seq, sched_id, now)
        self.emitter.submit_end(job, seq, now + _SUBMIT_OVERHEAD)
        site = self._choose_site(job)
        self._record_jobstate(job, seq, "SUBMIT", sched_id, site.name, now)
        delay = site.queue_delay(self.rng) + _SUBMIT_OVERHEAD
        self.clock.schedule(delay, lambda: self._try_start(state, seq, site))

    def _record_jobstate(self, job, seq, jstate, sched_id, site_name, ts):
        if self.raw_recorder is None:
            return
        from repro.pegasus.condor_log import JobstateEntry

        self.raw_recorder.on_jobstate(
            JobstateEntry(
                ts=ts,
                exec_job_id=job.exec_job_id,
                state=jstate,
                sched_id=sched_id,
                site=site_name,
                job_submit_seq=seq,
            )
        )

    def _choose_site(self, job: ExecutableJob) -> Site:
        if job.site is not None:
            return self.catalog[job.site]
        best = self.catalog.best_free_site()
        if best is not None:
            return best
        # every slot busy: queue on the site with the shortest backlog
        return min(self.catalog.sites(), key=lambda s: s.backlog)

    def _try_start(self, state: _JobState, seq: int, site: Site) -> None:
        if site.free_slots <= 0:
            site.enqueue(lambda: self._start(state, seq, site))
            return
        self._start(state, seq, site)

    def _start(self, state: _JobState, seq: int, site: Site) -> None:
        site.busy += 1
        job = state.job
        now = self.clock.now
        hostname = site.pick_host(self.rng)
        self.emitter.host_info(job, seq, site.name, hostname, now)
        self.emitter.main_start(job, seq, now)
        self._record_jobstate(job, seq, "EXECUTE", f"{seq}.0", site.name, now)
        failed_attempt = site.attempt_fails(self.rng)
        hang_extra = 0.0
        if self.faults is not None:
            # injected faults ride the organic failure path: a crash is a
            # failed attempt (retried like any site failure), a hang
            # stretches the attempt's simulated wall time
            decision = self.faults.attempt(job.exec_job_id, seq)
            if decision.crash:
                failed_attempt = True
            hang_extra = decision.hang_seconds
        # clustered jobs run their tasks serially within the instance
        inv_specs = []
        if job.tasks:
            for task in job.tasks:
                duration = float(
                    task.runtime_estimate
                    * site.speed_factor
                    * self.rng.lognormal(0.0, _RUNTIME_NOISE_SIGMA)
                )
                inv_specs.append((task.task_id, task.transformation,
                                  task.argv, duration))
        else:
            duration = float(
                job.runtime_seconds
                * site.speed_factor
                * self.rng.lognormal(0.0, _RUNTIME_NOISE_SIGMA)
            )
            inv_specs.append((None, job.executable, job.argv, duration))
        # if the attempt fails, it fails during a uniformly chosen invocation
        fail_at = (
            int(self.rng.integers(0, len(inv_specs))) if failed_attempt else -1
        )
        start_ts = now
        total = 0.0
        for inv_seq, (task_id, transformation, argv, duration) in enumerate(
            inv_specs, start=1
        ):
            exitcode = 1 if inv_seq - 1 == fail_at else 0
            self.emitter.invocation(
                job, seq, inv_seq, task_id, transformation,
                job.executable or transformation, argv,
                start_ts + total, duration, exitcode, site.name, hostname,
            )
            if self.raw_recorder is not None:
                from repro.pegasus.condor_log import KickstartRecord

                self.raw_recorder.on_kickstart(
                    KickstartRecord(
                        exec_job_id=job.exec_job_id,
                        job_submit_seq=seq,
                        inv_seq=inv_seq,
                        transformation=transformation,
                        executable=job.executable or transformation,
                        start=start_ts + total,
                        duration=duration,
                        exitcode=exitcode,
                        site=site.name,
                        hostname=hostname,
                        argv=argv,
                        task_id=task_id,
                        cpu_time=duration * 0.95,
                    )
                )
            total += duration
            if exitcode != 0:
                break  # remaining invocations never run
        exitcode = 1 if failed_attempt else 0
        total += hang_extra
        self.clock.schedule(
            total, lambda: self._complete(state, seq, site, exitcode, total)
        )

    def _complete(
        self, state: _JobState, seq: int, site: Site, exitcode: int, duration: float
    ) -> None:
        job = state.job
        now = self.clock.now
        status = SUCCESS if exitcode == 0 else FAILURE
        self.emitter.main_term(job, seq, status, now)
        self.emitter.main_end(
            job, seq, site.name, exitcode, duration, now,
            stderr_text="transient site failure" if exitcode else "",
        )
        self.emitter.post_script(
            job, seq, now, now + _POST_SCRIPT_SECONDS, exitcode
        )
        sched = f"{seq}.0"
        self._record_jobstate(job, seq, "JOB_TERMINATED", sched, site.name, now)
        self._record_jobstate(
            job, seq, "JOB_SUCCESS" if exitcode == 0 else "JOB_FAILURE",
            sched, site.name, now,
        )
        self._record_jobstate(
            job, seq, "POST_SCRIPT_STARTED", sched, site.name, now
        )
        self._record_jobstate(
            job, seq,
            "POST_SCRIPT_SUCCESS" if exitcode == 0 else "POST_SCRIPT_FAILURE",
            sched, site.name, now + _POST_SCRIPT_SECONDS,
        )
        site.busy -= 1
        if hasattr(site, "release"):
            site.release()
        self._in_flight -= 1
        self.clock.schedule(
            _POST_SCRIPT_SECONDS, lambda: self._post_done(state, seq, exitcode)
        )

    def _post_done(self, state: _JobState, seq: int, exitcode: int) -> None:
        job = state.job
        if exitcode == 0:
            state.done = True
            state.succeeded = True
            self.report.succeeded += 1
            for child_id in self.ew.children(job.exec_job_id):
                child = self._states[child_id]
                child.pending_parents -= 1
                if child.pending_parents == 0 and not child.done:
                    self._submit(child)
        elif state.attempts <= job.max_retries:
            self.report.retries += 1
            self._submit(state)
        else:
            state.done = True
            self.report.failed += 1

    def _finish(self, started_at: float) -> None:
        self.report.unready = sum(
            1 for s in self._states.values() if not s.done
        )
        self.report.wall_time = self.clock.now - started_at
        self.report.status = (
            SUCCESS
            if self.report.failed == 0 and self.report.unready == 0
            else FAILURE
        )
        self.emitter.xwf_end(
            self.clock.now, self.report.status,
            restart_count=getattr(self, "restart_count", 0),
        )


def run_pegasus_workflow(
    aw: AbstractWorkflow,
    sink: EventSink,
    catalog: Optional[SiteCatalog] = None,
    planner_config: Optional[PlannerConfig] = None,
    clock: Optional[SimClock] = None,
    seed: int = 0,
    faults=None,
) -> DAGManRun:
    """Plan and execute an abstract workflow; returns the finished run."""
    planner = Planner(catalog=catalog, config=planner_config)
    ew = planner.plan(aw)
    run = DAGManRun(
        aw, ew, sink, catalog=planner.catalog, clock=clock, seed=seed,
        faults=faults,
    )
    run.run()
    return run
