"""Workflow interchange formats: DAX XML and Condor DAGMan .dag files.

The abstract workflow enters Pegasus as a DAX document ("dax.file" in the
``stampede.wf.plan`` event) and the planner's output is a DAGMan .dag
file ("dag.file.name").  This module implements both:

* :func:`write_dax` / :func:`parse_dax` — a DAX 3.4-style XML subset:
  ``<adag>`` with ``<job>`` (id, namespace::name transformation,
  ``<argument>``, runtime profile) and ``<child><parent/></child>``
  dependencies;
* :func:`write_dag` — the Condor DAGMan description of an executable
  workflow (JOB / RETRY / PARENT..CHILD lines).
"""
from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Union

from repro.pegasus.abstract import AbstractTask, AbstractWorkflow
from repro.pegasus.executable import ExecutableWorkflow

__all__ = ["write_dax", "parse_dax", "dax_to_string", "write_dag",
           "dag_to_string", "RawDaxJob", "RawDaxEdge", "RawDax",
           "dax_structure"]

_DAX_NS = "http://pegasus.isi.edu/schema/DAX"


def dax_to_string(aw: AbstractWorkflow) -> str:
    """Serialize an abstract workflow as DAX XML."""
    adag = ET.Element(
        "adag",
        {
            "xmlns": _DAX_NS,
            "version": aw.version,
            "name": aw.label,
            "jobCount": str(len(aw)),
            "childCount": str(len({c for _p, c in aw.edges()})),
        },
    )
    for task in aw.tasks():
        namespace, _, name = task.transformation.rpartition("::")
        job = ET.SubElement(
            adag,
            "job",
            {"id": task.task_id, "name": name or task.transformation},
        )
        if namespace:
            job.set("namespace", namespace)
        if task.argv:
            arg = ET.SubElement(job, "argument")
            arg.text = task.argv
        profile = ET.SubElement(
            job, "profile", {"namespace": "pegasus", "key": "runtime"}
        )
        profile.text = f"{task.runtime_estimate:.6f}"
        for lfn in task.inputs:
            ET.SubElement(job, "uses", {"name": lfn, "link": "input"})
        for lfn in task.outputs:
            ET.SubElement(job, "uses", {"name": lfn, "link": "output"})
    # dependencies grouped per child, as real DAX does
    children: dict = {}
    for parent, child in aw.edges():
        children.setdefault(child, []).append(parent)
    for child, parents in children.items():
        node = ET.SubElement(adag, "child", {"ref": child})
        for parent in parents:
            ET.SubElement(node, "parent", {"ref": parent})
    ET.indent(adag)
    return ET.tostring(adag, encoding="unicode")


def write_dax(aw: AbstractWorkflow, path: Union[str, os.PathLike]) -> str:
    """Write the DAX file; returns the path as str."""
    text = '<?xml version="1.0" encoding="UTF-8"?>\n' + dax_to_string(aw)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    return str(path)


def parse_dax(source: Union[str, os.PathLike]) -> AbstractWorkflow:
    """Parse a DAX document (path or XML string) into an AbstractWorkflow."""
    text = source
    if isinstance(source, (str, os.PathLike)) and os.path.exists(str(source)):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    root = ET.fromstring(str(text))
    tag = root.tag.split("}")[-1]
    if tag != "adag":
        raise ValueError(f"not a DAX document: root element {root.tag!r}")
    ns = root.tag[: -len(tag)] if root.tag.startswith("{") else ""
    aw = AbstractWorkflow(
        root.attrib.get("name", "unnamed"),
        version=root.attrib.get("version", "3.4"),
    )
    for job in root.findall(f"{ns}job"):
        namespace = job.attrib.get("namespace", "")
        name = job.attrib["name"]
        transformation = f"{namespace}::{name}" if namespace else name
        arg = job.find(f"{ns}argument")
        runtime = 10.0
        for profile in job.findall(f"{ns}profile"):
            if (
                profile.attrib.get("namespace") == "pegasus"
                and profile.attrib.get("key") == "runtime"
                and profile.text
            ):
                runtime = float(profile.text)
        inputs, outputs = [], []
        for uses in job.findall(f"{ns}uses"):
            target = inputs if uses.attrib.get("link") == "input" else outputs
            target.append(uses.attrib["name"])
        aw.add_task(
            AbstractTask(
                job.attrib["id"],
                transformation=transformation,
                argv=(arg.text or "").strip() if arg is not None else "",
                runtime_estimate=runtime,
                inputs=inputs,
                outputs=outputs,
            )
        )
    for child in root.findall(f"{ns}child"):
        child_id = child.attrib["ref"]
        for parent in child.findall(f"{ns}parent"):
            aw.add_dependency(parent.attrib["ref"], child_id)
    return aw


@dataclass
class RawDaxJob:
    """One ``<job>`` element as written, before any validation."""

    job_id: str
    name: str = ""
    namespace: str = ""
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    line: int = 1


@dataclass
class RawDaxEdge:
    """One ``<parent ref=.../>`` under a ``<child ref=.../>``, as written."""

    parent: str
    child: str
    line: int = 1


@dataclass
class RawDax:
    """Uninterpreted DAX structure for analysis tools.

    :func:`parse_dax` builds an :class:`AbstractWorkflow`, which *enforces*
    well-formedness (unique ids, known refs, acyclicity) by raising on the
    first problem.  Analysis tools such as ``stampede-lint`` need the
    opposite: every job and edge exactly as the document declares them, with
    line anchors, so all problems can be reported at once.
    """

    name: str
    jobs: List[RawDaxJob] = field(default_factory=list)
    edges: List[RawDaxEdge] = field(default_factory=list)


def _token_line(text: str, token: str, occurrence: int = 0) -> int:
    """Line number (1-based) of the nth occurrence of ``token``, or 1."""
    pos = -1
    for _ in range(occurrence + 1):
        pos = text.find(token, pos + 1)
        if pos < 0:
            return 1
    return text.count("\n", 0, pos) + 1


def dax_structure(source: Union[str, os.PathLike]) -> RawDax:
    """Extract the raw job/edge structure of a DAX document (path or text).

    Raises ``xml.etree.ElementTree.ParseError`` on malformed XML and
    ``ValueError`` when the root element is not ``<adag>``; everything else
    — duplicate ids, dangling refs, cycles — is left in the returned
    structure for the caller to judge.
    """
    text = source
    if isinstance(source, (str, os.PathLike)) and os.path.exists(str(source)):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    text = str(text)
    root = ET.fromstring(text)
    tag = root.tag.split("}")[-1]
    if tag != "adag":
        raise ValueError(f"not a DAX document: root element {root.tag!r}")
    ns = root.tag[: -len(tag)] if root.tag.startswith("{") else ""
    raw = RawDax(root.attrib.get("name", "unnamed"))
    job_seen: dict = {}
    for job in root.findall(f"{ns}job"):
        job_id = job.attrib.get("id", "")
        occurrence = job_seen.get(job_id, 0)
        job_seen[job_id] = occurrence + 1
        entry = RawDaxJob(
            job_id=job_id,
            name=job.attrib.get("name", ""),
            namespace=job.attrib.get("namespace", ""),
            line=_token_line(text, f'id="{job_id}"', occurrence),
        )
        for uses in job.findall(f"{ns}uses"):
            target = (
                entry.inputs
                if uses.attrib.get("link") == "input"
                else entry.outputs
            )
            target.append(uses.attrib.get("name", ""))
        raw.jobs.append(entry)
    ref_seen: dict = {}
    for child in root.findall(f"{ns}child"):
        child_id = child.attrib.get("ref", "")
        child_occ = ref_seen.get(child_id, 0)
        ref_seen[child_id] = child_occ + 1
        line = _token_line(text, f'ref="{child_id}"', child_occ)
        for parent in child.findall(f"{ns}parent"):
            raw.edges.append(
                RawDaxEdge(parent.attrib.get("ref", ""), child_id, line)
            )
            # parent refs share the token namespace with child refs
            ref_seen[parent.attrib.get("ref", "")] = (
                ref_seen.get(parent.attrib.get("ref", ""), 0) + 1
            )
    return raw


def dag_to_string(ew: ExecutableWorkflow) -> str:
    """Render an executable workflow as a Condor DAGMan .dag description."""
    lines: List[str] = [f"# {ew.dag_name} — generated by repro.pegasus"]
    for job in ew.jobs():
        lines.append(f"JOB {job.exec_job_id} {job.exec_job_id}.sub")
        if job.max_retries:
            lines.append(f"RETRY {job.exec_job_id} {job.max_retries}")
    for parent, child in ew.edges():
        lines.append(f"PARENT {parent} CHILD {child}")
    return "\n".join(lines)


def write_dag(ew: ExecutableWorkflow, path: Union[str, os.PathLike]) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dag_to_string(ew) + "\n")
    return str(path)
