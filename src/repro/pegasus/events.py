"""Stampede event emission for the Pegasus-style engine.

The Pegasus log normalizer: everything DAGMan does is rendered as events
conforming to the shared YANG schema — the same stream shape the Triana
integration produces, which is the point of the paper.
"""
from __future__ import annotations

from typing import Optional

from repro.bus.client import EventSink
from repro.netlogger.events import NLEvent
from repro.pegasus.abstract import AbstractWorkflow
from repro.pegasus.executable import ExecutableJob, ExecutableWorkflow
from repro.schema.stampede import Events, FAILURE, SUCCESS

__all__ = ["PegasusEventEmitter"]


class PegasusEventEmitter:
    """Emits schema-conformant events for one workflow run."""

    def __init__(
        self,
        sink: EventSink,
        xwf_id: str,
        root_xwf_id: Optional[str] = None,
        parent_xwf_id: Optional[str] = None,
        submit_hostname: str = "submit.example.org",
        submit_dir: str = "/scratch/runs",
        user: str = "pegasus",
        planner_version: str = "pegasus-4.0-stampede",
    ):
        self.sink = sink
        self.xwf_id = xwf_id
        self.root_xwf_id = root_xwf_id or xwf_id
        self.parent_xwf_id = parent_xwf_id
        self.submit_hostname = submit_hostname
        self.submit_dir = submit_dir
        self.user = user
        self.planner_version = planner_version
        self.events_emitted = 0

    def _emit(self, name: str, ts: float, **attrs) -> None:
        attrs["xwf.id"] = self.xwf_id
        self.sink.emit(NLEvent(name, ts, attrs))
        self.events_emitted += 1

    # -- static section ------------------------------------------------------
    def plan(self, aw: AbstractWorkflow, ew: ExecutableWorkflow, ts: float) -> None:
        attrs = {
            "submit.hostname": self.submit_hostname,
            "dax.label": aw.label,
            "dax.version": aw.version,
            "dax.file": f"{aw.label}.dax",
            "dag.file.name": ew.dag_name,
            "planner.version": self.planner_version,
            "user": self.user,
            "submit_dir": self.submit_dir,
            "root.xwf.id": self.root_xwf_id,
        }
        if self.parent_xwf_id:
            attrs["parent.xwf.id"] = self.parent_xwf_id
        self._emit(Events.WF_PLAN, ts, **attrs)

    def static_section(
        self, aw: AbstractWorkflow, ew: ExecutableWorkflow, ts: float
    ) -> None:
        """task/job/edge/mapping events — all before any execution event."""
        self._emit(Events.STATIC_START, ts)
        for task in aw.tasks():
            self._emit(
                Events.TASK_INFO,
                ts,
                **{
                    "task.id": task.task_id,
                    "type_desc": "compute",
                    "transformation": task.transformation,
                    "argv": task.argv,
                },
            )
        for parent, child in aw.edges():
            self._emit(
                Events.TASK_EDGE, ts,
                **{"parent.task.id": parent, "child.task.id": child},
            )
        for job in ew.jobs():
            self._emit(
                Events.JOB_INFO,
                ts,
                **{
                    "job.id": job.exec_job_id,
                    "type_desc": str(job.job_type),
                    "clustered": int(job.clustered),
                    "max_retries": job.max_retries,
                    "executable": job.executable,
                    "argv": job.argv,
                    "task_count": job.task_count,
                },
            )
        for parent, child in ew.edges():
            self._emit(
                Events.JOB_EDGE, ts,
                **{"parent.job.id": parent, "child.job.id": child},
            )
        for task_id, job_id in ew.task_to_job_map().items():
            self._emit(
                Events.MAP_TASK_JOB, ts, **{"task.id": task_id, "job.id": job_id}
            )
        self._emit(Events.STATIC_END, ts)

    # -- run lifecycle -----------------------------------------------------------
    def xwf_start(self, ts: float, restart_count: int = 0) -> None:
        self._emit(Events.XWF_START, ts, restart_count=restart_count)

    def xwf_end(self, ts: float, status: int, restart_count: int = 0) -> None:
        self._emit(Events.XWF_END, ts, restart_count=restart_count, status=status)

    def subwf_map(self, subwf_id: str, job_id: str, submit_seq: int, ts: float) -> None:
        self._emit(
            Events.MAP_SUBWF_JOB, ts,
            **{"subwf.id": subwf_id, "job.id": job_id, "job_inst.id": submit_seq},
        )

    # -- job instance lifecycle ----------------------------------------------------
    def submit_start(self, job: ExecutableJob, seq: int, sched_id: str,
                     ts: float) -> None:
        self._emit(
            Events.JOB_INST_SUBMIT_START, ts,
            **{"job.id": job.exec_job_id, "job_inst.id": seq, "sched.id": sched_id},
        )

    def submit_end(self, job: ExecutableJob, seq: int, ts: float,
                   status: int = SUCCESS) -> None:
        self._emit(
            Events.JOB_INST_SUBMIT_END, ts,
            **{"job.id": job.exec_job_id, "job_inst.id": seq, "status": status},
        )

    def host_info(self, job: ExecutableJob, seq: int, site: str, hostname: str,
                  ts: float) -> None:
        self._emit(
            Events.JOB_INST_HOST_INFO, ts,
            **{
                "job.id": job.exec_job_id,
                "job_inst.id": seq,
                "site": site,
                "hostname": hostname,
            },
        )

    def main_start(self, job: ExecutableJob, seq: int, ts: float) -> None:
        self._emit(
            Events.JOB_INST_MAIN_START, ts,
            **{
                "job.id": job.exec_job_id,
                "job_inst.id": seq,
                "stdout.file": f"{job.exec_job_id}.out.{seq:03d}",
                "stderr.file": f"{job.exec_job_id}.err.{seq:03d}",
            },
        )

    def main_term(self, job: ExecutableJob, seq: int, status: int, ts: float) -> None:
        self._emit(
            Events.JOB_INST_MAIN_TERM, ts,
            **{"job.id": job.exec_job_id, "job_inst.id": seq, "status": status},
        )

    def main_end(
        self,
        job: ExecutableJob,
        seq: int,
        site: str,
        exitcode: int,
        duration: float,
        ts: float,
        stderr_text: str = "",
    ) -> None:
        attrs = {
            "job.id": job.exec_job_id,
            "job_inst.id": seq,
            "site": site,
            "user": self.user,
            "status": SUCCESS if exitcode == 0 else FAILURE,
            "exitcode": exitcode,
            "local.dur": round(duration, 6),
            "stdout.file": f"{job.exec_job_id}.out.{seq:03d}",
            "stderr.file": f"{job.exec_job_id}.err.{seq:03d}",
            "multiplier_factor": 1,
        }
        if stderr_text:
            attrs["stderr.text"] = stderr_text
        self._emit(Events.JOB_INST_MAIN_END, ts, **attrs)

    def post_script(self, job: ExecutableJob, seq: int, start_ts: float,
                    end_ts: float, exitcode: int) -> None:
        base = {"job.id": job.exec_job_id, "job_inst.id": seq}
        self._emit(Events.JOB_INST_POST_START, start_ts, **base)
        status = SUCCESS if exitcode == 0 else FAILURE
        self._emit(Events.JOB_INST_POST_TERM, end_ts, **base, status=status)
        self._emit(Events.JOB_INST_POST_END, end_ts, **base, status=status,
                   exitcode=exitcode)

    def invocation(
        self,
        job: ExecutableJob,
        seq: int,
        inv_seq: int,
        task_id: Optional[str],
        transformation: str,
        executable: str,
        argv: str,
        start_ts: float,
        duration: float,
        exitcode: int,
        site: str,
        hostname: str,
    ) -> None:
        base = {"job.id": job.exec_job_id, "job_inst.id": seq, "inv.id": inv_seq}
        if task_id is not None:
            base["task.id"] = task_id
        self._emit(Events.INV_START, start_ts, **base)
        self._emit(
            Events.INV_END,
            start_ts + duration,
            **base,
            **{
                "start_time": round(start_ts, 6),
                "dur": round(duration, 6),
                "remote_cpu_time": round(duration * 0.95, 6),
                "exitcode": exitcode,
                "transformation": transformation,
                "executable": executable,
                "argv": argv,
                "status": SUCCESS if exitcode == 0 else FAILURE,
                "site": site,
                "hostname": hostname,
            },
        )
