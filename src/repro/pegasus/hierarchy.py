"""Hierarchical Pegasus workflows: sub-DAX jobs and rescue-DAG restarts.

Two capabilities of the real system the flat DAGMan runner doesn't cover:

* **Sub-workflow (DAX) jobs** — a job in the executable workflow whose
  payload is another abstract workflow, planned and executed as a child
  run with its own xwf.id, linked to the parent through
  ``stampede.xwf.map.subwf_job`` and ``parent.xwf.id`` (paper §IV-A
  "Sub-workflow: a workflow that is contained in another workflow").
* **Restarts** — re-running a failed workflow "rescue-DAG" style: jobs
  that already succeeded are not re-executed, and the new attempt's
  events carry an incremented ``restart_count`` (the attribute the
  paper's own example event shows).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.bus.client import EventSink
from repro.pegasus.abstract import AbstractWorkflow
from repro.pegasus.dagman import DAGManReport, DAGManRun
from repro.pegasus.executable import ExecutableJob, ExecutableWorkflow, JobType
from repro.pegasus.planner import Planner, PlannerConfig
from repro.pegasus.sites import SiteCatalog
from repro.schema.stampede import FAILURE, SUCCESS
from repro.util.simclock import SimClock
from repro.util.uuidgen import UUIDFactory, derive_uuid

__all__ = ["SubDaxJob", "HierarchicalRun", "run_hierarchical_workflow",
           "run_with_restarts"]


@dataclass
class SubDaxJob:
    """Declaration of a sub-workflow job inside a parent AW plan."""

    job_id: str
    workflow: AbstractWorkflow
    depends_on: List[str] = field(default_factory=list)  # parent AW task ids
    feeds: List[str] = field(default_factory=list)  # parent AW task ids


class HierarchicalRun:
    """Plans and executes a parent workflow with sub-DAX jobs.

    The parent's compute tasks and the sub-DAX jobs share one executable
    workflow; each sub-DAX job, when it becomes runnable, plans its child
    AW and runs it as a nested DAGManRun on the same clock.  The parent
    job only succeeds when the child run does.
    """

    def __init__(
        self,
        aw: AbstractWorkflow,
        sub_jobs: List[SubDaxJob],
        sink: EventSink,
        catalog: Optional[SiteCatalog] = None,
        planner_config: Optional[PlannerConfig] = None,
        clock: Optional[SimClock] = None,
        seed: int = 0,
        child_catalog: Optional[SiteCatalog] = None,
        child_planner_config: Optional[PlannerConfig] = None,
    ):
        self.aw = aw
        self.sub_jobs = {s.job_id: s for s in sub_jobs}
        self.sink = sink
        self.clock = clock if clock is not None else SimClock()
        self.seed = seed
        planner = Planner(catalog=catalog, config=planner_config)
        self.catalog = planner.catalog
        self.child_catalog = child_catalog or planner.catalog
        self.child_planner_config = child_planner_config or planner.config
        self.ew = planner.plan(aw)
        self._wire_sub_jobs()
        uuids = UUIDFactory(seed ^ 0x5B)
        self.xwf_id = uuids.new()
        self.parent_run = DAGManRun(
            aw, self.ew, sink, catalog=self.catalog, clock=self.clock,
            seed=seed, xwf_id=self.xwf_id, root_xwf_id=self.xwf_id,
        )
        self.child_runs: Dict[str, DAGManRun] = {}
        self._install_sub_dax_hooks()

    def _wire_sub_jobs(self) -> None:
        task_to_job = self.ew.task_to_job_map()
        for sub in self.sub_jobs.values():
            job = ExecutableJob(
                sub.job_id,
                JobType.DAX,
                executable="pegasus-plan",
                argv=f"--dax {sub.workflow.label}.dax",
                runtime_seconds=1.0,  # planning overhead; child adds the rest
                max_retries=0,
            )
            self.ew.add_job(job)
            for parent_task in sub.depends_on:
                self.ew.add_dependency(task_to_job[parent_task], sub.job_id)
            for child_task in sub.feeds:
                self.ew.add_dependency(sub.job_id, task_to_job[child_task])

    def _install_sub_dax_hooks(self) -> None:
        """Replace the parent's completion handling for DAX jobs: instead
        of finishing after their fixed runtime, they spawn the child run
        and complete when it terminates."""
        original_start = self.parent_run._start

        def start_with_dax(state, seq, site):
            job = state.job
            if job.job_type is not JobType.DAX:
                original_start(state, seq, site)
                return
            # occupy no site slot: the child run competes for slots itself
            now = self.clock.now
            hostname = "submit-host"
            self.parent_run.emitter.host_info(job, seq, "local", hostname, now)
            self.parent_run.emitter.main_start(job, seq, now)
            sub = self.sub_jobs[job.exec_job_id]
            child_xwf = derive_uuid(self.xwf_id, job.exec_job_id)
            self.parent_run.emitter.subwf_map(child_xwf, job.exec_job_id,
                                              seq, now)
            child = DAGManRun(
                sub.workflow,
                Planner(self.child_catalog,
                        self.child_planner_config).plan(sub.workflow),
                self.sink,
                catalog=self.child_catalog,
                clock=self.clock,
                seed=self.seed ^ hash(job.exec_job_id) & 0xFFFF,
                xwf_id=child_xwf,
                parent_xwf_id=self.xwf_id,
                root_xwf_id=self.xwf_id,
            )
            self.child_runs[job.exec_job_id] = child
            started_at = now

            # poll for child completion via the clock: when the child has
            # no jobs in flight and all done, close out the parent job
            def check_done():
                if child._in_flight > 0 or not all(
                    s.done or s.pending_parents > 0
                    for s in child._states.values()
                ):
                    self.clock.schedule(1.0, check_done)
                    return
                report = child.finalize(started_at)
                exitcode = 0 if report.ok else 1
                duration = self.clock.now - started_at
                self.parent_run.emitter.invocation(
                    job, seq, 1, None, "pegasus-plan", "pegasus-plan",
                    job.argv, started_at, duration, exitcode, "local",
                    hostname,
                )
                self.parent_run._complete(state, seq, _NullSite(), exitcode,
                                          duration)

            child.start()
            self.clock.schedule(1.0, check_done)

        self.parent_run._start = start_with_dax

    def run(self) -> DAGManReport:
        start = self.clock.now
        self.parent_run.start()
        self.clock.run()
        return self.parent_run.finalize(start)

    @property
    def report(self) -> DAGManReport:
        return self.parent_run.report


class _NullSite:
    """Slot accounting stand-in for DAX jobs (they hold no site slot)."""

    name = "local"
    busy = 1  # decremented by _complete back to 0

    def __init__(self):
        self.busy = 1

    @property
    def free_slots(self) -> int:
        return 0


def run_hierarchical_workflow(
    aw: AbstractWorkflow,
    sub_jobs: List[SubDaxJob],
    sink: EventSink,
    catalog: Optional[SiteCatalog] = None,
    planner_config: Optional[PlannerConfig] = None,
    seed: int = 0,
    child_catalog: Optional[SiteCatalog] = None,
    child_planner_config: Optional[PlannerConfig] = None,
) -> HierarchicalRun:
    """Plan + execute a parent workflow with sub-DAX jobs; returns the run."""
    run = HierarchicalRun(
        aw, sub_jobs, sink, catalog=catalog, planner_config=planner_config,
        seed=seed, child_catalog=child_catalog,
        child_planner_config=child_planner_config,
    )
    run.run()
    return run


def run_with_restarts(
    aw: AbstractWorkflow,
    sink: EventSink,
    catalog: Optional[SiteCatalog] = None,
    planner_config: Optional[PlannerConfig] = None,
    seed: int = 0,
    max_restarts: int = 2,
) -> List[DAGManRun]:
    """Run a workflow, restarting rescue-DAG style until success.

    Each restart reuses the same xwf.id with an incremented restart_count
    (the Stampede model: "execution of a workflow is called a run...
    restart_count: number of times workflow was restarted").  Jobs that
    succeeded in a previous attempt are pre-marked done and not rerun.
    """
    planner = Planner(catalog=catalog, config=planner_config)
    ew = planner.plan(aw)
    uuids = UUIDFactory(seed ^ 0x7E5C)
    xwf_id = uuids.new()
    clock = SimClock()
    succeeded: Set[str] = set()
    attempt_base: Dict[str, int] = {}
    runs: List[DAGManRun] = []
    for attempt in range(max_restarts + 1):
        run = DAGManRun(
            aw, ew, sink, catalog=planner.catalog, clock=clock,
            seed=seed + attempt * 7919, xwf_id=xwf_id,
        )
        started = clock.now
        run.start(
            precompleted=set(succeeded),
            restart_count=attempt,
            attempt_base=dict(attempt_base),
        )
        clock.run()
        run.finalize(started)
        runs.append(run)
        for state in run._states.values():
            if state.succeeded:
                succeeded.add(state.job.exec_job_id)
            attempt_base[state.job.exec_job_id] = max(
                attempt_base.get(state.job.exec_job_id, 0), state.attempts
            )
        if run.report.ok:
            break
    return runs
