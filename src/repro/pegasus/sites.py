"""Execution sites: the Condor-pool model behind the DAGMan executor.

Each site is a cluster with a bounded number of slots, a queue-delay
distribution (the "remote queue" delays §VII discusses), a relative speed,
and an optional transient-failure probability for fault injection.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

__all__ = ["Site", "SiteCatalog"]


@dataclass
class Site:
    """One execution site of the catalog.

    The site owns its slot-wait queue so that several concurrently
    executing runs (e.g. sub-DAX children sharing the catalog) wake each
    other's queued jobs when slots free up.
    """

    name: str
    slots: int = 8
    hosts_per_site: int = 4
    speed_factor: float = 1.0  # runtime multiplier (>1 = slower)
    mean_queue_delay: float = 5.0  # exponential queue-wait mean, seconds
    failure_rate: float = 0.0  # per-attempt transient failure probability
    busy: int = 0
    waiting: Deque[Callable[[], None]] = field(default_factory=deque,
                                               repr=False, compare=False)

    def __post_init__(self):
        if self.slots < 1:
            raise ValueError(f"site {self.name!r} needs at least one slot")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")

    @property
    def free_slots(self) -> int:
        return self.slots - self.busy

    def enqueue(self, start: Callable[[], None]) -> None:
        """Park a job start until a slot frees."""
        self.waiting.append(start)

    def release(self) -> None:
        """Wake queued starts while slots are free (each start occupies
        its slot synchronously, so this pops at most free_slots entries)."""
        while self.waiting and self.free_slots > 0:
            self.waiting.popleft()()

    @property
    def backlog(self) -> int:
        return len(self.waiting)

    def queue_delay(self, rng: np.random.Generator) -> float:
        """Sample the remote-queue wait for one submission."""
        if self.mean_queue_delay <= 0:
            return 0.0
        return float(rng.exponential(self.mean_queue_delay))

    def pick_host(self, rng: np.random.Generator) -> str:
        index = int(rng.integers(0, self.hosts_per_site))
        return f"{self.name}-node{index}"

    def attempt_fails(self, rng: np.random.Generator) -> bool:
        return self.failure_rate > 0 and rng.random() < self.failure_rate


class SiteCatalog:
    """The set of sites a run may execute on."""

    def __init__(self, sites: Optional[List[Site]] = None):
        self._sites: Dict[str, Site] = {}
        for site in sites or []:
            self.add(site)

    @classmethod
    def default(cls) -> "SiteCatalog":
        """A small two-site grid, the shape of the paper's test setups."""
        return cls(
            [
                Site("local", slots=4, mean_queue_delay=0.1, hosts_per_site=1),
                Site("condor_pool", slots=32, mean_queue_delay=8.0,
                     hosts_per_site=8),
            ]
        )

    def add(self, site: Site) -> None:
        if site.name in self._sites:
            raise ValueError(f"duplicate site {site.name!r}")
        self._sites[site.name] = site

    def __getitem__(self, name: str) -> Site:
        return self._sites[name]

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    def sites(self) -> List[Site]:
        return list(self._sites.values())

    def names(self) -> List[str]:
        return list(self._sites)

    def total_slots(self) -> int:
        return sum(s.slots for s in self._sites.values())

    def best_free_site(self) -> Optional[Site]:
        """Site with the most free slots (simple matchmaking)."""
        candidates = [s for s in self._sites.values() if s.free_slots > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda s: (s.free_slots, -s.speed_factor))
