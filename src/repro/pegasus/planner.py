"""The Pegasus planner: maps an abstract workflow onto resources.

Implements the planning behaviours the paper contrasts with Triana:

* **horizontal clustering** — tasks at the same DAG level sharing a
  transformation are merged into clustered jobs ("multiple tasks may be
  clustered into a larger executable job during the planning stage"),
  making the AW-task → EW-job mapping many-to-one;
* **auxiliary jobs** — create-dir, stage-in, stage-out, registration and
  cleanup jobs that exist only in the EW ("jobs added by the workflow
  system to manage the workflow that were not present in the AW").
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.pegasus.abstract import AbstractWorkflow
from repro.pegasus.executable import ExecutableJob, ExecutableWorkflow, JobType
from repro.pegasus.sites import SiteCatalog

__all__ = ["PlannerConfig", "Planner"]


@dataclass
class PlannerConfig:
    """Planning knobs."""

    cluster_size: int = 1  # 1 = no clustering
    max_retries: int = 3
    add_create_dir: bool = True
    add_stage_in: bool = True
    add_stage_out: bool = True
    add_registration: bool = False
    add_cleanup: bool = False
    stage_in_seconds: float = 4.0
    stage_out_seconds: float = 4.0
    create_dir_seconds: float = 1.0
    registration_seconds: float = 2.0
    cleanup_seconds: float = 1.0

    def __post_init__(self):
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")


class Planner:
    """AW + site catalog → EW."""

    def __init__(self, catalog: Optional[SiteCatalog] = None,
                 config: Optional[PlannerConfig] = None):
        self.catalog = catalog or SiteCatalog.default()
        self.config = config or PlannerConfig()

    def plan(self, aw: AbstractWorkflow) -> ExecutableWorkflow:
        """Produce the executable workflow for one abstract workflow."""
        config = self.config
        ew = ExecutableWorkflow(f"{aw.label}-0.dag")

        # 1. cluster compute tasks: group by (level, transformation)
        levels = aw.levels()
        groups: Dict[tuple, List[str]] = {}
        for task_id in aw.topological_order():
            task = aw.task(task_id)
            groups.setdefault((levels[task_id], task.transformation), []).append(
                task_id
            )
        task_to_job: Dict[str, str] = {}
        cluster_index = 0
        for (level, transformation), task_ids in groups.items():
            for start in range(0, len(task_ids), config.cluster_size):
                chunk = task_ids[start : start + config.cluster_size]
                if len(chunk) == 1:
                    job_id = chunk[0]
                else:
                    job_id = f"merge_{transformation}_{cluster_index}"
                    cluster_index += 1
                job = ExecutableJob(
                    exec_job_id=job_id,
                    job_type=JobType.COMPUTE,
                    tasks=[aw.task(t) for t in chunk],
                    max_retries=config.max_retries,
                    executable=transformation,
                    argv=" ; ".join(aw.task(t).argv for t in chunk).strip(" ;"),
                )
                ew.add_job(job)
                for t in chunk:
                    task_to_job[t] = job_id

        # 2. compute-job dependencies induced by task edges
        for parent_task, child_task in aw.edges():
            pj, cj = task_to_job[parent_task], task_to_job[child_task]
            if pj != cj:
                ew.add_dependency(pj, cj)

        compute_roots = [j for j in ew.roots() if ew.job(j).is_compute]
        compute_leaves = [
            j.exec_job_id
            for j in ew.compute_jobs()
            if not any(ew.job(c).is_compute for c in ew.children(j.exec_job_id))
        ]

        # 3. auxiliary scaffolding
        first_aux: Optional[str] = None
        if config.add_create_dir:
            create = ew.add_job(
                ExecutableJob(
                    "create_dir_0",
                    JobType.CREATE_DIR,
                    executable="pegasus-create-dir",
                    runtime_seconds=config.create_dir_seconds,
                    max_retries=config.max_retries,
                )
            )
            first_aux = create.exec_job_id
        if config.add_stage_in:
            stage_in = ew.add_job(
                ExecutableJob(
                    "stage_in_0",
                    JobType.STAGE_IN,
                    executable="pegasus-transfer",
                    runtime_seconds=config.stage_in_seconds,
                    max_retries=config.max_retries,
                )
            )
            if first_aux:
                ew.add_dependency(first_aux, stage_in.exec_job_id)
            for root in compute_roots:
                ew.add_dependency(stage_in.exec_job_id, root)
        elif first_aux:
            for root in compute_roots:
                ew.add_dependency(first_aux, root)

        tail: Optional[str] = None
        if config.add_stage_out:
            stage_out = ew.add_job(
                ExecutableJob(
                    "stage_out_0",
                    JobType.STAGE_OUT,
                    executable="pegasus-transfer",
                    runtime_seconds=config.stage_out_seconds,
                    max_retries=config.max_retries,
                )
            )
            for leaf in compute_leaves:
                ew.add_dependency(leaf, stage_out.exec_job_id)
            tail = stage_out.exec_job_id
        if config.add_registration:
            register = ew.add_job(
                ExecutableJob(
                    "register_0",
                    JobType.REGISTRATION,
                    executable="pegasus-rc-client",
                    runtime_seconds=config.registration_seconds,
                    max_retries=config.max_retries,
                )
            )
            ew.add_dependency(tail or compute_leaves[0], register.exec_job_id)
            tail = register.exec_job_id
        if config.add_cleanup:
            cleanup = ew.add_job(
                ExecutableJob(
                    "cleanup_0",
                    JobType.CLEANUP,
                    executable="pegasus-cleanup",
                    runtime_seconds=config.cleanup_seconds,
                    max_retries=config.max_retries,
                )
            )
            ew.add_dependency(tail or compute_leaves[0], cleanup.exec_job_id)

        assert ew.is_dag(), "planner produced a cyclic executable workflow"
        return ew
