"""Abstract workflows (the Pegasus DAX): tasks + dependencies.

The AW is "the input graph of tasks and dependencies, independent of a
given run on specific resources" (paper §IV-A) and must be a DAG.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.graph import CycleError, DiGraph

__all__ = ["AbstractTask", "AbstractWorkflow"]


@dataclass
class AbstractTask:
    """One computation in the abstract workflow."""

    task_id: str
    transformation: str
    argv: str = ""
    runtime_estimate: float = 10.0  # seconds on a reference core
    inputs: List[str] = field(default_factory=list)  # logical file names
    outputs: List[str] = field(default_factory=list)


class AbstractWorkflow:
    """A DAX: named DAG of abstract tasks."""

    def __init__(self, label: str, version: str = "3.4"):
        self.label = label
        self.version = version
        self._tasks: Dict[str, AbstractTask] = {}
        self._graph = DiGraph()

    # -- construction -----------------------------------------------------
    def add_task(self, task: AbstractTask) -> AbstractTask:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self._tasks[task.task_id] = task
        self._graph.add_node(task.task_id)
        return task

    def add_dependency(self, parent_id: str, child_id: str) -> None:
        for tid in (parent_id, child_id):
            if tid not in self._tasks:
                raise KeyError(f"unknown task {tid!r}")
        self._graph.add_edge(parent_id, child_id)
        if not self._graph.is_dag():
            raise CycleError(self._graph.find_cycle())

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> AbstractTask:
        return self._tasks[task_id]

    def tasks(self) -> List[AbstractTask]:
        return list(self._tasks.values())

    def edges(self) -> List[Tuple[str, str]]:
        return self._graph.edges()

    def parents(self, task_id: str) -> List[str]:
        return self._graph.predecessors(task_id)

    def children(self, task_id: str) -> List[str]:
        return self._graph.successors(task_id)

    def roots(self) -> List[str]:
        return self._graph.roots()

    def leaves(self) -> List[str]:
        return self._graph.leaves()

    def levels(self) -> Dict[str, int]:
        return self._graph.levels()

    def topological_order(self) -> List[str]:
        return self._graph.topological_order()

    def critical_path_seconds(self) -> float:
        return self._graph.critical_path_length(
            lambda tid: self._tasks[tid].runtime_estimate
        )

    def critical_path(self, weight) -> float:
        """Critical-path length under a caller-supplied task-id weight."""
        return self._graph.critical_path_length(weight)

    def __repr__(self) -> str:
        return (
            f"<AbstractWorkflow {self.label!r}: {len(self)} tasks, "
            f"{len(self.edges())} edges>"
        )
