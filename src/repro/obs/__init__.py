"""repro.obs: self-monitoring for the monitoring pipeline.

The paper's system watches workflows; this package watches the system —
metrics primitives (:mod:`repro.obs.metrics`), trace spans and pipeline
latency stamps (:mod:`repro.obs.spans`), exporters for Prometheus
scraping and BP self-logging (:mod:`repro.obs.export`), and collector
binders for the bus/loader/fault layers (:mod:`repro.obs.instrument`).
"""
from repro.obs.export import (
    OBS_PREFIX,
    PROMETHEUS_CONTENT_TYPE,
    BPSelfLogger,
    MetricsServer,
    ObsEvents,
    render_prometheus,
)
from repro.obs.instrument import bind_broker, bind_faults, bind_loader
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.spans import (
    HEADER_PUB_TS,
    HEADER_TRACE,
    PipelineClock,
    Span,
    Tracer,
    new_trace_id,
    stamp_headers,
)

__all__ = [
    "OBS_PREFIX",
    "PROMETHEUS_CONTENT_TYPE",
    "BPSelfLogger",
    "MetricsServer",
    "ObsEvents",
    "render_prometheus",
    "bind_broker",
    "bind_faults",
    "bind_loader",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "HEADER_PUB_TS",
    "HEADER_TRACE",
    "PipelineClock",
    "Span",
    "Tracer",
    "new_trace_id",
    "stamp_headers",
]
