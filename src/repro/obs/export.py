"""Exporters for the self-monitoring registry.

Two ways out, matching the two audiences the ROADMAP names:

* **Prometheus text exposition** (:func:`render_prometheus`,
  :class:`MetricsServer`) — for scrapers and dashboards.  The format is
  the v0.0.4 text format: ``# HELP``/``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram samples, ``_sum``/``_count``.
* **BP self-logging** (:class:`BPSelfLogger`) — the system monitors
  *itself* with its own event fabric: every metric becomes a
  ``stampede.obs.*`` NetLogger event rendered through the strict BP
  formatter, so the monitor's telemetry round-trips through
  ``parse_bp_line(strict=True)`` → ``nl_load`` → the archive and is
  queryable like any workflow's events.
"""
from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, List, Optional, Tuple, Union

from repro.netlogger.events import NLEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Tracer

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "OBS_PREFIX",
    "ObsEvents",
    "render_prometheus",
    "MetricsServer",
    "BPSelfLogger",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: routing-key prefix of the monitor's own telemetry events
OBS_PREFIX = "stampede.obs"


class ObsEvents:
    """Canonical self-monitoring event names (the ``stampede.obs.*`` family)."""

    COUNTER = "stampede.obs.counter"
    GAUGE = "stampede.obs.gauge"
    HISTOGRAM = "stampede.obs.histogram"
    SPAN = "stampede.obs.span"

    @classmethod
    def all(cls) -> List[str]:
        return [cls.COUNTER, cls.GAUGE, cls.HISTOGRAM, cls.SPAN]


# ---------------------------------------------------------------- prometheus --
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels, extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + inner + "}"


def _num(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, run_collectors: bool = True) -> str:
    """Render every instrument in the v0.0.4 text exposition format."""
    lines: List[str] = []
    seen_header = set()
    for metric in registry.collect(run_collectors=run_collectors):
        if metric.name not in seen_header:
            seen_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative_buckets():
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labels_text(metric.labels, ('le', _num(bound)))}"
                    f" {cumulative}"
                )
            labels = _labels_text(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {_num(metric.sum)}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
        elif isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_labels_text(metric.labels)} {_num(metric.value)}"
            )
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected by MetricsServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        try:
            body = render_prometheus(self.registry).encode("utf-8")
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, str(exc))
            return
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence request logging
        pass


class MetricsServer:
    """Standalone ``/metrics`` endpoint over a registry.

    Backs ``nl-load --metrics-port`` (and anything else that wants a
    scrape target without the full dashboard).  ``port=0`` binds an
    ephemeral port; read :attr:`url` for the resolved address.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        handler = type("BoundMetricsHandler", (_MetricsHandler,), {"registry": registry})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until :meth:`stop` is called (or ``timeout`` elapses);
        the linger hook for CLI runs that must stay scrapeable."""
        self._stop.wait(timeout)

    def stop(self) -> None:
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ------------------------------------------------------------- BP self-log --
class BPSelfLogger:
    """Emit the registry's state as ``stampede.obs.*`` NetLogger events.

    One event per instrument sample: counters and gauges carry their
    value; histograms carry ``sum``/``count`` plus the cumulative
    buckets as a compact JSON string; finished spans (when a tracer is
    attached) carry their trace correlation ids and duration.  Events
    are rendered through :meth:`NLEvent.to_bp`, i.e. the strict BP
    formatter — the round-trip guarantee the archive loader relies on.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        component: str = "stampede",
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry
        self.component = component
        self.tracer = tracer

    def events(self, now: Optional[float] = None) -> List[NLEvent]:
        ts = time.time() if now is None else float(now)
        out: List[NLEvent] = []
        for metric in self.registry.collect():
            attrs: dict = {"metric": metric.name, "component": self.component}
            for key, value in sorted(metric.labels.items()):
                attrs[f"label.{key}"] = value
            if isinstance(metric, Histogram):
                attrs["sum"] = round(metric.sum, 9)
                attrs["count"] = metric.count
                attrs["buckets"] = json.dumps(
                    [
                        ["inf" if b == float("inf") else b, c]
                        for b, c in metric.cumulative_buckets()
                    ],
                    separators=(",", ":"),
                )
                event_name = ObsEvents.HISTOGRAM
            elif isinstance(metric, Counter):
                attrs["value"] = metric.value
                event_name = ObsEvents.COUNTER
            elif isinstance(metric, Gauge):
                attrs["value"] = metric.value
                event_name = ObsEvents.GAUGE
            else:  # pragma: no cover - no other instrument kinds exist
                continue
            out.append(NLEvent(event_name, ts, attrs))
        if self.tracer is not None:
            for span in self.tracer.finished_spans():
                out.append(
                    NLEvent(
                        ObsEvents.SPAN,
                        ts,
                        {
                            "component": self.component,
                            "span": span.name,
                            "trace.id": span.trace_id,
                            "span.id": span.span_id,
                            "parent.id": span.parent_id or "",
                            "dur": round(span.duration, 9),
                        },
                    )
                )
        return out

    def lines(self, now: Optional[float] = None) -> List[str]:
        """The snapshot as strict-formatted BP lines."""
        return [event.to_bp() for event in self.events(now=now)]

    def write(self, target: Union[str, IO[str]], now: Optional[float] = None) -> int:
        """Write the snapshot as BP lines to a path or file object;
        returns the number of events written."""
        lines = self.lines(now=now)
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                for line in lines:
                    fh.write(line + "\n")
        else:
            for line in lines:
                target.write(line + "\n")
        return len(lines)

    def publish(self, publisher) -> int:
        """Publish the snapshot onto the bus (an ``EventPublisher``)."""
        count = 0
        for event in self.events():
            publisher.publish(event)
            count += 1
        return count
