"""Thread-safe metrics primitives for self-monitoring (``repro.obs``).

The monitoring pipeline of the paper — bus, loader, archive, dashboard —
needs to be observable *while it runs*.  This module provides the three
Prometheus-style instrument kinds the rest of the system records into:

* :class:`Counter` — monotonically increasing totals (events processed,
  rows inserted, faults injected);
* :class:`Gauge` — point-in-time values (queue depth, checkpoint lag);
* :class:`Histogram` — fixed-bucket latency/size distributions (flush
  commit latency, transaction duration, end-to-end pipeline latency).

Design constraints, in order:

1. **Hot-path cheapness.**  An instrument update is one uncontended lock
   acquire plus integer arithmetic; histograms bisect a small tuple of
   bucket bounds.  Anything more expensive (per-queue depth, per-type
   event totals) is exported through *collectors* — callbacks the
   registry runs at scrape time, so steady-state load pays nothing.
2. **Thread safety.**  Engines publish while the loader consumes; every
   instrument carries its own lock and :meth:`MetricsRegistry.snapshot`
   reads each one atomically.
3. **No dependencies.**  Pure stdlib; the Prometheus text exposition and
   the BP self-logging exporter live in :mod:`repro.obs.export`.
"""
from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds-scale latency buckets, tuned for the loader's flush/commit
#: range (sub-millisecond sqlite commits up to multi-second outages).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_ERR = "metric names use [a-zA-Z_][a-zA-Z0-9_]*, got {!r}"


def _check_name(name: str) -> str:
    first = name[:1]
    if not (first.isalpha() or first == "_") or not name.replace("_", "a").isalnum():
        raise ValueError(_NAME_ERR.format(name))
    return name


LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common state: identity, help text, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        self.name = _check_name(name)
        self.help = help
        self.labels: Dict[str, str] = dict(_label_items(labels))
        self._lock = threading.Lock()

    @property
    def label_items(self) -> LabelItems:
        return tuple(sorted(self.labels.items()))


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set_total(self, total: float) -> None:
        """Collector hook: adopt an externally tracked running total.

        Used when an existing counter (``QueueStats.published``,
        ``LoaderStats.events_processed``) is authoritative and the metric
        only mirrors it at scrape time; monotonicity is the source's job.
        """
        with self._lock:
            self._value = float(total)


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket distribution with a running sum and count.

    Buckets are cumulative on export (Prometheus ``le`` semantics); the
    in-memory representation is per-bucket counts so ``observe`` is one
    bisect plus one increment.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs ending with ``inf``."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (Prometheus ``histogram_quantile`` style).

        Linear interpolation inside the bucket the target rank falls in,
        assuming a uniform spread between bucket bounds — the fidelity
        the fixed buckets afford.  An empty histogram reports 0; ranks
        landing in the +Inf bucket report the highest finite bound (the
        same saturation Prometheus applies), so gates stay meaningful
        rather than infinite.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cumulative = self.cumulative_buckets()
        total = cumulative[-1][1]
        if total == 0:
            return 0.0
        rank = q * total
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in cumulative:
            if cum >= rank:
                if bound == float("inf"):
                    return self.bounds[-1]
                in_bucket = cum - prev_cum
                if in_bucket <= 0:
                    return bound
                frac = (rank - prev_cum) / in_bucket
                return prev_bound + (bound - prev_bound) * frac
            prev_bound, prev_cum = bound, cum
        return self.bounds[-1]


class MetricsRegistry:
    """Creates, deduplicates, and scrapes instruments.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    the same (name, labels) twice returns the same instrument, so call
    sites don't need to coordinate.  Collectors registered with
    :meth:`register_collector` run once per scrape *before* the
    instruments are read — the pull-model hook that lets queue depths,
    stats structs, and fault tallies be exported with zero hot-path cost.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], _Instrument] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self.scrapes = 0

    # -- instrument factories ------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        key = (_check_name(name), _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(name, help, labels, buckets=buckets)
                self._metrics[key] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def _get_or_create(self, cls, name, help, labels):
        key = (_check_name(name), _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help, labels)
                self._metrics[key] = metric
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    # -- collectors ----------------------------------------------------------
    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``fn(registry)`` at every scrape (before metrics are read)."""
        with self._lock:
            self._collectors.append(fn)

    def run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
            self.scrapes += 1
        for fn in collectors:
            fn(self)

    # -- reading -------------------------------------------------------------
    def collect(self, run_collectors: bool = True) -> List[_Instrument]:
        """All instruments, grouped by name (scrape entry point)."""
        if run_collectors:
            self.run_collectors()
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.label_items))

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get((name, _label_items(labels)))

    def snapshot(self, run_collectors: bool = True) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` view (histograms expand to
        ``_sum`` and ``_count``).  Each instrument is read atomically."""
        out: Dict[str, float] = {}
        for metric in self.collect(run_collectors=run_collectors):
            key = metric.name + _format_labels(metric.labels)
            if isinstance(metric, Histogram):
                out[metric.name + "_sum" + _format_labels(metric.labels)] = metric.sum
                out[metric.name + "_count" + _format_labels(metric.labels)] = float(
                    metric.count
                )
            elif isinstance(metric, (Counter, Gauge)):
                out[key] = metric.value
        return out


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


#: process-wide default registry (dashboards and CLIs share it unless
#: handed an explicit one — tests should build their own)
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (returns the previous one)."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
