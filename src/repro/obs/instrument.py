"""Collector binders: export component stats with zero hot-path cost.

The bus, loader, and fault layers already keep authoritative counters
(``QueueStats``, ``LoaderStats``, ``FaultStats``) that their hot paths
update with plain integer arithmetic.  Rather than double-count into
metric objects on every event, these binders register *collectors* —
callbacks the :class:`~repro.obs.metrics.MetricsRegistry` runs once per
scrape — that mirror the authoritative numbers into Prometheus-shaped
instruments.  Steady-state load therefore pays nothing for exporting
them; the cost lands on the scraper.
"""
from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.archive.shard import ShardedLoader
    from repro.bus.broker import Broker
    from repro.bus.net import BrokerServer
    from repro.faults.plan import FaultStats
    from repro.loader.stampede_loader import StampedeLoader

__all__ = [
    "bind_broker",
    "bind_loader",
    "bind_faults",
    "bind_server",
    "bind_shards",
]

#: per-queue counter fields mirrored as ``op`` label values
_QUEUE_OPS = ("published", "delivered", "acked", "requeued", "dropped", "blocked")

#: LoaderStats counter -> metric name (all monotonic totals)
_LOADER_COUNTERS = {
    "events_processed": "stampede_loader_events_total",
    "rows_inserted": "stampede_loader_rows_inserted_total",
    "rows_updated": "stampede_loader_rows_updated_total",
    "flushes": "stampede_loader_flushes_total",
    "validation_failures": "stampede_loader_validation_failures_total",
    "retries": "stampede_loader_retries_total",
    "checkpoints_written": "stampede_loader_checkpoints_total",
    "resumes": "stampede_loader_resumes_total",
    "redelivered_events": "stampede_loader_redelivered_total",
    "duplicates_skipped": "stampede_loader_duplicates_skipped_total",
    "reconnects": "stampede_loader_reconnects_total",
    "dlq_events": "stampede_loader_dlq_events_total",
    "spilled_events": "stampede_loader_spilled_events_total",
    "spill_drains": "stampede_loader_spill_drains_total",
    "archive_outages": "stampede_loader_archive_outages_total",
}


def bind_broker(registry: MetricsRegistry, broker: "Broker") -> None:
    """Export the broker's exchange and queue state at scrape time.

    Metrics: ``stampede_bus_published_total`` / ``_unroutable_total``
    per exchange; ``stampede_bus_queue_depth`` / ``_queue_unacked``
    gauges and ``stampede_bus_queue_events_total{op=...}`` counters per
    queue (including the dead-letter queue once it exists).
    """

    def collect(reg: MetricsRegistry) -> None:
        for exchange in broker.exchanges():
            labels = {"exchange": exchange.name}
            reg.counter(
                "stampede_bus_published_total",
                "Messages published through an exchange.",
                labels,
            ).set_total(exchange.published)
            reg.counter(
                "stampede_bus_unroutable_total",
                "Publishes no binding matched (dead-lettered).",
                labels,
            ).set_total(exchange.unroutable)
        for queue in broker.queues():
            labels = {"queue": queue.name}
            reg.gauge(
                "stampede_bus_queue_depth",
                "Messages awaiting delivery.",
                labels,
            ).set(len(queue))
            reg.gauge(
                "stampede_bus_queue_unacked",
                "Delivered-but-unacknowledged messages in flight.",
                labels,
            ).set(queue.unacked_count)
            stats = queue.stats
            for op in _QUEUE_OPS:
                reg.counter(
                    "stampede_bus_queue_events_total",
                    "Per-queue message lifecycle counts.",
                    {"queue": queue.name, "op": op},
                ).set_total(getattr(stats, op))
        for group in broker.groups():
            glabels = {"group": group.name}
            reg.counter(
                "stampede_bus_group_routed_total",
                "Messages a consumer group routed to a partition.",
                glabels,
            ).set_total(group.routed)
            reg.counter(
                "stampede_bus_group_publish_duplicates_total",
                "Publish-side duplicates the group router absorbed.",
                glabels,
            ).set_total(group.publish_duplicates)
            reg.gauge(
                "stampede_bus_group_members",
                "Members currently joined to a consumer group.",
                glabels,
            ).set(len(group.members()))
            for part in range(group.partitions):
                plabels = {"group": group.name, "part": str(part)}
                reg.counter(
                    "stampede_bus_group_partition_published_total",
                    "Per-partition sequence high-water mark.",
                    plabels,
                ).set_total(group.published_seq(part))
                reg.counter(
                    "stampede_bus_group_partition_committed_total",
                    "Per-partition committed (acked) floor.",
                    plabels,
                ).set_total(group.committed(part))

    registry.register_collector(collect)


def bind_server(registry: MetricsRegistry, server: "BrokerServer") -> None:
    """Export a :class:`~repro.bus.net.BrokerServer`'s transport counters
    (connections, relayed publishes, protocol errors) alongside the
    broker-level collectors from :func:`bind_broker`."""
    bind_broker(registry, server.broker)

    def collect(reg: MetricsRegistry) -> None:
        reg.counter(
            "stampede_bus_server_connections_total",
            "TCP connections accepted by the bus server.",
        ).set_total(server.connections_total)
        reg.counter(
            "stampede_bus_server_publishes_total",
            "Publish frames relayed to the broker.",
        ).set_total(server.publishes)
        reg.counter(
            "stampede_bus_server_protocol_errors_total",
            "Connections dropped over undecodable frames.",
        ).set_total(server.protocol_errors)

    registry.register_collector(collect)


def bind_loader(registry: MetricsRegistry, loader: "StampedeLoader") -> None:
    """Export :class:`LoaderStats` (and checkpoint lag) at scrape time.

    Reads one atomic :meth:`LoaderStats.snapshot` per scrape, so the
    mirrored counters always describe the same batch.  Also attaches the
    registry to the loader (flush-latency histogram) when the loader was
    built without one.
    """
    if loader.metrics is None:
        loader.metrics = registry
        loader._flush_hist = registry.histogram(
            "stampede_loader_flush_seconds",
            "Batch flush commit latency (journal replay + commit).",
        )

    def collect(reg: MetricsRegistry) -> None:
        snap = loader.stats.snapshot()
        for field, metric_name in _LOADER_COUNTERS.items():
            reg.counter(
                metric_name, f"LoaderStats.{field} (authoritative in-process tally)."
            ).set_total(snap[field])
        for event_name, count in snap["events_by_type"].items():
            reg.counter(
                "stampede_loader_events_by_type_total",
                "Events normalized, by NetLogger event name.",
                {"event": event_name},
            ).set_total(count)
        reg.gauge(
            "stampede_loader_queue_depth_max", "High-water consume queue depth."
        ).set(snap["queue_depth_max"])
        reg.gauge(
            "stampede_loader_queue_depth_avg", "Mean sampled consume queue depth."
        ).set(snap["queue_depth_avg"])
        reg.gauge(
            "stampede_loader_events_per_second",
            "Throughput over accumulated wall time.",
        ).set(snap["events_per_second"])
        for quantile, seconds in snap["latency_percentiles"].items():
            reg.gauge(
                "stampede_loader_flush_latency_seconds",
                "Per-flush commit latency percentile over the sample window.",
                {"quantile": quantile},
            ).set(seconds)
        lag = 0.0
        if loader.last_checkpoint_time is not None:
            lag = max(0.0, time.time() - loader.last_checkpoint_time)
        reg.gauge(
            "stampede_loader_checkpoint_lag_seconds",
            "Seconds since the last checkpoint commit (0 when none yet).",
        ).set(lag)

    registry.register_collector(collect)


def bind_shards(registry: MetricsRegistry, sharded: "ShardedLoader") -> None:
    """Export a :class:`~repro.archive.shard.ShardedLoader`'s per-shard
    telemetry.

    Hot-path instruments (attached eagerly, observed by the writer
    threads):

    * ``stampede_shard_flush_seconds{shard=...}`` — per-shard batch
      flush commit latency histogram (each shard loader's flush
      histogram, labeled by shard index).

    Scrape-time collectors (same zero-hot-path-cost convention as the
    other binders — they mirror the authoritative per-shard
    ``LoaderStats`` once per scrape):

    * ``stampede_shard_queue_depth{shard=...}`` — routed-event chunks
      waiting in a shard writer's queue;
    * ``stampede_shard_events_total`` / ``_rows_inserted_total`` /
      ``_flushes_total`` / ``_retries_total`` / ``_routed_total``
      per shard, and the ``stampede_shard_count`` gauge.
    """
    for writer in sharded.writers:
        loader = writer.loader
        if loader.metrics is None:
            loader.metrics = registry
        loader._flush_hist = registry.histogram(
            "stampede_shard_flush_seconds",
            "Per-shard batch flush commit latency.",
            {"shard": str(writer.index)},
        )

    def collect(reg: MetricsRegistry) -> None:
        reg.gauge(
            "stampede_shard_count", "Shards in the active shard set."
        ).set(len(sharded.writers))
        for writer in sharded.writers:
            labels = {"shard": str(writer.index)}
            reg.gauge(
                "stampede_shard_queue_depth",
                "Routed-event chunks waiting in a shard writer's queue.",
                labels,
            ).set(writer.queue.qsize())
            reg.counter(
                "stampede_shard_routed_total",
                "Events the router assigned to a shard.",
                labels,
            ).set_total(sharded.routed[writer.index])
            snap = writer.loader.stats.snapshot()
            reg.counter(
                "stampede_shard_events_total",
                "Events a shard's writer normalized.",
                labels,
            ).set_total(snap["events_processed"])
            reg.counter(
                "stampede_shard_rows_inserted_total",
                "Rows a shard's writer inserted.",
                labels,
            ).set_total(snap["rows_inserted"])
            reg.counter(
                "stampede_shard_flushes_total",
                "Batch flushes a shard's writer committed.",
                labels,
            ).set_total(snap["flushes"])
            reg.counter(
                "stampede_shard_retries_total",
                "Transient-error flush retries on a shard.",
                labels,
            ).set_total(snap["retries"])

    registry.register_collector(collect)


def bind_faults(registry: MetricsRegistry, stats: "FaultStats") -> None:
    """Export the fault-injection tally at scrape time.

    ``stampede_faults_injected_total{kind=...}`` per fault kind plus the
    unlabeled grand total.
    """

    def collect(reg: MetricsRegistry) -> None:
        tally = stats.to_dict()
        total = tally.pop("total_injected", 0)
        for kind, count in tally.items():
            reg.counter(
                "stampede_faults_injected_total",
                "Faults injected, by kind.",
                {"kind": kind},
            ).set_total(count)
        reg.counter(
            "stampede_faults_total", "All faults injected (grand total)."
        ).set_total(total)

    registry.register_collector(collect)
