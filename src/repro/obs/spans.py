"""Trace spans with correlation ids for the monitoring pipeline itself.

The paper's pipeline is publisher → bus → loader → archive; inferring
its latency from counters alone hides *where* time goes.  This module
adds the two pieces that make per-event latency measurable:

* :class:`Tracer` — named spans (``loader.flush``, ``archive.commit``,
  ``parse.chunk``) with trace/parent correlation ids, kept in a bounded
  ring buffer and mirrored into a ``stampede_span_seconds`` histogram
  when a registry is attached;
* message stamps — :func:`stamp_headers` adds a publish-time wall clock
  and a trace id to every bus message (rides the same headers as the
  PR 3 publisher sequence stamps), and :class:`PipelineClock` turns the
  stamps into per-stage latency observations at the two points the
  loader can measure honestly: *delivery* (message handed to the
  consumer) and *commit* (the batch containing it became durable).

The stamps survive requeue/redelivery untouched (queue semantics), so a
redelivered message's commit latency correctly includes the outage that
delayed it.
"""
from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "HEADER_TRACE",
    "HEADER_PUB_TS",
    "HEADER_PUB_MONO",
    "HEADER_CLOCK_EPOCH",
    "CLOCK_EPOCH",
    "Span",
    "Tracer",
    "PipelineClock",
    "new_trace_id",
    "stamp_headers",
]

#: message-header keys for cross-hop correlation (joins the PR 3
#: ``x-publisher``/``x-seq`` stamps)
HEADER_TRACE = "x-trace"
HEADER_PUB_TS = "x-pub-ts"
#: publish timestamp on the *monotonic* clock, immune to wall-clock
#: adjustment — only meaningful to a consumer sharing the same clock base
HEADER_PUB_MONO = "x-pub-mono"
#: identifies the monotonic clock base the ``x-pub-mono`` stamp was read
#: from; every process gets a fresh epoch, so a consumer can tell "same
#: process, monotonic deltas are exact" from "cross-process, fall back
#: to the wall clock and distrust negative intervals"
HEADER_CLOCK_EPOCH = "x-clock-epoch"

#: this process's monotonic-clock identity (pid + random token: a pid
#: alone can be recycled across restarts, which would alias two bases)
CLOCK_EPOCH = f"{os.getpid():x}-{os.urandom(4).hex()}"

_trace_counter = itertools.count(1)


def new_trace_id() -> str:
    """Process-unique correlation id (pid + monotonic counter)."""
    return f"{os.getpid():x}-{next(_trace_counter):x}"


def stamp_headers(
    headers: Optional[Dict[str, object]] = None,
    trace_id: Optional[str] = None,
    now: Optional[float] = None,
) -> Dict[str, object]:
    """Add trace + publish-timestamp stamps to a message header dict.

    Two timestamps ride along: the wall clock (``x-pub-ts``, the only
    clock different hosts share at all) and the monotonic clock
    (``x-pub-mono`` + its ``x-clock-epoch`` identity).  A consumer in
    the same process measures intervals on the monotonic stamp, which a
    wall-clock adjustment (NTP step, DST, operator ``date``) cannot turn
    negative; cross-process consumers fall back to the wall clock.
    """
    out: Dict[str, object] = dict(headers or {})
    out.setdefault(HEADER_TRACE, trace_id or new_trace_id())
    out.setdefault(HEADER_PUB_TS, time.time() if now is None else now)
    out.setdefault(HEADER_PUB_MONO, time.monotonic())
    out.setdefault(HEADER_CLOCK_EPOCH, CLOCK_EPOCH)
    return out


class Span:
    """One timed operation; ``end()`` (or the context manager) closes it."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "stop", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.stop: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs or {})

    @property
    def duration(self) -> float:
        end = self.stop if self.stop is not None else time.perf_counter()
        return max(0.0, end - self.start)

    @property
    def finished(self) -> bool:
        return self.stop is not None

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"dur={self.duration * 1000:.3f}ms)"
        )


class Tracer:
    """Creates spans, keeps the most recent finished ones, feeds metrics.

    Span nesting is tracked per thread: a span started while another is
    open on the same thread becomes its child (same trace id, parent
    span id), which is exactly the shape of the loader's
    ``flush`` → ``archive.commit`` nesting.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        max_spans: int = 2048,
        component: str = "",
    ):
        self.registry = registry
        self.component = component
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._active = threading.local()

    # -- span lifecycle ------------------------------------------------------
    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        parent: Optional[Span] = getattr(self._active, "span", None)
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else new_trace_id()
        span = Span(
            name,
            trace_id=trace_id,
            span_id=f"s{next(self._ids):x}",
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        return span

    def end_span(self, span: Span) -> Span:
        span.stop = time.perf_counter()
        with self._lock:
            self._spans.append(span)
        if self.registry is not None:
            self.registry.histogram(
                "stampede_span_seconds",
                "Duration of named pipeline spans.",
                labels={"span": span.name},
            ).observe(span.duration)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Iterator[Span]:
        span = self.start_span(name, trace_id=trace_id, attrs=attrs)
        previous: Optional[Span] = getattr(self._active, "span", None)
        self._active.span = span
        try:
            yield span
        finally:
            self._active.span = previous
            self.end_span(span)

    # -- inspection ----------------------------------------------------------
    def finished_spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class PipelineClock:
    """Turns publisher stamps into per-stage latency histograms.

    Stages:

    * ``deliver`` — publish → the consumer received the message;
    * ``commit``  — publish → the batch holding the message committed.

    Each sample prefers the publisher's *monotonic* stamp
    (``x-pub-mono``) when its ``x-clock-epoch`` matches this process —
    monotonic deltas cannot go negative when the wall clock is stepped
    mid-run.  Cross-process stamps (a remote publisher over the TCP
    transport) only share the wall clock, so those samples use
    ``x-pub-ts`` and any *negative* interval — evidence the two hosts'
    clocks disagree — is skipped and counted in ``skipped_negative``
    instead of polluting the histogram as a fake 0.  Cross-process
    samples are tallied in ``cross_process`` either way.

    ``on_delivered`` remembers the message's stamp keyed by delivery
    tag; ``on_committed`` settles every remembered stamp in the batch.
    Messages without stamps (``stamp=False`` publishers, file inputs)
    are ignored.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        #: delivery tag -> (monotonic base?, publish stamp on that clock)
        self._pending: Dict[int, Tuple[bool, float]] = {}
        self._lock = threading.Lock()
        self.cross_process = 0  # samples measured on the wall clock
        self.skipped_negative = 0  # wall-clock samples dropped as negative
        mk = registry.histogram
        self.deliver = mk(
            "stampede_pipeline_latency_seconds",
            "Publish-to-stage latency of bus-delivered events.",
            labels={"stage": "deliver"},
        )
        self.commit = mk(
            "stampede_pipeline_latency_seconds",
            "Publish-to-stage latency of bus-delivered events.",
            labels={"stage": "commit"},
        )

    def _stamp(self, message) -> Optional[Tuple[bool, float]]:
        """``(monotonic?, publish timestamp on that clock)`` or None."""
        mono = message.header(HEADER_PUB_MONO)
        if mono is not None and message.header(HEADER_CLOCK_EPOCH) == CLOCK_EPOCH:
            return True, float(mono)
        pub_ts = message.header(HEADER_PUB_TS)
        if pub_ts is None:
            return None
        return False, float(pub_ts)

    def _observe(self, histogram, monotonic_base: bool, pub: float) -> None:
        if monotonic_base:
            histogram.observe(max(0.0, time.monotonic() - pub))
            return
        self.cross_process += 1
        # wall clocks on two hosts: the only shared clock, but also the
        # only one an adjustment can drive negative — skip those samples
        elapsed = time.time() - pub  # devlint: ignore[SDL202] - cross-host fallback, negative samples skipped below
        if elapsed < 0:
            self.skipped_negative += 1
            return
        histogram.observe(elapsed)

    def on_delivered(self, message) -> None:
        stamp = self._stamp(message)
        if stamp is None:
            return
        self._observe(self.deliver, *stamp)
        with self._lock:
            self._pending[message.delivery_tag] = stamp

    def on_dropped(self, message) -> None:
        """Forget a message that will never commit (dedupe, DLQ)."""
        with self._lock:
            self._pending.pop(message.delivery_tag, None)

    def on_committed(self, messages) -> None:
        with self._lock:
            stamps = [
                self._pending.pop(m.delivery_tag)
                for m in messages
                if m.delivery_tag in self._pending
            ]
        for monotonic_base, pub in stamps:
            self._observe(self.commit, monotonic_base, pub)
