"""stampede-lint: the command-line front-end.

Usage::

    stampede-lint run.bp workflow.dax graph.xml
    stampede-lint --format json --ignore STL104 run.bp
    stampede-lint --list-rules

Exit codes: 0 = no findings at/above the failure threshold (default
``error``); 1 = findings at/above the threshold; 2 = usage error or an
internally inconsistent invocation.
"""
from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.config import LintConfig
from repro.lint.engine import LintRunner
from repro.lint.report import exit_code_for, render_json, render_text
from repro.lint.rules import RULES, Severity

__all__ = ["main", "build_parser"]

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stampede-lint",
        description=(
            "Static analysis for workflow definitions (Pegasus DAX, Triana "
            "task graphs) and NetLogger BP event logs."
        ),
    )
    parser.add_argument(
        "inputs", nargs="*",
        help="files to check ('-' for a BP stream on stdin)",
    )
    parser.add_argument(
        "--kind", choices=("auto", "dax", "taskgraph", "bp"), default="auto",
        help="force the input kind instead of auto-detection",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids/prefixes to run exclusively",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids/prefixes to skip",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="lowest severity that makes the exit code non-zero",
    )
    parser.add_argument(
        "--allow-unknown-events", action="store_true",
        help="do not report event types missing from the schema (STL102)",
    )
    parser.add_argument(
        "--allow-unknown-attrs", action="store_true",
        help="do not report attributes missing from the schema (STL104)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def _split_ids(values: List[str]) -> List[str]:
    return [part for value in values for part in value.split(",") if part.strip()]


def _emit(text: str) -> None:
    """Print to stdout, tolerating a reader (e.g. ``| head``) going away.

    The lint verdict lives in the exit code, so a closed pipe must not
    turn into a traceback; stdout is detached so the interpreter's
    shutdown flush cannot raise again.
    """
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _emit("\n".join(
            f"{rule.rule_id}  {str(rule.severity):7s}  "
            f"{rule.name}: {rule.summary}"
            for rule in RULES.values()
        ))
        return 0

    if not args.inputs:
        parser.print_usage(sys.stderr)
        print("stampede-lint: error: no inputs given", file=sys.stderr)
        return USAGE_ERROR

    try:
        config = LintConfig.build(
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            allow_unknown_events=args.allow_unknown_events,
            allow_unknown_attrs=args.allow_unknown_attrs,
        )
    except ValueError as exc:
        print(f"stampede-lint: error: {exc}", file=sys.stderr)
        return USAGE_ERROR

    runner = LintRunner(config=config)
    findings = []
    for path in args.inputs:
        if path == "-":
            text = sys.stdin.read()
            findings.extend(runner.lint_text(text, "<stdin>", kind="bp"))
        else:
            findings.extend(runner.lint_path(path, kind=args.kind))

    _emit(render_json(findings) if args.format == "json"
          else render_text(findings, verbose=args.verbose))
    return exit_code_for(findings, Severity.parse(args.fail_on))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
