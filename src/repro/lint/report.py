"""Reporters: render findings as human text or machine JSON."""
from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.lint.rules import RULES, Finding, Severity

__all__ = ["render_text", "render_json", "summarize", "exit_code_for"]


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Counts per severity name, plus a total."""
    counts = Counter(str(f.severity) for f in findings)
    counts["total"] = len(findings)
    return dict(counts)


def exit_code_for(
    findings: Sequence[Finding], fail_on: Severity = Severity.ERROR
) -> int:
    """0 = clean at the threshold, 1 = findings at/above ``fail_on``."""
    return 1 if any(f.severity >= fail_on for f in findings) else 0


def render_text(findings: Sequence[Finding], verbose: bool = False) -> str:
    """One finding per line, ``file:line: RULE severity: message``."""
    lines: List[str] = [str(f) for f in findings]
    counts = summarize(findings)
    if findings:
        by_sev = ", ".join(
            f"{counts.get(str(sev), 0)} {sev}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if counts.get(str(sev))
        )
        lines.append(f"{counts['total']} finding(s): {by_sev}")
    else:
        lines.append("no findings")
    if verbose and findings:
        lines.append("")
        for rule_id in sorted({f.rule_id for f in findings}):
            lines.append(f"  {RULES[rule_id]}: {RULES[rule_id].summary}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document: findings plus the severity summary."""
    doc = {
        "findings": [f.to_dict() for f in findings],
        "summary": summarize(findings),
    }
    return json.dumps(doc, indent=2, sort_keys=True)
