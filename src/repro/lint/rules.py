"""The stampede-lint rule registry: rule IDs, severities, findings.

Every check the analyzers perform is declared here as a :class:`Rule` with
a stable identifier (``STL001``, ``STL002``, ...).  Stable IDs are the
contract that makes findings scriptable: reports reference them, configs
enable/disable them, and docs/lint-rules.md catalogs them.  Workflow-
definition rules live in the ``STL0xx`` block, event-stream rules in
``STL1xx``.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["Severity", "Rule", "Finding", "RULES", "register_rule", "get_rule"]


class Severity(enum.IntEnum):
    """Finding severities; comparable so thresholds are natural."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Rule:
    """One named check with a stable ID and a default severity."""

    rule_id: str
    name: str
    severity: Severity
    summary: str

    def __str__(self) -> str:
        return f"{self.rule_id} [{self.severity}] {self.name}"


RULES: Dict[str, Rule] = {}


def register_rule(rule_id: str, name: str, severity: Severity, summary: str) -> Rule:
    """Register a rule; duplicate IDs are a programming error."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    rule = Rule(rule_id, name, severity, summary)
    RULES[rule_id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    return RULES[rule_id]


@dataclass
class Finding:
    """One problem found at one location.

    ``severity`` is copied from the rule at creation so config-level
    severity overrides are baked in and reporters never need the registry.
    """

    rule_id: str
    severity: Severity
    message: str
    file: str = "<input>"
    line: int = 0
    context: Dict[str, str] = field(default_factory=dict)

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    def location(self) -> str:
        return f"{self.file}:{self.line}" if self.line else self.file

    def __str__(self) -> str:
        return f"{self.location()}: {self.rule_id} {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
        }
        if self.context:
            out["context"] = dict(self.context)
        return out


def make_finding(
    rule_id: str,
    message: str,
    file: str = "<input>",
    line: int = 0,
    severity: Optional[Severity] = None,
    context: Optional[Mapping[str, str]] = None,
) -> Finding:
    """Build a Finding with the rule's default severity unless overridden."""
    return Finding(
        rule_id=rule_id,
        severity=severity if severity is not None else RULES[rule_id].severity,
        message=message,
        file=file,
        line=line,
        context=dict(context or {}),
    )


# --------------------------------------------------------------------------
# Workflow-definition rules (DAX and Triana task graphs): STL0xx
# --------------------------------------------------------------------------
register_rule(
    "STL001", "workflow-cycle", Severity.ERROR,
    "the workflow dependency graph contains a cycle (the AW must be a DAG)",
)
register_rule(
    "STL002", "dangling-ref", Severity.ERROR,
    "a dependency edge references a job/task that is not defined",
)
register_rule(
    "STL003", "duplicate-id", Severity.ERROR,
    "two jobs/tasks share the same identifier",
)
register_rule(
    "STL004", "unreachable-task", Severity.WARNING,
    "a task cannot be reached from any root of the workflow",
)
register_rule(
    "STL005", "unproduced-input", Severity.WARNING,
    "a file is consumed but never produced by any job in the workflow",
)
register_rule(
    "STL006", "duplicate-output", Severity.ERROR,
    "a file is declared as the output of more than one job",
)
register_rule(
    "STL007", "self-dependency", Severity.ERROR,
    "a dependency edge has the same job as parent and child",
)
register_rule(
    "STL008", "isolated-task", Severity.WARNING,
    "a task has no dependencies while the rest of the workflow is connected",
)
register_rule(
    "STL009", "taskgraph-cycle", Severity.WARNING,
    "a Triana task graph contains a loop (legal only in continuous mode)",
)
register_rule(
    "STL010", "unparseable-document", Severity.ERROR,
    "the workflow document could not be parsed at all",
)
register_rule(
    "STL011", "unknown-unit-type", Severity.ERROR,
    "a task references a unit type with no registered codec",
)
register_rule(
    "STL012", "duplicate-edge", Severity.WARNING,
    "the same dependency edge is declared more than once",
)
register_rule(
    "STL013", "bad-param-payload", Severity.ERROR,
    "a task parameter payload is not valid JSON",
)

# --------------------------------------------------------------------------
# Event-stream rules (NetLogger BP logs): STL1xx
# --------------------------------------------------------------------------
register_rule(
    "STL101", "malformed-bp-line", Severity.ERROR,
    "a log line does not parse as a BP name=value record",
)
register_rule(
    "STL102", "unknown-event-type", Severity.ERROR,
    "an event type does not exist in the compiled YANG schema",
)
register_rule(
    "STL103", "missing-mandatory-attr", Severity.ERROR,
    "an event lacks an attribute the schema marks mandatory",
)
register_rule(
    "STL104", "unknown-attr", Severity.WARNING,
    "an event carries an attribute the schema does not declare",
)
register_rule(
    "STL105", "bad-attr-type", Severity.ERROR,
    "an attribute value violates its YANG type",
)
register_rule(
    "STL106", "duplicate-attr", Severity.ERROR,
    "an attribute name appears more than once on one line",
)
register_rule(
    "STL107", "illegal-transition", Severity.ERROR,
    "a lifecycle event implies a state transition the state machine forbids",
)
register_rule(
    "STL108", "event-after-terminal", Severity.ERROR,
    "a lifecycle event arrived after the entity reached an end state",
)
register_rule(
    "STL109", "start-without-end", Severity.WARNING,
    "a start event has no matching end event by end of stream",
)
register_rule(
    "STL110", "end-without-start", Severity.ERROR,
    "an end event has no preceding matching start event",
)
register_rule(
    "STL111", "nonmonotonic-timestamp", Severity.WARNING,
    "an entity's events move backwards in time",
)
register_rule(
    "STL112", "orphan-reference", Severity.ERROR,
    "an event references a workflow/job/task id never declared in the stream",
)
register_rule(
    "STL113", "duplicate-event", Severity.ERROR,
    "the identical event was delivered more than once",
)
