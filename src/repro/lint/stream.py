"""Event-stream analyzers: offline checks over NetLogger BP logs.

:class:`StreamLinter` is incremental — feed it one line (or one parsed
event) at a time and it returns the findings that line triggered; call
:meth:`StreamLinter.finish` at end of stream for the whole-stream checks
(unmatched start/end pairs, unresolved sub-workflow references).  That
shape lets the same analyzer serve the offline ``stampede-lint`` CLI and
the loader's ``nl-load --lint`` quarantine mode.

Checks per line/event:
  * BP grammar (STL101) and duplicate attribute names (STL106);
  * schema conformance against the compiled YANG registry (STL102-105);
  * lifecycle legality via the explicit transition table in
    ``repro.model.states`` (STL107, STL108);
  * start/end pairing (STL109, STL110);
  * per-entity timestamp monotonicity (STL111);
  * identifier integrity — events referencing workflows/jobs/tasks never
    declared by the static section (STL112);
  * exact duplicate delivery (STL113).
"""
from __future__ import annotations

import os
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Set,
    TextIO,
    Tuple,
    Union,
)

from repro.lint.config import LintConfig
from repro.lint.rules import Finding, make_finding
from repro.model.states import (
    END_JOB_STATES,
    JobState,
    WorkflowState,
    is_valid_transition,
)
from repro.netlogger.bp import BPParseError, parse_bp_pairs
from repro.netlogger.events import Level, NLEvent
from repro.schema.compiler import SchemaRegistry
from repro.schema.stampede import STAMPEDE_SCHEMA, SUCCESS, Events
from repro.schema.validator import EventValidator
from repro.util.timeutil import parse_ts

__all__ = ["StreamLinter", "lint_bp"]

_VIOLATION_RULES = {
    "unknown-event": "STL102",
    "missing": "STL103",
    "unknown-attr": "STL104",
    "bad-type": "STL105",
}

# Event name -> implied job state; callables resolve on the event's status.
_STATE_OF: Dict[str, Union[JobState, Callable[[int], JobState]]] = {
    Events.JOB_INST_PRE_START: JobState.PRE_SCRIPT_STARTED,
    Events.JOB_INST_PRE_TERM: JobState.PRE_SCRIPT_TERMINATED,
    Events.JOB_INST_PRE_END: lambda status: (
        JobState.PRE_SCRIPT_SUCCESS if status == SUCCESS
        else JobState.PRE_SCRIPT_FAILURE
    ),
    Events.JOB_INST_SUBMIT_START: JobState.SUBMIT,
    Events.JOB_INST_HELD_START: JobState.JOB_HELD,
    Events.JOB_INST_HELD_END: JobState.JOB_RELEASED,
    Events.JOB_INST_MAIN_START: JobState.EXECUTE,
    Events.JOB_INST_MAIN_TERM: JobState.JOB_TERMINATED,
    Events.JOB_INST_MAIN_END: lambda status: (
        JobState.JOB_SUCCESS if status == SUCCESS else JobState.JOB_FAILURE
    ),
    Events.JOB_INST_POST_START: JobState.POST_SCRIPT_STARTED,
    Events.JOB_INST_POST_TERM: JobState.POST_SCRIPT_TERMINATED,
    Events.JOB_INST_POST_END: lambda status: (
        JobState.POST_SCRIPT_SUCCESS if status == SUCCESS
        else JobState.POST_SCRIPT_FAILURE
    ),
    Events.JOB_INST_ABORT_INFO: JobState.JOB_ABORTED,
}

# start event -> matching end event (pair scope: per workflow or instance).
_PAIRS: Dict[str, str] = {
    Events.XWF_START: Events.XWF_END,
    Events.STATIC_START: Events.STATIC_END,
    Events.JOB_INST_PRE_START: Events.JOB_INST_PRE_END,
    Events.JOB_INST_SUBMIT_START: Events.JOB_INST_SUBMIT_END,
    Events.JOB_INST_HELD_START: Events.JOB_INST_HELD_END,
    Events.JOB_INST_MAIN_START: Events.JOB_INST_MAIN_END,
    Events.JOB_INST_POST_START: Events.JOB_INST_POST_END,
    Events.INV_START: Events.INV_END,
}
_END_TO_START = {end: start for start, end in _PAIRS.items()}


class StreamLinter:
    """Stateful lint pass over one BP event stream."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        registry: Optional[SchemaRegistry] = None,
        path: str = "<stream>",
    ):
        self.config = config or LintConfig()
        self.path = path
        self._validator = EventValidator(
            registry or STAMPEDE_SCHEMA,
            allow_unknown_events=self.config.allow_unknown_events,
            allow_unknown_attrs=self.config.allow_unknown_attrs,
        )
        self.events_seen = 0
        # identity declarations, per the static section of each workflow
        self._workflows: Set[str] = set()
        self._tasks: Dict[str, Set[str]] = {}  # xwf -> task ids
        self._jobs: Dict[str, Set[str]] = {}  # xwf -> exec job ids
        self._orphans_reported: Set[Tuple[str, str]] = set()
        # lifecycle
        self._job_state: Dict[Tuple, Optional[JobState]] = {}
        self._wf_state: Dict[str, WorkflowState] = {}
        # pairing: (start_event, scope key) -> [open count, last line]
        self._open_pairs: Dict[Tuple, List[int]] = {}
        # monotonicity: entity key -> (last ts, last line)
        self._last_ts: Dict[Tuple, Tuple[float, int]] = {}
        # duplicate delivery
        self._seen_signatures: Set[Tuple] = set()

    # ------------------------------------------------------------- feeding --
    def feed_line(
        self, line: str, lineno: int = 0
    ) -> Tuple[Optional[NLEvent], List[Finding]]:
        """Lint one raw BP line.

        Returns the parsed event (None when the line is unusable) and the
        findings it triggered.  Blank lines and ``#`` comments yield
        ``(None, [])``.
        """
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return None, []
        try:
            pairs = parse_bp_pairs(stripped)
        except BPParseError as exc:
            return None, self.config.apply(
                [make_finding("STL101", str(exc), self.path, lineno)]
            )

        findings: List[Finding] = []
        attrs: Dict[str, str] = {}
        for name, value in pairs:
            if name in attrs:
                findings.append(
                    make_finding(
                        "STL106",
                        f"attribute {name!r} appears more than once "
                        "(last occurrence wins)",
                        self.path,
                        lineno,
                    )
                )
            attrs[name] = value

        for required in ("ts", "event"):
            if required not in attrs:
                findings.append(
                    make_finding(
                        "STL101",
                        f"missing required attribute {required!r}",
                        self.path,
                        lineno,
                    )
                )
        if any(f.rule_id == "STL101" for f in findings):
            return None, self.config.apply(findings)

        try:
            ts = parse_ts(attrs.pop("ts"))
        except (ValueError, TypeError) as exc:
            findings.append(
                make_finding(
                    "STL101", f"unparseable timestamp: {exc}", self.path, lineno
                )
            )
            return None, self.config.apply(findings)
        event_name = attrs.pop("event")
        level_text = attrs.pop("level", "Info")
        try:
            level = Level.parse(level_text)
        except ValueError:
            findings.append(
                make_finding(
                    "STL105",
                    f"unknown NetLogger level {level_text!r}",
                    self.path,
                    lineno,
                    context={"attribute": "level"},
                )
            )
            level = Level.INFO
        event = NLEvent(event_name, ts, attrs, level=level)
        findings.extend(self._feed_parsed(event, lineno))
        return event, self.config.apply(findings)

    def feed(self, event: NLEvent, lineno: int = 0) -> List[Finding]:
        """Lint one already-parsed event (e.g. straight off the bus)."""
        return self.config.apply(self._feed_parsed(event, lineno))

    # ------------------------------------------------------------- checks --
    def _feed_parsed(self, event: NLEvent, lineno: int) -> List[Finding]:
        self.events_seen += 1
        findings: List[Finding] = []
        findings.extend(self._check_schema(event, lineno))
        findings.extend(self._check_duplicate(event, lineno))
        findings.extend(self._check_monotonic(event, lineno))
        findings.extend(self._check_identity(event, lineno))
        findings.extend(self._check_lifecycle(event, lineno))
        findings.extend(self._check_pairs(event, lineno))
        return findings

    def _check_schema(self, event: NLEvent, lineno: int) -> List[Finding]:
        findings = []
        for violation in self._validator.validate_attrs(event.event, event.attrs):
            findings.append(
                make_finding(
                    _VIOLATION_RULES[violation.kind],
                    str(violation),
                    self.path,
                    lineno,
                    context={"event": event.event, "attribute": violation.attribute},
                )
            )
        return findings

    def _check_duplicate(self, event: NLEvent, lineno: int) -> List[Finding]:
        signature = (
            event.event,
            event.ts,
            tuple(sorted((k, str(v)) for k, v in event.attrs.items())),
        )
        if signature in self._seen_signatures:
            return [
                make_finding(
                    "STL113",
                    f"duplicate delivery of {event.event} at ts={event.ts}",
                    self.path,
                    lineno,
                    context={"event": event.event},
                )
            ]
        self._seen_signatures.add(signature)
        return []

    def _entity_key(self, event: NLEvent) -> Tuple:
        xwf = str(event.get("xwf.id", ""))
        if event.event.startswith("stampede.job_inst.") or event.event.startswith(
            "stampede.inv."
        ):
            return (xwf, str(event.get("job.id", "")), str(event.get("job_inst.id", "")))
        return (xwf,)

    def _check_monotonic(self, event: NLEvent, lineno: int) -> List[Finding]:
        key = self._entity_key(event)
        last = self._last_ts.get(key)
        self._last_ts[key] = (event.ts, lineno)
        if last is not None and event.ts < last[0]:
            entity = "/".join(str(part) for part in key if part) or "stream"
            return [
                make_finding(
                    "STL111",
                    f"{event.event} at ts={event.ts} is earlier than the "
                    f"previous event for {entity} (ts={last[0]}, line {last[1]})",
                    self.path,
                    lineno,
                    context={"event": event.event},
                )
            ]
        return []

    def _orphan(
        self, kind: str, ident: str, event: NLEvent, lineno: int
    ) -> List[Finding]:
        if (kind, ident) in self._orphans_reported:
            return []
        self._orphans_reported.add((kind, ident))
        return [
            make_finding(
                "STL112",
                f"{event.event} references unknown {kind} {ident!r}",
                self.path,
                lineno,
                context={"event": event.event, kind: ident},
            )
        ]

    def _check_identity(self, event: NLEvent, lineno: int) -> List[Finding]:
        findings: List[Finding] = []
        xwf = str(event.get("xwf.id", ""))
        if event.event == Events.WF_PLAN:
            self._workflows.add(xwf)
            self._tasks.setdefault(xwf, set())
            self._jobs.setdefault(xwf, set())
            return findings
        if xwf not in self._workflows:
            findings.extend(self._orphan("workflow", xwf, event, lineno))
            return findings  # nothing to resolve job/task ids against

        tasks = self._tasks.setdefault(xwf, set())
        jobs = self._jobs.setdefault(xwf, set())
        if event.event == Events.TASK_INFO:
            ref = str(event.get("task.id", ""))
            if ref in tasks:
                findings.append(
                    make_finding(
                        "STL003",
                        f"task {ref!r} declared more than once "
                        f"(repeated {event.event})",
                        self.path,
                        lineno,
                        context={"event": event.event, "task": ref},
                    )
                )
            tasks.add(ref)
        elif event.event == Events.JOB_INFO:
            ref = str(event.get("job.id", ""))
            if ref in jobs:
                findings.append(
                    make_finding(
                        "STL003",
                        f"job {ref!r} declared more than once "
                        f"(repeated {event.event})",
                        self.path,
                        lineno,
                        context={"event": event.event, "job": ref},
                    )
                )
            jobs.add(ref)
        elif event.event == Events.TASK_EDGE:
            for attr in ("parent.task.id", "child.task.id"):
                ref = str(event.get(attr, ""))
                if ref not in tasks:
                    findings.extend(self._orphan("task", f"{xwf}/{ref}", event, lineno))
        elif event.event == Events.JOB_EDGE:
            for attr in ("parent.job.id", "child.job.id"):
                ref = str(event.get(attr, ""))
                if ref not in jobs:
                    findings.extend(self._orphan("job", f"{xwf}/{ref}", event, lineno))
        elif event.event == Events.MAP_TASK_JOB:
            task_ref = str(event.get("task.id", ""))
            job_ref = str(event.get("job.id", ""))
            if task_ref not in tasks:
                findings.extend(
                    self._orphan("task", f"{xwf}/{task_ref}", event, lineno)
                )
            if job_ref not in jobs:
                findings.extend(self._orphan("job", f"{xwf}/{job_ref}", event, lineno))
        elif event.event.startswith("stampede.job_inst.") or event.event.startswith(
            "stampede.inv."
        ):
            job_ref = str(event.get("job.id", ""))
            if job_ref not in jobs:
                findings.extend(self._orphan("job", f"{xwf}/{job_ref}", event, lineno))
            task_ref = event.get("task.id")
            if task_ref is not None and str(task_ref) not in tasks:
                findings.extend(
                    self._orphan("task", f"{xwf}/{task_ref}", event, lineno)
                )
        return findings

    def _check_lifecycle(self, event: NLEvent, lineno: int) -> List[Finding]:
        if event.event in (Events.XWF_START, Events.XWF_END):
            return self._check_wf_lifecycle(event, lineno)
        implied = _STATE_OF.get(event.event)
        if implied is None:
            return []
        if callable(implied):
            try:
                status = int(str(event.get("status", SUCCESS)))
            except ValueError:
                status = SUCCESS  # bad status already reported by STL105
            state = implied(status)
        else:
            state = implied
        key = (
            str(event.get("xwf.id", "")),
            str(event.get("job.id", "")),
            str(event.get("job_inst.id", "")),
        )
        current = self._job_state.get(key)
        findings: List[Finding] = []
        entity = f"job {key[1]!r} instance {key[2]}"
        if current in END_JOB_STATES:
            findings.append(
                make_finding(
                    "STL108",
                    f"{event.event} for {entity} arrived after "
                    f"end state {current}",
                    self.path,
                    lineno,
                    context={"event": event.event, "state": str(current)},
                )
            )
        elif not is_valid_transition(current, state):
            was = str(current) if current is not None else "<initial>"
            findings.append(
                make_finding(
                    "STL107",
                    f"{event.event} implies illegal transition "
                    f"{was} -> {state} for {entity}",
                    self.path,
                    lineno,
                    context={"event": event.event, "from": was, "to": str(state)},
                )
            )
        # resync on the observed state either way, so one missing event
        # doesn't cascade a finding onto every later event
        if current not in END_JOB_STATES:
            self._job_state[key] = state
        return findings

    def _check_wf_lifecycle(self, event: NLEvent, lineno: int) -> List[Finding]:
        xwf = str(event.get("xwf.id", ""))
        state = (
            WorkflowState.WORKFLOW_STARTED
            if event.event == Events.XWF_START
            else WorkflowState.WORKFLOW_TERMINATED
        )
        current = self._wf_state.get(xwf)
        self._wf_state[xwf] = state
        if not is_valid_transition(current, state):
            was = str(current) if current is not None else "<initial>"
            return [
                make_finding(
                    "STL107",
                    f"{event.event} implies illegal transition "
                    f"{was} -> {state} for workflow {xwf!r}",
                    self.path,
                    lineno,
                    context={"event": event.event, "from": was, "to": str(state)},
                )
            ]
        return []

    def _pair_scope(self, event: NLEvent) -> Tuple:
        xwf = str(event.get("xwf.id", ""))
        if event.event.startswith("stampede.job_inst."):
            return (xwf, str(event.get("job.id", "")), str(event.get("job_inst.id", "")))
        if event.event.startswith("stampede.inv."):
            return (
                xwf,
                str(event.get("job.id", "")),
                str(event.get("job_inst.id", "")),
                str(event.get("inv.id", "")),
            )
        return (xwf,)

    def _check_pairs(self, event: NLEvent, lineno: int) -> List[Finding]:
        if event.event in _PAIRS:
            key = (event.event, self._pair_scope(event))
            entry = self._open_pairs.setdefault(key, [0, lineno])
            entry[0] += 1
            entry[1] = lineno
            return []
        start_name = _END_TO_START.get(event.event)
        if start_name is None:
            return []
        key = (start_name, self._pair_scope(event))
        entry = self._open_pairs.get(key)
        if entry is None or entry[0] <= 0:
            return [
                make_finding(
                    "STL110",
                    f"{event.event} without a preceding {start_name} "
                    f"for {'/'.join(map(str, key[1]))}",
                    self.path,
                    lineno,
                    context={"event": event.event},
                )
            ]
        entry[0] -= 1
        return []

    # -------------------------------------------------------------- finish --
    def finish(self) -> List[Finding]:
        """End-of-stream checks: unmatched starts, unresolved subworkflows."""
        findings: List[Finding] = []
        for (start_name, scope), (count, lineno) in sorted(
            self._open_pairs.items(), key=lambda item: item[1][1]
        ):
            if count > 0:
                findings.append(
                    make_finding(
                        "STL109",
                        f"{count} {start_name} event(s) for "
                        f"{'/'.join(map(str, scope))} never matched by "
                        f"{_PAIRS[start_name]}",
                        self.path,
                        lineno,
                        context={"event": start_name},
                    )
                )
        return self.config.apply(findings)


def lint_bp(
    source: Union[str, os.PathLike, TextIO],
    path: str = "<stream>",
    config: Optional[LintConfig] = None,
    registry: Optional[SchemaRegistry] = None,
) -> List[Finding]:
    """Lint a whole BP log (path, text with newlines, or file object)."""
    if isinstance(source, (str, os.PathLike)) and os.path.exists(str(source)):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        if path == "<stream>":
            path = str(source)
    elif isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)
    linter = StreamLinter(config=config, registry=registry, path=path)
    findings: List[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        _event, line_findings = linter.feed_line(line, lineno)
        findings.extend(line_findings)
    findings.extend(linter.finish())
    return findings
