"""The lint driver: classify inputs, dispatch analyzers, aggregate findings."""
from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence, Union

from repro.lint.config import LintConfig
from repro.lint.rules import Finding, make_finding
from repro.lint.stream import lint_bp
from repro.lint.workflow import lint_dax, lint_taskgraph
from repro.schema.compiler import SchemaRegistry

__all__ = ["detect_kind", "lint_path", "lint_paths", "LintRunner"]

_KINDS = ("dax", "taskgraph", "bp")


def detect_kind(path: Union[str, os.PathLike], text: str) -> str:
    """Classify an input as 'dax', 'taskgraph' or 'bp'.

    XML documents are classified by their root element; everything else is
    treated as a BP event log (the BP grammar itself then reports lines
    that do not parse).
    """
    name = str(path).lower()
    if name.endswith(".dax"):
        return "dax"
    stripped = text.lstrip()
    if stripped.startswith("<"):
        try:
            root_tag = ET.fromstring(stripped).tag.split("}")[-1]
        except ET.ParseError:
            # broken XML: guess from the first opening tag so the right
            # analyzer reports the parse error
            head = stripped[: min(len(stripped), 4096)]
            if "<taskgraph" in head:
                return "taskgraph"
            return "dax"
        if root_tag == "taskgraph":
            return "taskgraph"
        return "dax"
    return "bp"


class LintRunner:
    """Run analyzers over files and collect findings."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        registry: Optional[SchemaRegistry] = None,
    ):
        self.config = config or LintConfig()
        self.registry = registry
        self.files_checked = 0

    def lint_text(self, text: str, path: str, kind: str = "auto") -> List[Finding]:
        if kind == "auto":
            kind = detect_kind(path, text)
        if kind not in _KINDS:
            raise ValueError(f"unknown input kind {kind!r}")
        self.files_checked += 1
        if kind == "dax":
            return self.config.apply(lint_dax(text, path))
        if kind == "taskgraph":
            return self.config.apply(lint_taskgraph(text, path))
        return lint_bp(text, path, config=self.config, registry=self.registry)

    def lint_path(
        self, path: Union[str, os.PathLike], kind: str = "auto"
    ) -> List[Finding]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            self.files_checked += 1
            return self.config.apply(
                [make_finding("STL010", f"cannot read input: {exc}", str(path), 0)]
            )
        return self.lint_text(text, str(path), kind)

    def lint_paths(
        self, paths: Sequence[Union[str, os.PathLike]], kind: str = "auto"
    ) -> List[Finding]:
        findings: List[Finding] = []
        for path in paths:
            findings.extend(self.lint_path(path, kind))
        return findings


def lint_path(
    path: Union[str, os.PathLike],
    kind: str = "auto",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Convenience one-shot over a single file."""
    return LintRunner(config=config).lint_path(path, kind)


def lint_paths(
    paths: Sequence[Union[str, os.PathLike]],
    kind: str = "auto",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Convenience one-shot over many files."""
    return LintRunner(config=config).lint_paths(paths, kind)
