"""Per-rule lint configuration: enable/disable and severity overrides."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.lint.rules import RULES, Finding, Severity

__all__ = ["LintConfig"]


def _expand(ids: Iterable[str]) -> FrozenSet[str]:
    """Expand rule-id prefixes (``STL1`` = every stream rule) to full IDs."""
    out = set()
    for rid in ids:
        rid = rid.strip().upper()
        if not rid:
            continue
        matches = [known for known in RULES if known.startswith(rid)]
        if not matches:
            raise ValueError(f"unknown rule id or prefix {rid!r}")
        out.update(matches)
    return frozenset(out)


@dataclass
class LintConfig:
    """Which rules run and how severe their findings are.

    ``select`` non-empty means *only* those rules run; ``ignore`` always
    subtracts.  ``severity_overrides`` remaps a rule's severity (e.g. treat
    STL104 unknown-attr as an error for a frozen producer).
    """

    select: FrozenSet[str] = frozenset()
    ignore: FrozenSet[str] = frozenset()
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    # schema-analyzer knobs, mirroring EventValidator's
    allow_unknown_events: bool = False
    allow_unknown_attrs: bool = False

    @classmethod
    def build(
        cls,
        select: Iterable[str] = (),
        ignore: Iterable[str] = (),
        severity_overrides: Optional[Dict[str, str]] = None,
        allow_unknown_events: bool = False,
        allow_unknown_attrs: bool = False,
    ) -> "LintConfig":
        """Build from user-facing strings (CLI flags), validating rule IDs."""
        overrides = {
            rid.upper(): Severity.parse(sev)
            for rid, sev in (severity_overrides or {}).items()
        }
        for rid in overrides:
            if rid not in RULES:
                raise ValueError(f"unknown rule id {rid!r}")
        return cls(
            select=_expand(select),
            ignore=_expand(ignore),
            severity_overrides=overrides,
            allow_unknown_events=allow_unknown_events,
            allow_unknown_attrs=allow_unknown_attrs,
        )

    def is_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select:
            return rule_id in self.select
        return True

    def severity_of(self, rule_id: str) -> Severity:
        return self.severity_overrides.get(rule_id, RULES[rule_id].severity)

    def apply(self, findings: Iterable[Finding]) -> List[Finding]:
        """Filter disabled rules and apply severity overrides."""
        out: List[Finding] = []
        for finding in findings:
            if not self.is_enabled(finding.rule_id):
                continue
            override = self.severity_overrides.get(finding.rule_id)
            if override is not None:
                finding.severity = override
            out.append(finding)
        return out
