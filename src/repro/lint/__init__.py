"""stampede-lint: static analysis for workflow definitions and BP logs.

Three analyzer families share one rule registry (stable ``STLnnn`` IDs):

* workflow-definition analyzers over Pegasus DAX and Triana task-graph
  documents (:func:`lint_dax`, :func:`lint_taskgraph`);
* event-stream analyzers over NetLogger BP logs, incremental via
  :class:`StreamLinter` or whole-file via :func:`lint_bp`;
* the rule-engine core: :class:`Rule`/:class:`Finding` records,
  :class:`LintConfig` enable/disable + severity overrides, text/JSON
  reporters and CLI exit codes.

See ``docs/lint-rules.md`` for the rule catalog.
"""
from repro.lint.config import LintConfig
from repro.lint.engine import LintRunner, detect_kind, lint_path, lint_paths
from repro.lint.report import exit_code_for, render_json, render_text, summarize
from repro.lint.rules import RULES, Finding, Rule, Severity, get_rule, make_finding
from repro.lint.stream import StreamLinter, lint_bp
from repro.lint.workflow import lint_dax, lint_taskgraph

__all__ = [
    "LintConfig",
    "LintRunner",
    "detect_kind",
    "lint_path",
    "lint_paths",
    "exit_code_for",
    "render_json",
    "render_text",
    "summarize",
    "RULES",
    "Finding",
    "Rule",
    "Severity",
    "get_rule",
    "make_finding",
    "StreamLinter",
    "lint_bp",
    "lint_dax",
    "lint_taskgraph",
]
