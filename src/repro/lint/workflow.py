"""Workflow-definition analyzers: Pegasus DAX and Triana task graphs.

Both analyzers work from the *raw* structures the format modules expose
(:func:`repro.pegasus.dax.dax_structure`,
:func:`repro.triana.taskgraph_xml.taskgraph_structure`) rather than the
validated object models, so a single pass reports every problem in a
document instead of raising on the first.
"""
from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.rules import Finding, make_finding
from repro.pegasus.dax import RawDax, dax_structure
from repro.triana.bundles import UNIT_CODECS, BundleError
from repro.triana.taskgraph_xml import RawTaskGraph, taskgraph_structure
from repro.util.graph import DiGraph

__all__ = ["lint_dax", "lint_taskgraph"]


def _graph_findings(
    node_lines: Dict[str, int],
    edges: Sequence[Tuple[str, str, int]],
    path: str,
    cycle_rule: str,
) -> List[Finding]:
    """Shared structural checks over (nodes, edges): cycles, reachability,
    isolation.  ``edges`` must already be confined to known nodes."""
    findings: List[Finding] = []
    graph = DiGraph()
    for node in node_lines:
        graph.add_node(node)
    for parent, child, _line in edges:
        graph.add_edge(parent, child)

    cycle = graph.find_cycle()
    if cycle:
        at = node_lines.get(cycle[0], 0)
        findings.append(
            make_finding(
                cycle_rule,
                "dependency cycle: " + " -> ".join(map(str, cycle)),
                path,
                at,
            )
        )
    cycle_nodes: Set[str] = set(cycle)

    roots = graph.roots()
    if roots and len(graph) > 1:
        reachable: Set[str] = set(roots)
        stack = list(roots)
        while stack:
            for child in graph.successors(stack.pop()):
                if child not in reachable:
                    reachable.add(child)
                    stack.append(child)
        for node in graph.nodes():
            if node not in reachable and node not in cycle_nodes:
                findings.append(
                    make_finding(
                        "STL004",
                        f"task {node!r} is unreachable from any workflow root",
                        path,
                        node_lines.get(node, 0),
                    )
                )

    if edges:
        for node in graph.nodes():
            if graph.in_degree(node) == 0 and graph.out_degree(node) == 0:
                findings.append(
                    make_finding(
                        "STL008",
                        f"task {node!r} has no dependencies "
                        "(isolated from the rest of the workflow)",
                        path,
                        node_lines.get(node, 0),
                    )
                )
    return findings


# ------------------------------------------------------------------- DAX --
def lint_dax(source, path: str = "<dax>") -> List[Finding]:
    """All findings for one DAX document (path or XML text)."""
    try:
        raw: RawDax = dax_structure(source)
    except ET.ParseError as exc:
        return [make_finding("STL010", f"not well-formed XML: {exc}", path, 1)]
    except ValueError as exc:
        return [make_finding("STL010", str(exc), path, 1)]

    findings: List[Finding] = []

    id_counts = Counter(job.job_id for job in raw.jobs)
    seen_ids: Set[str] = set()
    node_lines: Dict[str, int] = {}
    for job in raw.jobs:
        if job.job_id in seen_ids:
            findings.append(
                make_finding(
                    "STL003",
                    f"duplicate job id {job.job_id!r} "
                    f"({id_counts[job.job_id]} declarations)",
                    path,
                    job.line,
                )
            )
            continue
        seen_ids.add(job.job_id)
        node_lines[job.job_id] = job.line

    good_edges: List[Tuple[str, str, int]] = []
    edge_counts: Counter = Counter()
    for edge in raw.edges:
        if edge.parent == edge.child:
            findings.append(
                make_finding(
                    "STL007",
                    f"job {edge.child!r} depends on itself",
                    path,
                    edge.line,
                )
            )
            continue
        dangling = [ref for ref in (edge.parent, edge.child) if ref not in seen_ids]
        if dangling:
            for ref in dangling:
                findings.append(
                    make_finding(
                        "STL002",
                        f"dependency {edge.parent!r} -> {edge.child!r} "
                        f"references undefined job {ref!r}",
                        path,
                        edge.line,
                    )
                )
            continue
        edge_counts[(edge.parent, edge.child)] += 1
        if edge_counts[(edge.parent, edge.child)] == 2:
            findings.append(
                make_finding(
                    "STL012",
                    f"dependency {edge.parent!r} -> {edge.child!r} "
                    "declared more than once",
                    path,
                    edge.line,
                )
            )
        if edge_counts[(edge.parent, edge.child)] == 1:
            good_edges.append((edge.parent, edge.child, edge.line))

    findings.extend(_graph_findings(node_lines, good_edges, path, "STL001"))

    producers: Dict[str, List[str]] = {}
    for job in raw.jobs:
        for lfn in job.outputs:
            producers.setdefault(lfn, []).append(job.job_id)
    for lfn, jobs in producers.items():
        if len(jobs) > 1:
            findings.append(
                make_finding(
                    "STL006",
                    f"file {lfn!r} is produced by multiple jobs: "
                    + ", ".join(repr(j) for j in jobs),
                    path,
                    node_lines.get(jobs[1], 0),
                )
            )
    for job in raw.jobs:
        for lfn in job.inputs:
            if lfn not in producers:
                findings.append(
                    make_finding(
                        "STL005",
                        f"job {job.job_id!r} consumes file {lfn!r} "
                        "which no job produces (must be staged in)",
                        path,
                        job.line,
                    )
                )
    return findings


# -------------------------------------------------------------- taskgraph --
def lint_taskgraph(source, path: str = "<taskgraph>") -> List[Finding]:
    """All findings for one task-graph XML document (path or XML text)."""
    try:
        raw: RawTaskGraph = taskgraph_structure(source)
    except ET.ParseError as exc:
        return [make_finding("STL010", f"not well-formed XML: {exc}", path, 1)]
    except BundleError as exc:
        return [make_finding("STL010", str(exc), path, 1)]
    return _lint_taskgraph_raw(raw, path)


def _lint_taskgraph_raw(raw: RawTaskGraph, path: str) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[str] = set()
    node_lines: Dict[str, int] = {}
    for task in raw.tasks:
        if task.name in seen:
            findings.append(
                make_finding(
                    "STL003",
                    f"duplicate task name {task.name!r} in graph {raw.name!r}",
                    path,
                    task.line,
                )
            )
        else:
            seen.add(task.name)
            node_lines[task.name] = task.line
        if task.type_name not in UNIT_CODECS:
            findings.append(
                make_finding(
                    "STL011",
                    f"task {task.name!r} uses unknown unit type "
                    f"{task.type_name!r} (no registered codec)",
                    path,
                    task.line,
                )
            )
        for param in task.bad_params:
            findings.append(
                make_finding(
                    "STL013",
                    f"task {task.name!r} parameter {param!r} "
                    "payload is not valid JSON",
                    path,
                    task.line,
                )
            )

    good_edges: List[Tuple[str, str, int]] = []
    for src, dst, line in raw.cables:
        if src == dst:
            findings.append(
                make_finding(
                    "STL007", f"task {dst!r} is cabled to itself", path, line
                )
            )
            continue
        dangling = [ref for ref in (src, dst) if ref not in seen]
        if dangling:
            for ref in dangling:
                findings.append(
                    make_finding(
                        "STL002",
                        f"cable {src!r} -> {dst!r} references "
                        f"undefined task {ref!r}",
                        path,
                        line,
                    )
                )
            continue
        good_edges.append((src, dst, line))

    # Loops are legal in continuous mode, so a Triana cycle is a warning
    # (STL009) rather than the DAX's hard error (STL001).
    findings.extend(_graph_findings(node_lines, good_edges, path, "STL009"))

    for sub in raw.subgraphs:
        findings.extend(_lint_taskgraph_raw(sub, path))
    return findings
