"""Mini object-relational layer (SQLAlchemy substitute): sqlite + memory."""
from repro.orm.columns import Boolean, Column, ColumnType, Integer, Real, Text
from repro.orm.database import Database, MemoryDatabase, SqliteDatabase, connect
from repro.orm.query import Predicate, Query
from repro.orm.table import Table

__all__ = [
    "Boolean",
    "Column",
    "ColumnType",
    "Integer",
    "Real",
    "Text",
    "Database",
    "MemoryDatabase",
    "SqliteDatabase",
    "connect",
    "Predicate",
    "Query",
    "Table",
]
