"""Column and type metadata for the mini object-relational layer.

The Stampede loader used SQLAlchemy to target SQLite/MySQL/PostgreSQL; the
reproduction ships its own small metadata layer with two backends (sqlite3
and pure-memory).  Types convert between Python values and storage values
and carry enough DDL info for sqlite.
"""
from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ColumnType",
    "Integer",
    "Real",
    "Text",
    "Boolean",
    "Column",
]


class ColumnType:
    """Base column type: storage affinity + value coercion both ways."""

    sql_name = "TEXT"

    def to_storage(self, value: Any) -> Any:
        return value

    def from_storage(self, value: Any) -> Any:
        return value

    def __repr__(self) -> str:
        return type(self).__name__


class Integer(ColumnType):
    sql_name = "INTEGER"

    def to_storage(self, value: Any) -> Optional[int]:
        return None if value is None else int(value)

    from_storage = to_storage


class Real(ColumnType):
    sql_name = "REAL"

    def to_storage(self, value: Any) -> Optional[float]:
        return None if value is None else float(value)

    from_storage = to_storage


class Text(ColumnType):
    sql_name = "TEXT"

    def to_storage(self, value: Any) -> Optional[str]:
        return None if value is None else str(value)

    from_storage = to_storage


class Boolean(ColumnType):
    """Stored as 0/1 integers (sqlite has no native boolean)."""

    sql_name = "INTEGER"

    def to_storage(self, value: Any) -> Optional[int]:
        if value is None:
            return None
        if isinstance(value, str):
            return 1 if value.lower() in ("1", "true", "t", "yes") else 0
        return 1 if value else 0

    def from_storage(self, value: Any) -> Optional[bool]:
        return None if value is None else bool(value)


class Column:
    """One column: name, type and constraints."""

    __slots__ = ("name", "type", "primary_key", "nullable", "default", "index")

    def __init__(
        self,
        name: str,
        type_: ColumnType,
        primary_key: bool = False,
        nullable: bool = True,
        default: Any = None,
        index: bool = False,
    ):
        if not name.isidentifier():
            raise ValueError(f"invalid column name {name!r}")
        self.name = name
        self.type = type_
        self.primary_key = primary_key
        self.nullable = nullable and not primary_key
        self.default = default
        self.index = index

    def ddl(self) -> str:
        parts = [self.name, self.type.sql_name]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        elif not self.nullable:
            parts.append("NOT NULL")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type!r})"
