"""Database backends for the mini-ORM: sqlite3 and pure-memory.

Connection strings follow the SQLAlchemy convention the paper's loader
used on its command line::

    sqlite:///test.db      -> sqlite file
    sqlite:///:memory:     -> sqlite in memory
    memory://              -> pure-Python dict backend

Both backends expose explicit transaction scoping via
:meth:`Database.transaction`: statements issued inside the context
manager commit (or roll back) as one unit, which is what lets the
loader turn a batch of inserts plus its coalesced updates into a single
fsync on the file backend.  Outside a transaction each statement
auto-commits, preserving the original per-statement durability.
"""
from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.orm.query import Query
from repro.orm.table import Table

__all__ = ["Database", "SqliteDatabase", "MemoryDatabase", "connect"]


class Database:
    """Abstract backend: DDL, inserts (single + executemany), query, count.

    Backends share a per-connection **max-id cache**: the first
    :meth:`max_value` call per (table, column) runs the real aggregate
    (an SQL round-trip, or an O(n) scan on the memory backend) and
    subsequent calls are O(1) dict hits, kept current by the insert
    paths.  Without it, every component that seeds a surrogate-key
    sequence over the same connection (archive sequences, the loader
    DLQ, checkpoint recovery) re-derives the maximum from scratch.
    """

    #: Exception types a caller may treat as transient and retry.
    TRANSIENT_ERRORS: tuple = ()

    def __init__(self):
        # (table_name, column_name) -> current max (never None once set)
        self._max_cache: Dict[tuple, Any] = {}

    # -- max-id cache maintenance -----------------------------------------
    def _bump_max_cache(self, table: Table, rows: Iterable[Dict[str, Any]]) -> None:
        """Fold freshly inserted rows into any cached maxima for ``table``."""
        if not self._max_cache:
            return
        for (tname, column), current in list(self._max_cache.items()):
            if tname != table.name:
                continue
            best = current
            for row in rows:
                value = row.get(column)
                if value is not None and (best is None or value > best):
                    best = value
            self._max_cache[(tname, column)] = best

    def _drop_max_cache(self, table_name: Optional[str] = None) -> None:
        """Invalidate cached maxima (all, or one table's) after a rollback
        or an update that may have touched a cached column."""
        if table_name is None:
            self._max_cache.clear()
        else:
            for key in [k for k in self._max_cache if k[0] == table_name]:
                del self._max_cache[key]

    def create_tables(self, tables: Sequence[Table]) -> None:
        raise NotImplementedError

    def insert(self, table: Table, row: Dict[str, Any]) -> None:
        raise NotImplementedError

    def insert_many(self, table: Table, rows: Iterable[Dict[str, Any]]) -> int:
        raise NotImplementedError

    def select(self, query: Query) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def update(
        self,
        table: Table,
        values: Dict[str, Any],
        where: Dict[str, Any],
    ) -> int:
        raise NotImplementedError

    def delete(self, table: Table, where: Dict[str, Any]) -> int:
        """Delete rows matching ``where`` (a list/tuple/set value means IN).

        Returns the number of rows removed.  The tiering migration is the
        intended caller: it moves finished workflows out of a hot shard,
        so deletes are whole-tree, cold-path operations — no statement
        cache, and cached maxima for the table are simply dropped.
        """
        raise NotImplementedError

    def count(self, table: Table) -> int:
        raise NotImplementedError

    def count_where(self, query: Query) -> int:
        """COUNT(*) of the rows matching the query's predicates."""
        raise NotImplementedError

    def max_value(self, table: Table, column: str) -> Optional[Any]:
        """MAX(column) over the table, or None if the table is empty."""
        raise NotImplementedError

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """Scope a group of statements into one atomic commit.

        Nested calls join the outermost transaction.  The base
        implementation is a no-op for backends without durability.
        """
        yield self

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class SqliteDatabase(Database):
    """sqlite3-backed storage; thread-safe via a reentrant connection lock.

    File-backed databases run in WAL mode with NORMAL synchronous and a
    generous page cache — the tuning the high-rate loader path needs.
    The connection runs in autocommit mode; :meth:`transaction` issues
    explicit BEGIN IMMEDIATE / COMMIT / ROLLBACK and holds the lock for
    the whole scope, so a loader flush is one write transaction even
    with reader threads around.
    """

    TRANSIENT_ERRORS = (sqlite3.OperationalError,)

    def __init__(self, path: str = ":memory:"):
        super().__init__()
        self.path = path
        # isolation_level=None -> autocommit; transactions are explicit.
        self._conn = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        self._lock = threading.RLock()
        self._txn_depth = 0
        # SQL text cache: building INSERT/UPDATE strings per call is pure
        # Python overhead on the hot insert path; statements are keyed by
        # (kind, table, column names) and reused forever.
        self._stmt_cache: Dict[tuple, str] = {}
        self._apply_pragmas()

    def _apply_pragmas(self) -> None:
        cur = self._conn.cursor()
        if self.path not in (":memory:", ""):
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
        cur.execute("PRAGMA temp_store=MEMORY")
        cur.execute("PRAGMA cache_size=-65536")  # 64 MiB page cache

    @contextmanager
    def transaction(self) -> Iterator["SqliteDatabase"]:
        with self._lock:
            self._txn_depth += 1
            outermost = self._txn_depth == 1
            if outermost:
                self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self
            except BaseException:
                if outermost:
                    self._conn.rollback()
                    # inserts inside the aborted scope may have bumped
                    # cached maxima past what is durable
                    self._drop_max_cache()
                raise
            else:
                if outermost:
                    self._conn.commit()
            finally:
                self._txn_depth -= 1

    def create_tables(self, tables: Sequence[Table]) -> None:
        with self._lock:
            cur = self._conn.cursor()
            for table in tables:
                cur.execute(table.create_sql())
                for stmt in table.index_sql():
                    cur.execute(stmt)

    def _insert_sql(self, table: Table, names: Sequence[str]) -> str:
        key = ("insert", table.name, tuple(names))
        sql = self._stmt_cache.get(key)
        if sql is None:
            sql = self._stmt_cache[key] = (
                f"INSERT INTO {table.name} ({', '.join(names)}) "
                f"VALUES ({', '.join('?' for _ in names)})"
            )
        return sql

    def insert(self, table: Table, row: Dict[str, Any]) -> None:
        coerced = table.coerce_row(row)
        names = list(coerced)
        sql = self._insert_sql(table, names)
        with self._lock:
            self._conn.execute(sql, [coerced[n] for n in names])
            self._bump_max_cache(table, (coerced,))

    def insert_many(self, table: Table, rows: Iterable[Dict[str, Any]]) -> int:
        coerced = [table.coerce_row(r) for r in rows]
        if not coerced:
            return 0
        names = table.column_names()
        sql = self._insert_sql(table, names)
        params = [[row.get(n) for n in names] for row in coerced]
        with self._lock:
            self._conn.executemany(sql, params)
            self._bump_max_cache(table, coerced)
        return len(coerced)

    def select(self, query: Query) -> List[Dict[str, Any]]:
        sql, params = query.to_sql()
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [query.table.from_storage(r) for r in rows]

    def update(
        self, table: Table, values: Dict[str, Any], where: Dict[str, Any]
    ) -> int:
        if not values:
            return 0
        set_names = list(values)
        where_names = list(where)
        key = ("update", table.name, tuple(set_names), tuple(where_names))
        sql = self._stmt_cache.get(key)
        if sql is None:
            sql = self._stmt_cache[key] = (
                f"UPDATE {table.name} SET "
                + ", ".join(f"{n} = ?" for n in set_names)
                + (
                    " WHERE " + " AND ".join(f"{n} = ?" for n in where_names)
                    if where_names
                    else ""
                )
            )
        params = [
            table.by_name[n].type.to_storage(values[n]) for n in set_names
        ] + [table.by_name[n].type.to_storage(where[n]) for n in where_names]
        with self._lock:
            cur = self._conn.execute(sql, params)
            if any((table.name, n) in self._max_cache for n in set_names):
                self._drop_max_cache(table.name)
            return cur.rowcount

    def delete(self, table: Table, where: Dict[str, Any]) -> int:
        clauses: List[str] = []
        params: List[Any] = []
        for name, value in where.items():
            column = table.by_name[name]
            if isinstance(value, (list, tuple, set, frozenset)):
                stored = [column.type.to_storage(v) for v in value]
                if not stored:
                    return 0  # IN () matches nothing
                clauses.append(
                    f"{name} IN ({', '.join('?' for _ in stored)})"
                )
                params.extend(stored)
            else:
                clauses.append(f"{name} = ?")
                params.append(column.type.to_storage(value))
        sql = f"DELETE FROM {table.name}" + (
            " WHERE " + " AND ".join(clauses) if clauses else ""
        )
        with self._lock:
            cur = self._conn.execute(sql, params)
            if cur.rowcount:
                self._drop_max_cache(table.name)
            return cur.rowcount

    def count(self, table: Table) -> int:
        with self._lock:
            (n,) = self._conn.execute(f"SELECT COUNT(*) FROM {table.name}").fetchone()
        return int(n)

    def count_where(self, query: Query) -> int:
        sql, params = query.to_count_sql()
        with self._lock:
            (n,) = self._conn.execute(sql, params).fetchone()
        return int(n)

    def max_value(self, table: Table, column: str) -> Optional[Any]:
        if column not in table.by_name:
            raise ValueError(f"no column {column!r} in table {table.name!r}")
        key = (table.name, column)
        with self._lock:
            if key in self._max_cache:
                value = self._max_cache[key]
            else:
                (value,) = self._conn.execute(
                    f"SELECT MAX({column}) FROM {table.name}"
                ).fetchone()
                self._max_cache[key] = value
        return None if value is None else table.by_name[column].type.from_storage(value)

    def pragma(self, name: str) -> Any:
        """Read one PRAGMA value (introspection for tests/diagnostics)."""
        with self._lock:
            row = self._conn.execute(f"PRAGMA {name}").fetchone()
        return row[0] if row else None

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class MemoryDatabase(Database):
    """Pure-Python backend: rows are dicts in per-table lists.

    ``transaction`` only provides grouping semantics (no rollback): the
    backend has no durability to protect, and snapshotting every table
    per batch would defeat its purpose as the fast in-process store.
    """

    def __init__(self):
        super().__init__()
        self._tables: Dict[str, List[Dict[str, Any]]] = {}
        self._meta: Dict[str, Table] = {}
        self._lock = threading.RLock()
        # primary-key index: table name -> {stored pk value -> row dict}.
        # update() by exact pk — the loader's dominant write shape — becomes
        # one dict hit instead of a full-table scan.  Tables where a pk
        # value repeats (uniqueness is not enforced here) drop to scans.
        self._pk_index: Dict[str, Dict[Any, Dict[str, Any]]] = {}
        self._pk_degraded: set = set()

    def _index_row(self, table: Table, row: Dict[str, Any]) -> None:
        pk = table.primary_key
        if pk is None or table.name in self._pk_degraded:
            return
        value = row.get(pk.name)
        if value is None:
            return
        index = self._pk_index.setdefault(table.name, {})
        if value in index:
            self._pk_degraded.add(table.name)
            del self._pk_index[table.name]
        else:
            index[value] = row

    @contextmanager
    def transaction(self) -> Iterator["MemoryDatabase"]:
        with self._lock:
            yield self

    def create_tables(self, tables: Sequence[Table]) -> None:
        with self._lock:
            for table in tables:
                self._tables.setdefault(table.name, [])
                self._meta[table.name] = table

    def _require(self, table: Table) -> List[Dict[str, Any]]:
        if table.name not in self._tables:
            raise KeyError(f"table {table.name!r} does not exist (create_tables first)")
        return self._tables[table.name]

    def insert(self, table: Table, row: Dict[str, Any]) -> None:
        coerced = table.coerce_row(row)
        with self._lock:
            self._require(table).append(coerced)
            self._index_row(table, coerced)
            self._bump_max_cache(table, (coerced,))

    def insert_many(self, table: Table, rows: Iterable[Dict[str, Any]]) -> int:
        coerced = [table.coerce_row(r) for r in rows]
        with self._lock:
            self._require(table).extend(coerced)
            for row in coerced:
                self._index_row(table, row)
            self._bump_max_cache(table, coerced)
        return len(coerced)

    def select(self, query: Query) -> List[Dict[str, Any]]:
        with self._lock:
            rows = list(self._require(query.table))
        stored = query.apply(rows)
        cols = query.table.columns
        return [
            {c.name: c.type.from_storage(r.get(c.name)) for c in cols} for r in stored
        ]

    def update(
        self, table: Table, values: Dict[str, Any], where: Dict[str, Any]
    ) -> int:
        stored_values = {
            n: table.by_name[n].type.to_storage(v) for n, v in values.items()
        }
        stored_where = {
            n: table.by_name[n].type.to_storage(v) for n, v in where.items()
        }
        changed = 0
        pk = table.primary_key
        with self._lock:
            rows = self._require(table)
            target_rows: Iterable[Dict[str, Any]] = rows
            # exact-pk updates resolve through the index: one dict hit
            # instead of scanning the table per call.
            if (
                pk is not None
                and len(stored_where) == 1
                and pk.name in stored_where
                and stored_where[pk.name] is not None
                and table.name not in self._pk_degraded
            ):
                hit = self._pk_index.get(table.name, {}).get(
                    stored_where[pk.name]
                )
                target_rows = (hit,) if hit is not None else ()
            for row in target_rows:
                if all(row.get(n) == v for n, v in stored_where.items()):
                    if pk is not None and pk.name in stored_values:
                        # rewriting the key itself invalidates the index
                        self._pk_degraded.add(table.name)
                        self._pk_index.pop(table.name, None)
                    row.update(stored_values)
                    changed += 1
            if changed and any(
                (table.name, n) in self._max_cache for n in stored_values
            ):
                self._drop_max_cache(table.name)
        return changed

    def delete(self, table: Table, where: Dict[str, Any]) -> int:
        stored: Dict[str, Any] = {}
        for name, value in where.items():
            column = table.by_name[name]
            if isinstance(value, (list, tuple, set, frozenset)):
                stored[name] = frozenset(
                    column.type.to_storage(v) for v in value
                )
            else:
                stored[name] = column.type.to_storage(value)

        def matches(row: Dict[str, Any]) -> bool:
            for name, value in stored.items():
                if isinstance(value, frozenset):
                    if row.get(name) not in value:
                        return False
                elif row.get(name) != value:
                    return False
            return True

        with self._lock:
            rows = self._require(table)
            keep = [r for r in rows if not matches(r)]
            removed = len(rows) - len(keep)
            if removed:
                self._tables[table.name] = keep
                # rebuild the pk index: a delete may clear the duplicate
                # that degraded it, so start clean and re-derive
                self._pk_index.pop(table.name, None)
                self._pk_degraded.discard(table.name)
                for row in keep:
                    self._index_row(table, row)
                self._drop_max_cache(table.name)
        return removed

    def count(self, table: Table) -> int:
        with self._lock:
            return len(self._require(table))

    def count_where(self, query: Query) -> int:
        with self._lock:
            rows = list(self._require(query.table))
        return sum(
            1 for r in rows if all(p.evaluate(r) for p in query.predicates)
        )

    def max_value(self, table: Table, column: str) -> Optional[Any]:
        if column not in table.by_name:
            raise ValueError(f"no column {column!r} in table {table.name!r}")
        key = (table.name, column)
        with self._lock:
            if key in self._max_cache:
                return self._max_cache[key]
            rows = self._require(table)
            values = [r.get(column) for r in rows if r.get(column) is not None]
            value = max(values) if values else None
            self._max_cache[key] = value
        return value


def connect(conn_string: str) -> Database:
    """Open a backend from a SQLAlchemy-style connection string."""
    if conn_string.startswith("sqlite:///"):
        return SqliteDatabase(conn_string[len("sqlite:///") :] or ":memory:")
    if conn_string in ("memory://", "memory"):
        return MemoryDatabase()
    raise ValueError(
        f"unsupported connection string {conn_string!r}; "
        "use 'sqlite:///PATH' or 'memory://'"
    )
