"""Database backends for the mini-ORM: sqlite3 and pure-memory.

Connection strings follow the SQLAlchemy convention the paper's loader
used on its command line::

    sqlite:///test.db      -> sqlite file
    sqlite:///:memory:     -> sqlite in memory
    memory://              -> pure-Python dict backend
"""
from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.orm.query import Query
from repro.orm.table import Table

__all__ = ["Database", "SqliteDatabase", "MemoryDatabase", "connect"]


class Database:
    """Abstract backend: DDL, inserts (single + executemany), query, count."""

    def create_tables(self, tables: Sequence[Table]) -> None:
        raise NotImplementedError

    def insert(self, table: Table, row: Dict[str, Any]) -> None:
        raise NotImplementedError

    def insert_many(self, table: Table, rows: Iterable[Dict[str, Any]]) -> int:
        raise NotImplementedError

    def select(self, query: Query) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def update(
        self,
        table: Table,
        values: Dict[str, Any],
        where: Dict[str, Any],
    ) -> int:
        raise NotImplementedError

    def count(self, table: Table) -> int:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class SqliteDatabase(Database):
    """sqlite3-backed storage; thread-safe via a connection lock."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()

    def create_tables(self, tables: Sequence[Table]) -> None:
        with self._lock:
            cur = self._conn.cursor()
            for table in tables:
                cur.execute(table.create_sql())
                for stmt in table.index_sql():
                    cur.execute(stmt)
            self._conn.commit()

    def insert(self, table: Table, row: Dict[str, Any]) -> None:
        coerced = table.coerce_row(row)
        names = list(coerced)
        sql = (
            f"INSERT INTO {table.name} ({', '.join(names)}) "
            f"VALUES ({', '.join('?' for _ in names)})"
        )
        with self._lock:
            self._conn.execute(sql, [coerced[n] for n in names])
            self._conn.commit()

    def insert_many(self, table: Table, rows: Iterable[Dict[str, Any]]) -> int:
        coerced = [table.coerce_row(r) for r in rows]
        if not coerced:
            return 0
        names = table.column_names()
        sql = (
            f"INSERT INTO {table.name} ({', '.join(names)}) "
            f"VALUES ({', '.join('?' for _ in names)})"
        )
        params = [[row.get(n) for n in names] for row in coerced]
        with self._lock:
            self._conn.executemany(sql, params)
            self._conn.commit()
        return len(coerced)

    def select(self, query: Query) -> List[Dict[str, Any]]:
        sql, params = query.to_sql()
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [query.table.from_storage(r) for r in rows]

    def update(
        self, table: Table, values: Dict[str, Any], where: Dict[str, Any]
    ) -> int:
        if not values:
            return 0
        set_names = list(values)
        where_names = list(where)
        sql = (
            f"UPDATE {table.name} SET "
            + ", ".join(f"{n} = ?" for n in set_names)
            + (
                " WHERE " + " AND ".join(f"{n} = ?" for n in where_names)
                if where_names
                else ""
            )
        )
        params = [
            table.by_name[n].type.to_storage(values[n]) for n in set_names
        ] + [table.by_name[n].type.to_storage(where[n]) for n in where_names]
        with self._lock:
            cur = self._conn.execute(sql, params)
            self._conn.commit()
            return cur.rowcount

    def count(self, table: Table) -> int:
        with self._lock:
            (n,) = self._conn.execute(f"SELECT COUNT(*) FROM {table.name}").fetchone()
        return int(n)

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class MemoryDatabase(Database):
    """Pure-Python backend: rows are dicts in per-table lists."""

    def __init__(self):
        self._tables: Dict[str, List[Dict[str, Any]]] = {}
        self._meta: Dict[str, Table] = {}
        self._lock = threading.Lock()

    def create_tables(self, tables: Sequence[Table]) -> None:
        with self._lock:
            for table in tables:
                self._tables.setdefault(table.name, [])
                self._meta[table.name] = table

    def _require(self, table: Table) -> List[Dict[str, Any]]:
        if table.name not in self._tables:
            raise KeyError(f"table {table.name!r} does not exist (create_tables first)")
        return self._tables[table.name]

    def insert(self, table: Table, row: Dict[str, Any]) -> None:
        coerced = table.coerce_row(row)
        with self._lock:
            self._require(table).append(coerced)

    def insert_many(self, table: Table, rows: Iterable[Dict[str, Any]]) -> int:
        coerced = [table.coerce_row(r) for r in rows]
        with self._lock:
            self._require(table).extend(coerced)
        return len(coerced)

    def select(self, query: Query) -> List[Dict[str, Any]]:
        with self._lock:
            rows = list(self._require(query.table))
        stored = query.apply(rows)
        cols = query.table.columns
        return [
            {c.name: c.type.from_storage(r.get(c.name)) for c in cols} for r in stored
        ]

    def update(
        self, table: Table, values: Dict[str, Any], where: Dict[str, Any]
    ) -> int:
        stored_values = {
            n: table.by_name[n].type.to_storage(v) for n, v in values.items()
        }
        stored_where = {
            n: table.by_name[n].type.to_storage(v) for n, v in where.items()
        }
        changed = 0
        with self._lock:
            for row in self._require(table):
                if all(row.get(n) == v for n, v in stored_where.items()):
                    row.update(stored_values)
                    changed += 1
        return changed

    def count(self, table: Table) -> int:
        with self._lock:
            return len(self._require(table))


def connect(conn_string: str) -> Database:
    """Open a backend from a SQLAlchemy-style connection string."""
    if conn_string.startswith("sqlite:///"):
        return SqliteDatabase(conn_string[len("sqlite:///") :] or ":memory:")
    if conn_string in ("memory://", "memory"):
        return MemoryDatabase()
    raise ValueError(
        f"unsupported connection string {conn_string!r}; "
        "use 'sqlite:///PATH' or 'memory://'"
    )
