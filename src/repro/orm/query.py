"""Backend-neutral query builder.

A :class:`Query` is a declarative description — table, predicates, ordering,
limit — that each backend executes its own way: the sqlite backend compiles
it to parameterized SQL, the memory backend evaluates predicates in Python.
Only the operators the Stampede tools need are implemented.
"""
from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.orm.table import Table

__all__ = ["Query", "Predicate"]

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
    "like": lambda a, b: a is not None and _like(a, b),
    "in": lambda a, b: a in b,
}


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with % and _ wildcards (case-insensitive, as sqlite defaults)."""
    import re

    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, str(value), re.IGNORECASE | re.DOTALL) is not None


class Predicate:
    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value: Any):
        if op not in _OPS:
            raise ValueError(f"unsupported operator {op!r}; use one of {sorted(_OPS)}")
        self.column = column
        self.op = op
        self.value = value

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return _OPS[self.op](row.get(self.column), self.value)

    def to_sql(self) -> Tuple[str, List[Any]]:
        if self.op == "in":
            values = list(self.value)
            if not values:
                return "1 = 0", []
            marks = ", ".join("?" for _ in values)
            return f"{self.column} IN ({marks})", values
        op = "LIKE" if self.op == "like" else self.op
        return f"{self.column} {op} ?", [self.value]


class Query:
    """Immutable-ish fluent query over one table."""

    def __init__(self, table: Table):
        self.table = table
        self.predicates: List[Predicate] = []
        self.order: List[Tuple[str, bool]] = []  # (column, descending)
        self.limit_count: Optional[int] = None
        self.offset_count: int = 0

    def where(self, column: str, op: str, value: Any) -> "Query":
        if column not in self.table.by_name:
            raise ValueError(f"no column {column!r} in table {self.table.name!r}")
        stored = self.table.by_name[column].type.to_storage
        coerced = [stored(v) for v in value] if op == "in" else stored(value)
        self.predicates.append(Predicate(column, op, coerced))
        return self

    def eq(self, column: str, value: Any) -> "Query":
        return self.where(column, "=", value)

    def order_by(self, column: str, descending: bool = False) -> "Query":
        if column not in self.table.by_name:
            raise ValueError(f"no column {column!r} in table {self.table.name!r}")
        self.order.append((column, descending))
        return self

    def limit(self, count: int, offset: int = 0) -> "Query":
        self.limit_count = count
        self.offset_count = offset
        return self

    def copy(self) -> "Query":
        """Independent clone; mutating the copy leaves the original alone."""
        clone = Query(self.table)
        clone.predicates = list(self.predicates)
        clone.order = list(self.order)
        clone.limit_count = self.limit_count
        clone.offset_count = self.offset_count
        return clone

    # -- sqlite compilation -----------------------------------------------------
    def to_sql(self) -> Tuple[str, List[Any]]:
        sql = f"SELECT {', '.join(self.table.column_names())} FROM {self.table.name}"
        params: List[Any] = []
        if self.predicates:
            clauses = []
            for pred in self.predicates:
                clause, vals = pred.to_sql()
                clauses.append(clause)
                params.extend(vals)
            sql += " WHERE " + " AND ".join(clauses)
        if self.order:
            terms = [f"{c} {'DESC' if d else 'ASC'}" for c, d in self.order]
            sql += " ORDER BY " + ", ".join(terms)
        if self.limit_count is not None:
            sql += " LIMIT ? OFFSET ?"
            params.extend([self.limit_count, self.offset_count])
        return sql, params

    def to_count_sql(self) -> Tuple[str, List[Any]]:
        """Compile to SELECT COUNT(*) over the predicates (no order/limit)."""
        sql = f"SELECT COUNT(*) FROM {self.table.name}"
        params: List[Any] = []
        if self.predicates:
            clauses = []
            for pred in self.predicates:
                clause, vals = pred.to_sql()
                clauses.append(clause)
                params.extend(vals)
            sql += " WHERE " + " AND ".join(clauses)
        return sql, params

    # -- memory evaluation ---------------------------------------------------------
    def apply(self, rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        out = [r for r in rows if all(p.evaluate(r) for p in self.predicates)]
        # Stable multi-key sort: apply keys in reverse significance order.
        for column, descending in reversed(self.order):
            out.sort(key=lambda r: _sort_key(r.get(column)), reverse=descending)
        if self.limit_count is not None:
            out = out[self.offset_count : self.offset_count + self.limit_count]
        elif self.offset_count:
            out = out[self.offset_count :]
        return out


def _sort_key(value: Any) -> Tuple[int, Any]:
    """None sorts first, then type-grouped values (mirrors sqlite NULL order)."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))
