"""Table metadata: ordered columns, row coercion, DDL generation."""
from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.orm.columns import Column

__all__ = ["Table"]


class Table:
    """Schema metadata for one table."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name.isidentifier():
            raise ValueError(f"invalid table name {name!r}")
        if not columns:
            raise ValueError(f"table {name!r} requires at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        pks = [c for c in columns if c.primary_key]
        if len(pks) > 1:
            raise ValueError(f"table {name!r} declares multiple primary keys")
        self.name = name
        self.columns: List[Column] = list(columns)
        self.by_name: Dict[str, Column] = {c.name: c for c in columns}
        self.primary_key: Optional[Column] = pks[0] if pks else None

    # -- DDL -------------------------------------------------------------------
    def create_sql(self) -> str:
        cols = ", ".join(c.ddl() for c in self.columns)
        return f"CREATE TABLE IF NOT EXISTS {self.name} ({cols})"

    def index_sql(self) -> List[str]:
        return [
            f"CREATE INDEX IF NOT EXISTS ix_{self.name}_{c.name} "
            f"ON {self.name} ({c.name})"
            for c in self.columns
            if c.index and not c.primary_key
        ]

    # -- row handling ------------------------------------------------------------
    def coerce_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and convert a row dict to storage representation."""
        unknown = set(row) - set(self.by_name)
        if unknown:
            raise ValueError(f"unknown column(s) for {self.name!r}: {sorted(unknown)}")
        out: Dict[str, Any] = {}
        for col in self.columns:
            if col.name in row:
                value = row[col.name]
            elif callable(col.default):
                value = col.default()
            else:
                value = col.default
            stored = col.type.to_storage(value)
            if stored is None and not col.nullable and not col.primary_key:
                raise ValueError(
                    f"column {self.name}.{col.name} is NOT NULL but got None"
                )
            out[col.name] = stored
        return out

    def from_storage(self, values: Sequence[Any]) -> Dict[str, Any]:
        """Convert a storage tuple (in column order) back to a row dict."""
        return {
            col.name: col.type.from_storage(value)
            for col, value in zip(self.columns, values)
        }

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.columns)} columns)"
