"""Table metadata: ordered columns, row coercion, DDL generation."""
from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.orm.columns import Column, Integer, Real, Text

__all__ = ["Table"]

#: sentinel distinguishing "column absent from the row" from None values
_MISSING = object()

#: column types whose to_storage is the identity when the value already
#: has exactly this Python type (bool is NOT an exact int match, so
#: Boolean columns and subclass tricks still coerce).
_PASSTHROUGH = {Integer: int, Real: float, Text: str}


class Table:
    """Schema metadata for one table.

    ``indexes`` declares composite (covering) indexes as column-name
    tuples; single-column indexes keep using ``Column(index=True)``.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        indexes: Sequence[Sequence[str]] = (),
    ):
        if not name.isidentifier():
            raise ValueError(f"invalid table name {name!r}")
        if not columns:
            raise ValueError(f"table {name!r} requires at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        pks = [c for c in columns if c.primary_key]
        if len(pks) > 1:
            raise ValueError(f"table {name!r} declares multiple primary keys")
        self.indexes: List[tuple] = [tuple(ix) for ix in indexes]
        for ix in self.indexes:
            unknown = [c for c in ix if c not in names]
            if unknown:
                raise ValueError(
                    f"index {ix} on table {name!r} names unknown column(s) "
                    f"{unknown}"
                )
        self.name = name
        self.columns: List[Column] = list(columns)
        self.by_name: Dict[str, Column] = {c.name: c for c in columns}
        self.primary_key: Optional[Column] = pks[0] if pks else None
        self._names: List[str] = names
        self._known = set(names)
        # per-column coercion plan, precomputed once: the insert hot path
        # loops over plain tuples instead of attribute lookups per row
        self._coerce_plan = [
            (
                c.name,
                c.type.to_storage,
                _PASSTHROUGH.get(type(c.type)),
                c.default,
                callable(c.default),
                c.nullable or c.primary_key,
            )
            for c in self.columns
        ]

    # -- DDL -------------------------------------------------------------------
    def create_sql(self) -> str:
        cols = ", ".join(c.ddl() for c in self.columns)
        return f"CREATE TABLE IF NOT EXISTS {self.name} ({cols})"

    def index_sql(self) -> List[str]:
        single = [
            f"CREATE INDEX IF NOT EXISTS ix_{self.name}_{c.name} "
            f"ON {self.name} ({c.name})"
            for c in self.columns
            if c.index and not c.primary_key
        ]
        composite = [
            f"CREATE INDEX IF NOT EXISTS ix_{self.name}_{'_'.join(ix)} "
            f"ON {self.name} ({', '.join(ix)})"
            for ix in self.indexes
        ]
        return single + composite

    # -- row handling ------------------------------------------------------------
    def coerce_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and convert a row dict to storage representation."""
        if not self._known.issuperset(row):
            unknown = set(row) - self._known
            raise ValueError(f"unknown column(s) for {self.name!r}: {sorted(unknown)}")
        out: Dict[str, Any] = {}
        get = row.get
        missing = _MISSING
        for (
            name,
            to_storage,
            exact,
            default,
            default_callable,
            nullable,
        ) in self._coerce_plan:
            value = get(name, missing)
            if value is missing:
                value = default() if default_callable else default
            if type(value) is exact:
                out[name] = value
                continue
            stored = to_storage(value)
            if stored is None and not nullable:
                raise ValueError(
                    f"column {self.name}.{name} is NOT NULL but got None"
                )
            out[name] = stored
        return out

    def from_storage(self, values: Sequence[Any]) -> Dict[str, Any]:
        """Convert a storage tuple (in column order) back to a row dict."""
        return {
            col.name: col.type.from_storage(value)
            for col, value in zip(self.columns, values)
        }

    def column_names(self) -> List[str]:
        return self._names

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.columns)} columns)"
