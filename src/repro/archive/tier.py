"""Tiering: move finished root workflows into an append-only long-term store.

WMArchive's shape (PAPERS.md): the hot store takes the write load, and a
compacting migration periodically moves *finished* workflows into a
long-term format that queries still reach.  Here the hot store is a
shard set (``repro.archive.shard``) and the long-term tier is a
directory of append-only JSONL segments::

    <shard-dir>/longterm/segment-000001.jsonl

One line per tiered **root workflow**: the full row set of its
hierarchy, keyed by the shard-local surrogate ids the rows had when
archived.  Record-local ids are enough — every foreign key of a
hierarchy resolves inside its own record (that is exactly what routing
by root id guarantees) — so appends need no global sequence and the
segment files never rewrite.  Ids are remapped at *read* time:
:meth:`LongTermStore.open_archive` materializes the segments into an
in-process archive with fresh surrogate ids, which then participates in
the federated query layer as one more source.

Durability contract of :func:`tier_finished`: the segment is written
and flushed *before* the hot-shard rows are deleted (delete runs as one
shard transaction).  A crash in between leaves the workflow present in
both tiers — visible to ``diff_canonical`` as duplicate rows, never as
lost rows.  Telemetry (``obs_event``) is not tiered: it is per-loader
self-monitoring, not workflow history.
"""
from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.archive import ddl
from repro.archive.store import _ENTITY_TABLE, StampedeArchive, _to_row
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    WorkflowRow,
    WorkflowStateRow,
)
from repro.model.states import WorkflowState

__all__ = ["LongTermStore", "TierError", "TieringReport", "tier_finished"]

SEGMENT_FORMAT = "segment-{:06d}.jsonl"

#: insertion order respecting foreign-key references (parents first);
#: reversed, it is the safe delete order
_TABLE_ORDER = [
    "workflow",
    "host",
    "job",
    "task",
    "task_edge",
    "job_edge",
    "workflowstate",
    "job_instance",
    "jobstate",
    "invocation",
]

#: surrogate-key columns -> the table whose primary key they reference
_ID_REFS = {
    "wf_id": "workflow",
    "parent_wf_id": "workflow",
    "root_wf_id": "workflow",
    "subwf_id": "workflow",
    "job_id": "job",
    "host_id": "host",
    "job_instance_id": "job_instance",
    "task_id": "task",
    "invocation_id": "invocation",
}

_ENTITY_BY_TABLE = {table.name: etype for etype, table in _ENTITY_TABLE.items()}

#: keep IN-lists comfortably under sqlite's bound-variable ceiling
_IN_CHUNK = 500


class TierError(RuntimeError):
    """A long-term record that cannot be materialized or migrated."""


def _chunks(values: Sequence[Any], size: int = _IN_CHUNK) -> Iterator[Sequence[Any]]:
    for start in range(0, len(values), size):
        yield values[start : start + size]


class LongTermStore:
    """Append-only JSONL segment directory for finished workflows."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def segments(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("segment-*.jsonl"))

    def append_segment(self, records: Sequence[Dict[str, Any]]) -> Optional[Path]:
        """Write one new segment holding ``records``; fsync before return."""
        if not records:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = self.segments()
        index = 1
        if existing:
            index = int(existing[-1].stem.split("-")[1]) + 1
        path = self.directory / SEGMENT_FORMAT.format(index)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return path

    def records(self) -> Iterator[Dict[str, Any]]:
        for segment in self.segments():
            with open(segment, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    def count(self) -> int:
        return sum(1 for _ in self.records())

    def root_uuids(self) -> List[str]:
        return [record["root_wf_uuid"] for record in self.records()]

    def open_archive(self) -> StampedeArchive:
        """Materialize every segment into a fresh in-process archive.

        Each record's local ids are remapped onto the new archive's
        sequences (two passes: allocate every primary key, then rewrite
        the foreign keys) so records from different shards and different
        tiering passes cannot collide.
        """
        archive = StampedeArchive.open("memory://")
        for record in self.records():
            self._materialize(archive, record)
        return archive

    @staticmethod
    def _materialize(archive: StampedeArchive, record: Dict[str, Any]) -> None:
        tables: Dict[str, List[Dict[str, Any]]] = record.get("tables", {})
        id_maps: Dict[str, Dict[int, int]] = {}
        # pass 1: fresh primary keys for every row in the record
        for table_name in _TABLE_ORDER:
            table = ddl.TABLES[table_name]
            pk = table.primary_key
            if pk is None:
                continue
            mapping = id_maps.setdefault(table_name, {})
            for row in tables.get(table_name, ()):
                old = row.get(pk.name)
                if old is not None:
                    mapping[old] = archive.next_id(table_name)
        # pass 2+3: rewrite ids and insert, parents first
        entities: List[Any] = []
        for table_name in _TABLE_ORDER:
            etype = _ENTITY_BY_TABLE[table_name]
            for row in tables.get(table_name, ()):
                rewritten = dict(row)
                for column, value in row.items():
                    ref = _ID_REFS.get(column)
                    if ref is None or value is None:
                        continue
                    try:
                        rewritten[column] = id_maps[ref][value]
                    except KeyError:
                        raise TierError(
                            f"record {record.get('root_wf_uuid')!r}: "
                            f"{table_name}.{column}={value} references a "
                            f"{ref} row missing from the record"
                        ) from None
                entities.append(etype(**rewritten))
        archive.insert_many(entities)


@dataclass
class TieringReport:
    """What one :func:`tier_finished` pass did."""

    scanned_roots: int = 0
    tiered_roots: int = 0
    skipped_roots: int = 0
    rows_moved: int = 0
    rows_by_table: Dict[str, int] = field(default_factory=dict)
    tiered_uuids: List[str] = field(default_factory=list)
    segments: List[str] = field(default_factory=list)


def _descendant_ids(archive: StampedeArchive, root_wf_id: int) -> List[int]:
    """The root and every transitive sub-workflow, by parent links."""
    seen = [root_wf_id]
    frontier = [root_wf_id]
    while frontier:
        children = []
        for chunk in _chunks(frontier):
            children.extend(
                w.wf_id
                for w in archive.query(WorkflowRow)
                .where("parent_wf_id", "in", list(chunk))
                .all()
            )
        frontier = [c for c in children if c not in seen]
        seen.extend(frontier)
    return seen


def _is_finished(archive: StampedeArchive, wf_ids: Sequence[int]) -> bool:
    """Every workflow of the tree has terminated (and none restarted past
    its last termination)."""
    for wf_id in wf_ids:
        states = (
            archive.query(WorkflowStateRow)
            .eq("wf_id", wf_id)
            .order_by("timestamp")
            .all()
        )
        if not states:
            return False
        if states[-1].state != WorkflowState.WORKFLOW_TERMINATED.value:
            return False
    return True


def _in_query(archive: StampedeArchive, etype: type, column: str, ids: Sequence[int]):
    rows: List[Any] = []
    for chunk in _chunks(list(ids)):
        rows.extend(
            archive.query(etype).where(column, "in", list(chunk)).all()
        )
    return rows


def _collect_tree(
    archive: StampedeArchive, wf_ids: Sequence[int]
) -> Dict[str, List[Dict[str, Any]]]:
    workflows = _in_query(archive, WorkflowRow, "wf_id", wf_ids)
    jobs = _in_query(archive, JobRow, "wf_id", wf_ids)
    job_ids = [j.job_id for j in jobs]
    instances = _in_query(archive, JobInstanceRow, "job_id", job_ids)
    ji_ids = [ji.job_instance_id for ji in instances]
    tables: Dict[str, List[Any]] = {
        "workflow": workflows,
        "host": _in_query(archive, HostRow, "wf_id", wf_ids),
        "job": jobs,
        "task": _in_query(archive, _ENTITY_BY_TABLE["task"], "wf_id", wf_ids),
        "task_edge": _in_query(
            archive, _ENTITY_BY_TABLE["task_edge"], "wf_id", wf_ids
        ),
        "job_edge": _in_query(
            archive, _ENTITY_BY_TABLE["job_edge"], "wf_id", wf_ids
        ),
        "workflowstate": _in_query(
            archive, WorkflowStateRow, "wf_id", wf_ids
        ),
        "job_instance": instances,
        "jobstate": _in_query(archive, JobStateRow, "job_instance_id", ji_ids),
        "invocation": _in_query(archive, InvocationRow, "wf_id", wf_ids),
    }
    return {
        name: [_to_row(entity) for entity in rows]
        for name, rows in tables.items()
    }


def _delete_tree(
    archive: StampedeArchive,
    tables: Dict[str, List[Dict[str, Any]]],
) -> int:
    """Remove one hierarchy's rows, children first, in one transaction."""
    from repro.core.rollup import drop_rollups

    deleted = 0
    with archive.transaction():
        # the hierarchy's materialized rollups leave with it (and the
        # rollup commit sequence bumps, so read caches notice)
        wf_ids = [
            r["wf_id"]
            for r in tables.get("workflow", [])
            if r.get("wf_id") is not None
        ]
        drop_rollups(archive, wf_ids)
        for table_name in reversed(_TABLE_ORDER):
            rows = tables.get(table_name, [])
            if not rows:
                continue
            table = ddl.TABLES[table_name]
            pk = table.primary_key
            if pk is not None:
                ids = [r[pk.name] for r in rows if r.get(pk.name) is not None]
                for chunk in _chunks(ids):
                    deleted += archive.delete(
                        _ENTITY_BY_TABLE[table_name], {pk.name: list(chunk)}
                    )
            else:
                # pk-less state/edge tables hang off wf_id or
                # job_instance_id; delete by the parent key set
                key = (
                    "job_instance_id"
                    if table_name == "jobstate"
                    else "wf_id"
                )
                ids = sorted({r[key] for r in rows})
                for chunk in _chunks(ids):
                    deleted += archive.delete(
                        _ENTITY_BY_TABLE[table_name], {key: list(chunk)}
                    )
    return deleted


def tier_finished(
    archives: Union[Iterable[StampedeArchive], Any],
    store: Optional[LongTermStore] = None,
) -> TieringReport:
    """Move every finished root hierarchy out of the hot archives.

    ``archives`` is a list of archives or a ``ShardSet`` (in which case
    ``store`` defaults to the set's ``longterm/`` directory).  Per
    archive: find root workflows (``parent_wf_id IS NULL``) whose whole
    tree has terminated, write them as one durable segment, then delete
    their rows in one shard transaction each.
    """
    shard_set = None
    if hasattr(archives, "archives"):  # a ShardSet
        shard_set = archives
        archives = shard_set.archives
    if store is None:
        if shard_set is None or shard_set.longterm_dir() is None:
            raise TierError(
                "tier_finished needs a LongTermStore (or a directory-backed "
                "ShardSet to derive one from)"
            )
        store = LongTermStore(shard_set.longterm_dir())

    report = TieringReport()
    for archive in archives:
        roots = [
            w
            for w in archive.query(WorkflowRow).all()
            if w.parent_wf_id is None
        ]
        report.scanned_roots += len(roots)
        tiered: List[Dict[str, Any]] = []
        trees: List[Dict[str, List[Dict[str, Any]]]] = []
        for root in roots:
            wf_ids = _descendant_ids(archive, root.wf_id)
            if not _is_finished(archive, wf_ids):
                report.skipped_roots += 1
                continue
            tables = _collect_tree(archive, wf_ids)
            tiered.append({"root_wf_uuid": root.wf_uuid, "tables": tables})
            trees.append(tables)
            report.tiered_uuids.append(root.wf_uuid)
        if not tiered:
            continue
        # durable first, delete second: a crash in between duplicates,
        # never loses (see module docstring)
        segment = store.append_segment(tiered)
        if segment is not None:
            report.segments.append(str(segment))
        for tables in trees:
            for name, rows in tables.items():
                report.rows_by_table[name] = report.rows_by_table.get(
                    name, 0
                ) + len(rows)
            report.rows_moved += _delete_tree(archive, tables)
        report.tiered_roots += len(tiered)
    return report
