"""Canonical (surrogate-free) archive dumps, and merging them.

Two loaders filling two archives from the same event stream produce the
same *information* but different surrogate ids: ``wf_id``/``job_id``/…
are per-archive insertion counters.  Comparing archives row-by-row —
the acceptance check for distributed ingest ("N loaders sharing a
consumer group must archive exactly what one loader would") — therefore
needs every foreign key rewritten onto the natural keys the events
themselves carry:

========================  ==============================================
surrogate                 natural identity
========================  ==============================================
``wf_id``                 ``wf_uuid``
``job_id``                ``(wf_uuid, exec_job_id)``
``task_id``               ``(wf_uuid, abs_task_id)``
``job_instance_id``       ``(wf_uuid, exec_job_id, job_submit_seq)``
``host_id``               ``(wf_uuid, hostname)``
========================  ==============================================

:func:`canonical_dump` renders one archive in that form;
:func:`merge_canonical` unions several dumps (duplicates are *kept*, so
a double-committed row shows up as a difference instead of being
silently absorbed).  ``obs_event`` rows are excluded by default: each
loader's self-monitoring telemetry is legitimately its own.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.archive.store import StampedeArchive
from repro.model.entities import (
    HostRow,
    InvocationRow,
    JobEdgeRow,
    JobInstanceRow,
    JobRow,
    JobStateRow,
    ObsEventRow,
    TaskEdgeRow,
    TaskRow,
    WorkflowRow,
    WorkflowStateRow,
)

__all__ = ["canonical_dump", "merge_canonical", "diff_canonical"]

Row = Tuple[object, ...]
Dump = Dict[str, List[Row]]


def _cell_key(value: object) -> tuple:
    # Rows mix None/str/numbers/tuples, which Python refuses to order
    # directly.  Sorting by repr() would do, except it is not stable
    # across archives: numerically equal cells can render differently
    # (``4`` vs ``4.0`` depending on the backend's storage affinity), so
    # two shards holding the same information could order rows
    # differently and a shard-set dump would not be byte-stable against
    # a single-db dump.  A type-ranked natural key keeps numeric
    # equality numeric and nests through tuple-valued cells.
    if value is None:
        return (0, "")
    if isinstance(value, (bool, int, float)):
        return (1, float(value))
    if isinstance(value, tuple):
        return (3, tuple(_cell_key(v) for v in value))
    return (2, str(value))


def _sorted(rows: List[Row]) -> List[Row]:
    # natural-key primary order, repr tiebreak for intra-dump
    # determinism between rows whose natural keys compare equal
    return sorted(rows, key=lambda r: (tuple(_cell_key(c) for c in r), repr(r)))


def canonical_dump(
    archive: StampedeArchive, include_obs: bool = False
) -> Dump:
    """Every Fig. 3 row with surrogate keys rewritten to natural keys.

    A partially-loaded archive (a snapshot taken mid-kill, a loader that
    never saw the plan events) can hold rows whose parents are absent.
    Those rewrite to deterministic ``<missing …>`` sentinel keys instead
    of raising, so :func:`diff_canonical` reports them as row
    differences — the useful answer for a partial archive — rather than
    the dump crashing before the comparison starts.
    """
    # Sentinels must not embed the dangling surrogate id: surrogates are
    # per-archive insertion counters, so the same torn row would render
    # differently depending on which shard it landed in.  The natural
    # key that *would* disambiguate is exactly what a missing parent
    # fails to provide, so all dangling references to one table share a
    # sentinel — deterministic and shard-independent.
    wf_uuid: Dict[int, str] = {
        w.wf_id: w.wf_uuid for w in archive.query(WorkflowRow).all()
    }

    def wf_of(wf_id: int) -> str:
        return wf_uuid.get(wf_id, "<missing workflow>")

    job_key: Dict[int, Tuple[str, str]] = {
        j.job_id: (wf_of(j.wf_id), j.exec_job_id)
        for j in archive.query(JobRow).all()
    }

    def job_of(job_id: int) -> Tuple[str, str]:
        return job_key.get(job_id, ("<missing job>", "?"))

    host_key: Dict[int, Tuple[str, str]] = {
        h.host_id: (wf_of(h.wf_id), h.hostname)
        for h in archive.query(HostRow).all()
    }
    ji_key: Dict[int, Tuple[str, str, int]] = {
        ji.job_instance_id: (*job_of(ji.job_id), ji.job_submit_seq)
        for ji in archive.query(JobInstanceRow).all()
    }

    def ji_of(job_instance_id: int) -> Tuple[str, str, int]:
        return ji_key.get(
            job_instance_id, ("<missing job-instance>", "?", -1)
        )
    # task.job_id is the EW job a task mapped to (nullable)
    job_name: Dict[Optional[int], Optional[str]] = {None: None}
    for jid, (_u, exec_job_id) in job_key.items():
        job_name[jid] = exec_job_id

    dump: Dump = {}
    dump["workflow"] = _sorted([
        (
            w.wf_uuid, w.dag_file_name, w.timestamp, w.submit_hostname,
            w.submit_dir, w.planner_version, w.user, w.grid_dn,
            w.planner_arguments, w.dax_label, w.dax_version, w.dax_file,
            wf_uuid.get(w.parent_wf_id) if w.parent_wf_id is not None else None,
            wf_uuid.get(w.root_wf_id) if w.root_wf_id is not None else None,
        )
        for w in archive.query(WorkflowRow).all()
    ])
    dump["workflowstate"] = _sorted([
        (wf_of(s.wf_id), s.state, s.timestamp, s.restart_count, s.status)
        for s in archive.query(WorkflowStateRow).all()
    ])
    dump["task"] = _sorted([
        (
            wf_of(t.wf_id), t.abs_task_id, job_name.get(t.job_id),
            t.transformation, t.argv, t.type_desc,
        )
        for t in archive.query(TaskRow).all()
    ])
    dump["task_edge"] = _sorted([
        (wf_of(e.wf_id), e.parent_abs_task_id, e.child_abs_task_id)
        for e in archive.query(TaskEdgeRow).all()
    ])
    dump["job"] = _sorted([
        (
            wf_of(j.wf_id), j.exec_job_id, j.submit_file, j.type_desc,
            j.clustered, j.max_retries, j.executable, j.argv, j.task_count,
        )
        for j in archive.query(JobRow).all()
    ])
    dump["job_edge"] = _sorted([
        (wf_of(e.wf_id), e.parent_exec_job_id, e.child_exec_job_id)
        for e in archive.query(JobEdgeRow).all()
    ])
    dump["job_instance"] = _sorted([
        (
            *ji_of(ji.job_instance_id),
            host_key.get(ji.host_id) if ji.host_id is not None else None,
            ji.sched_id, ji.site, ji.user, ji.work_dir, ji.local_duration,
            wf_uuid.get(ji.subwf_id) if ji.subwf_id is not None else None,
            ji.stdout_file, ji.stdout_text, ji.stderr_file, ji.stderr_text,
            ji.multiplier_factor, ji.exitcode,
        )
        for ji in archive.query(JobInstanceRow).all()
    ])
    dump["jobstate"] = _sorted([
        (
            *ji_of(s.job_instance_id),
            s.state, s.timestamp, s.jobstate_submit_seq,
        )
        for s in archive.query(JobStateRow).all()
    ])
    dump["invocation"] = _sorted([
        (
            *ji_of(i.job_instance_id), i.task_submit_seq, i.start_time,
            i.remote_duration, i.remote_cpu_time, i.exitcode,
            i.transformation, i.executable, i.argv, i.abs_task_id,
        )
        for i in archive.query(InvocationRow).all()
    ])
    dump["host"] = _sorted([
        (
            wf_of(h.wf_id), h.hostname, h.site, h.ip, h.uname,
            h.total_memory,
        )
        for h in archive.query(HostRow).all()
    ])
    if include_obs:
        dump["obs_event"] = _sorted([
            (o.ts, o.event, o.name, o.component, o.value, o.payload)
            for o in archive.query(ObsEventRow).all()
        ])
    return dump


def merge_canonical(*dumps: Dump) -> Dump:
    """Union several canonical dumps, keeping duplicates.

    Keeping duplicates is the point: a row committed by two group
    members appears twice in the merge and therefore fails the
    row-identity comparison against a single-loader baseline, instead
    of being masked by set semantics.
    """
    merged: Dump = {}
    for dump in dumps:
        for table, rows in dump.items():
            merged.setdefault(table, []).extend(rows)
    return {table: _sorted(rows) for table, rows in merged.items()}


def diff_canonical(expected: Dump, actual: Dump) -> List[str]:
    """Human-readable differences (empty list == row-identical)."""
    problems: List[str] = []
    for table in sorted(set(expected) | set(actual)):
        want = expected.get(table, [])
        got = actual.get(table, [])
        if want == got:
            continue
        missing = [r for r in want if r not in got]
        extra = [r for r in got if r not in want]
        problems.append(
            f"{table}: {len(want)} expected vs {len(got)} actual rows"
            + (f"; missing e.g. {missing[0]!r}" if missing else "")
            + (f"; extra e.g. {extra[0]!r}" if extra else "")
        )
    return problems
