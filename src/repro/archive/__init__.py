"""Relational archive: the Fig. 3 schema plus a typed store."""
from repro.archive.ddl import ALL_TABLES, TABLES
from repro.archive.store import EntityQuery, StampedeArchive

__all__ = ["ALL_TABLES", "TABLES", "EntityQuery", "StampedeArchive"]
