"""Sharded archive: a crc32 router over N independent WAL writer shards.

One sqlite writer tops out around the committed ``BENCH_loader.json``
rate; the ROADMAP's "millions of users" shape is the WMArchive one —
partition the write path across independent stores and federate reads.
This module provides:

:class:`ShardSet`
    N ``shard-XXX.db`` sqlite files plus a ``shards.json`` manifest in
    one directory.  The manifest pins the shard count; opening the
    directory with a different N raises :class:`ShardMismatchError`
    loudly, because re-hashing rows across a different modulus is a
    migration, not an open.

:func:`shard_for`
    The router: ``crc32(root_wf_uuid) % shards`` — byte-compatible with
    :func:`repro.bus.groups.partition_for`, so a consumer group with N
    partitions maps 1:1 onto N shards and a partition's member writes
    only its own shard.  Routing by *root* workflow id keeps a whole
    workflow hierarchy (and therefore every foreign-key chain) inside
    one shard.

:class:`ShardedLoader`
    The write path: one :class:`~repro.loader.StampedeLoader` per shard,
    each on its own writer thread with the PR 2/3 machinery intact —
    transactional batch flushes with retries, and a per-shard
    checkpoint row committed atomically with the shard's batch.  The
    exactly-once boundary is per shard: a shard's checkpoint covers
    exactly the events routed to that shard, so kill/resume replays
    nothing and loses nothing regardless of how far the other shards
    had progressed.

:func:`open_archive`
    The reader's entry point: a connection string, a plain sqlite path,
    a shard directory, or a glob of sqlite files — single archives come
    back as-is, shard sets come back federated (including the long-term
    tier when present) so CLIs are shard-oblivious.
"""
from __future__ import annotations

import glob as _glob
import json
import queue
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.archive.federate import FederatedArchive
from repro.archive.store import StampedeArchive
from repro.bus.groups import PartitionKeyer, partition_for
from repro.loader.checkpoint import CheckpointManager
from repro.loader.stampede_loader import StampedeLoader
from repro.model.entities import WorkflowRow
from repro.netlogger.events import NLEvent

__all__ = [
    "MANIFEST_NAME",
    "ShardError",
    "ShardMismatchError",
    "ShardSet",
    "ShardedLoader",
    "shard_for",
    "partition_events",
    "open_archive",
]

MANIFEST_NAME = "shards.json"
SHARD_FILE_FORMAT = "shard-{:03d}.db"
#: manifest router identifier; bumping the hash means a new router name,
#: which existing manifests then refuse to open
ROUTER_NAME = "crc32-root-wf"


class ShardError(RuntimeError):
    """A shard set that cannot be created, opened, or written."""


class ShardMismatchError(ShardError):
    """Shard-count (or router) disagreement between caller and manifest.

    Raised instead of silently re-hashing: with a different modulus the
    router would send existing workflows' new events to *different*
    shards, corrupting every hierarchy mid-stream.  Resharding is an
    explicit migration, never an open-time default.
    """


def shard_for(root_id: str, shards: int) -> int:
    """Shard index for a root workflow id — the bus partitioner verbatim,
    so bus partition ``p`` of an N-partition group is exactly shard ``p``
    of an N-shard set."""
    return partition_for(root_id, shards)


def partition_events(
    events: Iterable[NLEvent],
    shards: int,
    keyer: Optional[PartitionKeyer] = None,
) -> List[List[NLEvent]]:
    """Statically route an event stream into per-shard lists.

    Same learned-root semantics as the live loader: plan events teach
    the keyer the sub-workflow → root mapping as they stream through.
    Events without a workflow id (e.g. ``stampede.obs.*`` telemetry)
    hash on their event name, matching the bus router's routing-key
    default.
    """
    keyer = keyer or PartitionKeyer()
    out: List[List[NLEvent]] = [[] for _ in range(shards)]
    for event in events:
        key = keyer.key_for(event.attrs, default=event.event)
        out[partition_for(key, shards)].append(event)
    return out


# ---------------------------------------------------------------------------
# shard set (files + manifest)
# ---------------------------------------------------------------------------


class ShardSet:
    """N archives plus the manifest that pins their count.

    ``backend="memory"`` builds an anonymous in-process set (no
    directory, no manifest) for benchmarks and tests.
    """

    def __init__(
        self,
        directory: Optional[Path],
        shards: int,
        archives: List[StampedeArchive],
    ):
        self.directory = directory
        self.shards = shards
        self.archives = archives

    # -- construction -------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: Optional[Union[str, Path]],
        shards: int,
        backend: str = "sqlite",
    ) -> "ShardSet":
        """Create (or re-open, if the manifest already agrees) a shard set."""
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}")
        if backend == "memory":
            if directory is not None:
                raise ShardError("memory shard sets are anonymous (no directory)")
            archives = [
                StampedeArchive.open("memory://") for _ in range(shards)
            ]
            return cls(None, shards, archives)
        if backend != "sqlite":
            raise ShardError(f"unknown shard backend {backend!r}")
        if directory is None:
            raise ShardError("sqlite shard sets need a directory")
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.exists():
            cls._check_manifest(manifest_path, shards)
        else:
            manifest_path.write_text(
                json.dumps(
                    {"version": 1, "shards": shards, "router": ROUTER_NAME},
                    indent=2,
                )
                + "\n"
            )
        return cls(root, shards, cls._open_archives(root, shards))

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        expected_shards: Optional[int] = None,
    ) -> "ShardSet":
        root = Path(directory)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise ShardError(
                f"{root} is not a shard set (no {MANIFEST_NAME} manifest)"
            )
        shards = cls._check_manifest(manifest_path, expected_shards)
        return cls(root, shards, cls._open_archives(root, shards))

    @staticmethod
    def _check_manifest(path: Path, expected: Optional[int]) -> int:
        manifest = json.loads(path.read_text())
        shards = int(manifest["shards"])
        router = manifest.get("router", ROUTER_NAME)
        if router != ROUTER_NAME:
            raise ShardMismatchError(
                f"{path}: shard set routed by {router!r}, this build "
                f"routes by {ROUTER_NAME!r}; resharding is an explicit "
                "migration"
            )
        if expected is not None and expected != shards:
            raise ShardMismatchError(
                f"{path}: shard set has {shards} shards, caller expects "
                f"{expected}; re-hashing across a different modulus would "
                "scatter existing workflows — reshard explicitly instead"
            )
        return shards

    @staticmethod
    def _open_archives(root: Path, shards: int) -> List[StampedeArchive]:
        return [
            StampedeArchive.open(
                f"sqlite:///{root / SHARD_FILE_FORMAT.format(i)}"
            )
            for i in range(shards)
        ]

    # -- surface ------------------------------------------------------------
    def __len__(self) -> int:
        return self.shards

    def shard_for(self, root_id: str) -> int:
        return shard_for(root_id, self.shards)

    def longterm_dir(self) -> Optional[Path]:
        return self.directory / "longterm" if self.directory else None

    def federated(self, include_longterm: bool = True) -> FederatedArchive:
        """All shards (plus the long-term tier, when present) as one
        read-only archive."""
        sources: List[StampedeArchive] = list(self.archives)
        lt = self.longterm_dir()
        if include_longterm and lt is not None and lt.is_dir():
            from repro.archive.tier import LongTermStore

            store = LongTermStore(lt)
            if store.segments():
                sources.append(store.open_archive())
        return FederatedArchive(sources)

    def close(self) -> None:
        for archive in self.archives:
            archive.close()


# ---------------------------------------------------------------------------
# sharded write path
# ---------------------------------------------------------------------------


class _ShardWriter(threading.Thread):
    """One shard's writer: drains routed event chunks into its loader.

    The loader (and through it the shard's checkpoint) is touched only
    by this thread, so the per-shard flush keeps the PR 2 guarantee —
    batch + checkpoint commit atomically — without any cross-shard
    coordination.
    """

    def __init__(self, index: int, loader: StampedeLoader, queue_size: int):
        super().__init__(name=f"shard-writer-{index}", daemon=True)
        self.index = index
        self.loader = loader
        self.queue: "queue.Queue[Tuple[str, Any]]" = queue.Queue(queue_size)
        self.error: Optional[BaseException] = None
        #: checkpointed source-position floor; events at or below it were
        #: already committed by a previous run of *this shard* and are
        #: skipped on replay
        self.floor: int = 0

    def run(self) -> None:
        while True:
            kind, payload = self.queue.get()
            try:
                if kind == "events":
                    if self.error is None:
                        self._consume(payload)
                elif kind == "flush":
                    if self.error is None:
                        try:
                            self.loader.flush()
                        except BaseException as exc:  # noqa: BLE001
                            self.error = exc
                    payload.set()
                else:  # "stop"
                    if self.error is None:
                        try:
                            self.loader.flush()
                        except BaseException as exc:  # noqa: BLE001
                            self.error = exc
                    payload.set()
                    return
            except BaseException as exc:  # noqa: BLE001 - never kill the drain
                if self.error is None:
                    self.error = exc

    def _consume(self, chunk: List[Tuple[int, NLEvent]]) -> None:
        loader = self.loader
        floor = self.floor
        for position, event in chunk:
            if floor and position <= floor:
                continue
            loader.position = position
            loader.process(event)


class ShardedLoader:
    """Route events by root workflow id across per-shard writer threads.

    The front end (the caller's thread) only hashes and buffers; all
    parsing-adjacent work already happened upstream and all archive work
    happens on the writer threads.  ``flush()`` is a barrier: every
    routed event is committed (and checkpointed) in its shard when it
    returns, and any writer-side failure re-raises here.
    """

    def __init__(
        self,
        shard_set: ShardSet,
        batch_size: int = 500,
        strict: bool = True,
        validate: bool = False,
        checkpoint_source: Optional[str] = None,
        queue_size: int = 64,
        chunk_size: int = 256,
        rollup: bool = True,
    ):
        self.shard_set = shard_set
        self.checkpoint_source = checkpoint_source
        self._keyer = PartitionKeyer()
        self.writers: List[_ShardWriter] = []
        for index, archive in enumerate(shard_set.archives):
            checkpoint = (
                CheckpointManager(archive, checkpoint_source)
                if checkpoint_source is not None
                else None
            )
            loader = StampedeLoader(
                archive,
                batch_size=batch_size,
                strict=strict,
                validate=validate,
                checkpoint=checkpoint,
                rollup=rollup,
            )
            self.writers.append(_ShardWriter(index, loader, queue_size))
        self._buffers: List[List[Tuple[int, NLEvent]]] = [
            [] for _ in self.writers
        ]
        self._chunk_size = max(1, chunk_size)
        #: source position (file byte offset) of the last event handed to
        #: :meth:`process`; each shard persists the position of *its* last
        #: event with its own checkpoint
        self.position: int = 0
        #: events routed per shard (front-end counter; cheap to read)
        self.routed: List[int] = [0] * len(self.writers)
        self.wall_seconds: float = 0.0
        self._closed = False
        for writer in self.writers:
            writer.start()

    # -- routing ------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.writers)

    def shard_for_event(self, event: NLEvent) -> int:
        key = self._keyer.key_for(event.attrs, default=event.event)
        return partition_for(key, len(self.writers))

    # -- ingest -------------------------------------------------------------
    def process(self, event: NLEvent) -> None:
        index = self.shard_for_event(event)
        buffer = self._buffers[index]
        buffer.append((self.position, event))
        self.routed[index] += 1
        if len(buffer) >= self._chunk_size:
            self._buffers[index] = []
            self.writers[index].queue.put(("events", buffer))

    def process_all(self, events: Iterable[NLEvent]) -> "ShardedLoader":
        start = time.perf_counter()
        for event in events:
            self.process(event)
        self.flush()
        self.wall_seconds += time.perf_counter() - start
        return self

    def flush(self) -> None:
        """Barrier: every routed event committed in its shard, errors
        re-raised."""
        barriers = []
        for index, writer in enumerate(self.writers):
            buffer = self._buffers[index]
            if buffer:
                self._buffers[index] = []
                writer.queue.put(("events", buffer))
            done = threading.Event()
            writer.queue.put(("flush", done))
            barriers.append(done)
        for done in barriers:
            done.wait()
        self._raise_writer_errors()

    def close(self) -> None:
        """Flush, stop the writer threads, and re-raise any failure.

        The shard set itself stays open — the caller owns it (it may go
        on to tier, query, or re-load)."""
        if self._closed:
            return
        self._closed = True
        barriers = []
        for index, writer in enumerate(self.writers):
            buffer = self._buffers[index]
            if buffer:
                self._buffers[index] = []
                writer.queue.put(("events", buffer))
            done = threading.Event()
            writer.queue.put(("stop", done))
            barriers.append(done)
        for done in barriers:
            done.wait()
        for writer in self.writers:
            writer.join(timeout=10.0)
        self._raise_writer_errors()

    def _raise_writer_errors(self) -> None:
        for writer in self.writers:
            if writer.error is not None:
                raise ShardError(
                    f"shard {writer.index} writer failed: {writer.error!r}"
                ) from writer.error

    # -- checkpoint/resume --------------------------------------------------
    def resume(self) -> int:
        """Restore every shard's checkpoint; returns the re-read floor.

        The returned position is the *minimum* across shards: the source
        must be re-read from there, and each shard's writer skips events
        at or below its own (possibly further advanced) floor — replay
        is idempotent per shard without any cross-shard fsync ordering.
        """
        if self.checkpoint_source is None:
            raise ShardError("resume() needs a checkpoint_source")
        floors = []
        for writer in self.writers:
            position = writer.loader.resume()
            writer.floor = position
            floors.append(position)
        # Re-teach the router the sub-workflow -> root mappings already
        # archived: their plan events sit *below* the re-read floor, so
        # the keyer would otherwise route a resumed sub-workflow's tail
        # by its own id — onto the wrong shard.
        for archive in self.shard_set.archives:
            workflows = archive.query(WorkflowRow).all()
            uuid_by_id = {w.wf_id: w.wf_uuid for w in workflows}
            for w in workflows:
                root = (
                    uuid_by_id.get(w.root_wf_id)
                    if w.root_wf_id is not None
                    else None
                )
                self._keyer.learn(w.wf_uuid, root or w.wf_uuid)
        floor = min(floors)
        self.position = floor
        return floor

    # -- introspection ------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate + per-shard loader statistics."""
        per_shard = []
        totals = {
            "events_processed": 0,
            "rows_inserted": 0,
            "flushes": 0,
            "retries": 0,
        }
        for writer in self.writers:
            snap = writer.loader.stats.snapshot()
            snap["shard"] = writer.index
            snap["routed"] = self.routed[writer.index]
            per_shard.append(snap)
            for key in totals:
                totals[key] += snap.get(key, 0)
        totals["wall_seconds"] = self.wall_seconds
        totals["shards"] = len(self.writers)
        totals["per_shard"] = per_shard
        return totals


# ---------------------------------------------------------------------------
# shard-oblivious open
# ---------------------------------------------------------------------------


def open_archive(
    spec: str,
) -> Union[StampedeArchive, FederatedArchive]:
    """Open *anything archive-shaped* for reading.

    ============================  ========================================
    spec                          result
    ============================  ========================================
    ``sqlite:///PATH``            single :class:`StampedeArchive`
    ``memory://``                 single :class:`StampedeArchive`
    ``PATH.db`` (plain file)      single :class:`StampedeArchive`
    directory with shards.json    :class:`FederatedArchive` over the set
                                  (including the long-term tier)
    glob (``shards/*.db``)        :class:`FederatedArchive` over matches
                                  (sorted, so global ids are stable)
    ============================  ========================================
    """
    if spec.startswith("sqlite:///") or spec in ("memory://", "memory"):
        return StampedeArchive.open(spec)
    path = Path(spec)
    if path.is_dir():
        return ShardSet.open(path).federated()
    if any(ch in spec for ch in "*?["):
        matches = sorted(_glob.glob(spec))
        if not matches:
            raise ShardError(f"glob {spec!r} matched no archive files")
        if len(matches) == 1:
            return StampedeArchive.open(f"sqlite:///{matches[0]}")
        return FederatedArchive(
            [StampedeArchive.open(f"sqlite:///{m}") for m in matches]
        )
    return StampedeArchive.open(f"sqlite:///{spec}")
