"""Relational schema of the Stampede archive (paper Fig. 3).

Table and column names follow the published Stampede schema: each workflow
run is a ``workflow`` row; the abstract workflow lives in ``task`` /
``task_edge``; the executable workflow in ``job`` / ``job_edge``; execution
attempts in ``job_instance`` with their time-stamped ``jobstate`` rows; and
remote executions in ``invocation``, which link back to ``task``.
"""
from __future__ import annotations

from typing import Dict, List

from repro.orm import Boolean, Column, Integer, Real, Table, Text

__all__ = ["TABLES", "ALL_TABLES"]


WORKFLOW = Table(
    "workflow",
    [
        Column("wf_id", Integer(), primary_key=True),
        Column("wf_uuid", Text(), nullable=False, index=True),
        Column("dag_file_name", Text()),
        Column("timestamp", Real()),
        Column("submit_hostname", Text()),
        Column("submit_dir", Text()),
        Column("planner_version", Text()),
        Column("user", Text()),
        Column("grid_dn", Text()),
        Column("planner_arguments", Text()),
        Column("dax_label", Text()),
        Column("dax_version", Text()),
        Column("dax_file", Text()),
        Column("parent_wf_id", Integer(), index=True),
        Column("root_wf_id", Integer(), index=True),
    ],
)

WORKFLOWSTATE = Table(
    "workflowstate",
    [
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("state", Text(), nullable=False),
        Column("timestamp", Real(), nullable=False),
        Column("restart_count", Integer(), default=0),
        Column("status", Integer()),
    ],
)

TASK = Table(
    "task",
    [
        Column("task_id", Integer(), primary_key=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("abs_task_id", Text(), nullable=False, index=True),
        # Filled by stampede.wf.map.task_job: the EW job this task mapped to.
        Column("job_id", Integer(), index=True),
        Column("transformation", Text()),
        Column("argv", Text()),
        Column("type_desc", Text()),
    ],
)

TASK_EDGE = Table(
    "task_edge",
    [
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("parent_abs_task_id", Text(), nullable=False),
        Column("child_abs_task_id", Text(), nullable=False),
    ],
)

JOB = Table(
    "job",
    [
        Column("job_id", Integer(), primary_key=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("exec_job_id", Text(), nullable=False, index=True),
        Column("submit_file", Text()),
        Column("type_desc", Text()),
        Column("clustered", Boolean(), default=False),
        Column("max_retries", Integer(), default=0),
        Column("executable", Text()),
        Column("argv", Text()),
        Column("task_count", Integer(), default=0),
    ],
)

JOB_EDGE = Table(
    "job_edge",
    [
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("parent_exec_job_id", Text(), nullable=False),
        Column("child_exec_job_id", Text(), nullable=False),
    ],
)

JOB_INSTANCE = Table(
    "job_instance",
    [
        Column("job_instance_id", Integer(), primary_key=True),
        Column("job_id", Integer(), nullable=False, index=True),
        Column("job_submit_seq", Integer(), nullable=False),
        Column("host_id", Integer(), index=True),
        Column("sched_id", Text()),
        Column("site", Text()),
        Column("user", Text()),
        Column("work_dir", Text()),
        Column("local_duration", Real()),
        Column("subwf_id", Integer(), index=True),
        Column("stdout_file", Text()),
        Column("stdout_text", Text()),
        Column("stderr_file", Text()),
        Column("stderr_text", Text()),
        Column("multiplier_factor", Integer(), default=1),
        Column("exitcode", Integer()),
    ],
)

JOBSTATE = Table(
    "jobstate",
    [
        Column("job_instance_id", Integer(), nullable=False, index=True),
        Column("state", Text(), nullable=False),
        Column("timestamp", Real(), nullable=False),
        Column("jobstate_submit_seq", Integer(), default=0),
    ],
)

INVOCATION = Table(
    "invocation",
    [
        Column("invocation_id", Integer(), primary_key=True),
        Column("job_instance_id", Integer(), nullable=False, index=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("task_submit_seq", Integer(), nullable=False),
        Column("start_time", Real()),
        Column("remote_duration", Real()),
        Column("remote_cpu_time", Real()),
        Column("exitcode", Integer()),
        Column("transformation", Text()),
        Column("executable", Text()),
        Column("argv", Text()),
        Column("abs_task_id", Text(), index=True),
    ],
)

HOST = Table(
    "host",
    [
        Column("host_id", Integer(), primary_key=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("site", Text()),
        Column("hostname", Text(), nullable=False),
        Column("ip", Text()),
        Column("uname", Text()),
        Column("total_memory", Integer()),
    ],
)

OBS_EVENT = Table(
    "obs_event",
    [
        Column("obs_id", Integer(), primary_key=True),
        Column("ts", Real(), nullable=False),
        Column("event", Text(), nullable=False, index=True),
        Column("name", Text(), index=True),
        Column("component", Text()),
        Column("value", Real()),
        Column("payload", Text()),
    ],
)

ALL_TABLES: List[Table] = [
    WORKFLOW,
    WORKFLOWSTATE,
    TASK,
    TASK_EDGE,
    JOB,
    JOB_EDGE,
    JOB_INSTANCE,
    JOBSTATE,
    INVOCATION,
    HOST,
    OBS_EVENT,
]

TABLES: Dict[str, Table] = {t.name: t for t in ALL_TABLES}
