"""Relational schema of the Stampede archive (paper Fig. 3).

Table and column names follow the published Stampede schema: each workflow
run is a ``workflow`` row; the abstract workflow lives in ``task`` /
``task_edge``; the executable workflow in ``job`` / ``job_edge``; execution
attempts in ``job_instance`` with their time-stamped ``jobstate`` rows; and
remote executions in ``invocation``, which link back to ``task``.

Beyond Fig. 3, the archive carries the **rollup tables** maintained by
:mod:`repro.core.rollup`: materialized per-workflow counters
(``rollup_workflow``), per-transformation runtime breakdowns
(``rollup_type``), per-host usage (``rollup_host``) and downsampled
per-host time-series buckets (``rollup_host_bucket``), plus the
``rollup_meta`` commit-sequence row that read caches invalidate on.
Rollup rows are written *inside* the loader's flush transaction, so they
are exactly as durable and exactly as current as the event rows they
summarize.
"""
from __future__ import annotations

from typing import Dict, List

from repro.orm import Boolean, Column, Integer, Real, Table, Text

__all__ = ["TABLES", "ALL_TABLES"]


WORKFLOW = Table(
    "workflow",
    [
        Column("wf_id", Integer(), primary_key=True),
        Column("wf_uuid", Text(), nullable=False, index=True),
        Column("dag_file_name", Text()),
        Column("timestamp", Real()),
        Column("submit_hostname", Text()),
        Column("submit_dir", Text()),
        Column("planner_version", Text()),
        Column("user", Text()),
        Column("grid_dn", Text()),
        Column("planner_arguments", Text()),
        Column("dax_label", Text()),
        Column("dax_version", Text()),
        Column("dax_file", Text()),
        Column("parent_wf_id", Integer(), index=True),
        Column("root_wf_id", Integer(), index=True),
    ],
)

WORKFLOWSTATE = Table(
    "workflowstate",
    indexes=[("wf_id", "timestamp")],
    columns=[
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("state", Text(), nullable=False),
        Column("timestamp", Real(), nullable=False),
        Column("restart_count", Integer(), default=0),
        Column("status", Integer()),
    ],
)

TASK = Table(
    "task",
    indexes=[("wf_id", "abs_task_id")],
    columns=[
        Column("task_id", Integer(), primary_key=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("abs_task_id", Text(), nullable=False, index=True),
        # Filled by stampede.wf.map.task_job: the EW job this task mapped to.
        Column("job_id", Integer(), index=True),
        Column("transformation", Text()),
        Column("argv", Text()),
        Column("type_desc", Text()),
    ],
)

TASK_EDGE = Table(
    "task_edge",
    [
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("parent_abs_task_id", Text(), nullable=False),
        Column("child_abs_task_id", Text(), nullable=False),
    ],
)

JOB = Table(
    "job",
    [
        Column("job_id", Integer(), primary_key=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("exec_job_id", Text(), nullable=False, index=True),
        Column("submit_file", Text()),
        Column("type_desc", Text()),
        Column("clustered", Boolean(), default=False),
        Column("max_retries", Integer(), default=0),
        Column("executable", Text()),
        Column("argv", Text()),
        Column("task_count", Integer(), default=0),
    ],
)

JOB_EDGE = Table(
    "job_edge",
    [
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("parent_exec_job_id", Text(), nullable=False),
        Column("child_exec_job_id", Text(), nullable=False),
    ],
)

JOB_INSTANCE = Table(
    "job_instance",
    indexes=[("job_id", "job_submit_seq")],
    columns=[
        Column("job_instance_id", Integer(), primary_key=True),
        Column("job_id", Integer(), nullable=False, index=True),
        Column("job_submit_seq", Integer(), nullable=False),
        Column("host_id", Integer(), index=True),
        Column("sched_id", Text()),
        Column("site", Text()),
        Column("user", Text()),
        Column("work_dir", Text()),
        Column("local_duration", Real()),
        Column("subwf_id", Integer(), index=True),
        Column("stdout_file", Text()),
        Column("stdout_text", Text()),
        Column("stderr_file", Text()),
        Column("stderr_text", Text()),
        Column("multiplier_factor", Integer(), default=1),
        Column("exitcode", Integer()),
    ],
)

JOBSTATE = Table(
    "jobstate",
    indexes=[("job_instance_id", "jobstate_submit_seq")],
    columns=[
        Column("job_instance_id", Integer(), nullable=False, index=True),
        Column("state", Text(), nullable=False),
        Column("timestamp", Real(), nullable=False),
        Column("jobstate_submit_seq", Integer(), default=0),
    ],
)

INVOCATION = Table(
    "invocation",
    indexes=[("job_instance_id", "task_submit_seq"), ("wf_id", "invocation_id")],
    columns=[
        Column("invocation_id", Integer(), primary_key=True),
        Column("job_instance_id", Integer(), nullable=False, index=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("task_submit_seq", Integer(), nullable=False),
        Column("start_time", Real()),
        Column("remote_duration", Real()),
        Column("remote_cpu_time", Real()),
        Column("exitcode", Integer()),
        Column("transformation", Text()),
        Column("executable", Text()),
        Column("argv", Text()),
        Column("abs_task_id", Text(), index=True),
    ],
)

HOST = Table(
    "host",
    [
        Column("host_id", Integer(), primary_key=True),
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("site", Text()),
        Column("hostname", Text(), nullable=False),
        Column("ip", Text()),
        Column("uname", Text()),
        Column("total_memory", Integer()),
    ],
)

OBS_EVENT = Table(
    "obs_event",
    [
        Column("obs_id", Integer(), primary_key=True),
        Column("ts", Real(), nullable=False),
        Column("event", Text(), nullable=False, index=True),
        Column("name", Text(), index=True),
        Column("component", Text()),
        Column("value", Real()),
        Column("payload", Text()),
    ],
)

# -- rollup tables (repro.core.rollup) --------------------------------------
# Materialized aggregates maintained incrementally in the loader's flush
# transaction.  Counters are additive; ``started``/``ended``/``min``/``max``
# are monotone merges, so re-applying a delta bundle after a transaction
# retry converges to the same row.

ROLLUP_WORKFLOW = Table(
    "rollup_workflow",
    [
        Column("wf_id", Integer(), primary_key=True),
        Column("wf_uuid", Text(), nullable=False, index=True),
        Column("parent_wf_id", Integer(), index=True),
        Column("root_wf_id", Integer(), index=True),
        Column("events", Integer(), default=0),
        Column("tasks_total", Integer(), default=0),
        Column("tasks_succeeded", Integer(), default=0),
        Column("tasks_failed", Integer(), default=0),
        Column("jobs_total", Integer(), default=0),
        Column("jobs_succeeded", Integer(), default=0),
        Column("jobs_failed", Integer(), default=0),
        Column("jobs_retries", Integer(), default=0),
        Column("job_instances", Integer(), default=0),
        Column("invocations", Integer(), default=0),
        Column("invocation_wall", Real(), default=0.0),
        Column("started", Real()),
        Column("ended", Real()),
        Column("status", Integer()),
        Column("restarts", Integer(), default=0),
        Column("updated_seq", Integer(), default=0),
    ],
)

ROLLUP_TYPE = Table(
    "rollup_type",
    indexes=[("wf_id", "transformation")],
    columns=[
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("transformation", Text(), nullable=False),
        Column("count", Integer(), default=0),
        Column("succeeded", Integer(), default=0),
        Column("failed", Integer(), default=0),
        Column("min_runtime", Real(), default=0.0),
        Column("max_runtime", Real(), default=0.0),
        Column("total_runtime", Real(), default=0.0),
    ],
)

ROLLUP_HOST = Table(
    "rollup_host",
    indexes=[("wf_id", "hostname")],
    columns=[
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("hostname", Text(), nullable=False),
        Column("jobs", Integer(), default=0),
        Column("runtime", Real(), default=0.0),
    ],
)

ROLLUP_HOST_BUCKET = Table(
    "rollup_host_bucket",
    indexes=[("wf_id", "hostname", "tier", "bucket")],
    columns=[
        Column("wf_id", Integer(), nullable=False, index=True),
        Column("hostname", Text(), nullable=False),
        # bucket width in seconds (the downsampling tier) and the
        # epoch-aligned bucket index floor(ts / tier)
        Column("tier", Integer(), nullable=False),
        Column("bucket", Integer(), nullable=False),
        Column("runtime", Real(), default=0.0),
    ],
)

ROLLUP_META = Table(
    "rollup_meta",
    [
        Column("key", Text(), primary_key=True),
        Column("value", Real(), default=0.0),
    ],
)

ALL_TABLES: List[Table] = [
    WORKFLOW,
    WORKFLOWSTATE,
    TASK,
    TASK_EDGE,
    JOB,
    JOB_EDGE,
    JOB_INSTANCE,
    JOBSTATE,
    INVOCATION,
    HOST,
    OBS_EVENT,
    ROLLUP_WORKFLOW,
    ROLLUP_TYPE,
    ROLLUP_HOST,
    ROLLUP_HOST_BUCKET,
    ROLLUP_META,
]

TABLES: Dict[str, Table] = {t.name: t for t in ALL_TABLES}
